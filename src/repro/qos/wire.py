"""QoS profile on the wire: a spec-neutral extension element.

Neither WS-Eventing nor WS-BaseNotification defines QoS vocabulary (the
Table 3 gap), but both leave extension slots in Subscribe — WSE via open
content, WSN 1.3 via ``SubscriptionPolicy``.  A consumer that wants CORBA
Notification-style properties carries them there as::

    <qos:Profile xmlns:qos="http://repro.invalid/qos">
      <qos:Property Name="Priority">7</qos:Property>
      <qos:Property Name="DiscardPolicy">LifoOrder</qos:Property>
    </qos:Profile>

Parsing is strict: unknown property names and malformed values raise
:class:`~repro.qos.properties.QosError`, which the subscribe handlers map
to a sender fault (CORBA's ``UnsupportedQoS`` surfaced in SOAP terms).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.qos.properties import DiscardPolicy, OrderPolicy, QosError, QosProfile
from repro.xmlkit.element import XElem, text_element
from repro.xmlkit.names import QName

#: namespace of this implementation's QoS extension vocabulary
QOS_NS = "http://repro.invalid/qos"
PROFILE = QName(QOS_NS, "Profile")
PROPERTY = QName(QOS_NS, "Property")
_NAME_ATTR = QName("", "Name")


def _parse_bool(text: str) -> bool:
    lowered = text.lower()
    if lowered in ("true", "1"):
        return True
    if lowered in ("false", "0"):
        return False
    raise ValueError(f"not a boolean: {text!r}")


#: wire text -> property value, per understood property
_DECODERS: dict[str, Callable[[str], Any]] = {
    "EventReliability": str,
    "ConnectionReliability": str,
    "Priority": int,
    "StartTime": str,
    "StopTime": str,
    "Timeout": float,
    "StartTimeSupported": _parse_bool,
    "StopTimeSupported": _parse_bool,
    "MaxEventsPerConsumer": int,
    "OrderPolicy": OrderPolicy,
    "DiscardPolicy": DiscardPolicy,
    "MaximumBatchSize": int,
    "PacingInterval": float,
}


def _encode(value: Any) -> str:
    if isinstance(value, (OrderPolicy, DiscardPolicy)):
        return value.value
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def profile_to_element(profile: QosProfile) -> XElem:
    """Render a profile's explicitly-set values as a ``qos:Profile``."""
    element = XElem(PROFILE)
    for name in sorted(profile.values):
        prop = text_element(PROPERTY, _encode(profile.values[name]))
        prop.attrs[_NAME_ATTR] = name
        element.append(prop)
    return element


def profile_from_element(element: XElem) -> QosProfile:
    """Parse a ``qos:Profile``; :class:`QosError` on anything malformed."""
    values: dict[str, Any] = {}
    for prop in element.find_all(PROPERTY):
        name = prop.attrs.get(_NAME_ATTR)
        if not name:
            raise QosError("qos:Property without a Name attribute")
        decoder = _DECODERS.get(name)
        if decoder is None:
            raise QosError(f"unknown QoS property {name!r}")
        text = prop.full_text().strip()
        try:
            values[name] = decoder(text)
        except (ValueError, KeyError) as exc:
            raise QosError(f"bad value for QoS property {name}: {text!r}") from exc
    return QosProfile(values)


def find_profile(parent: XElem) -> Optional[QosProfile]:
    """Parse the ``qos:Profile`` child of ``parent`` when present."""
    element = parent.find(PROFILE)
    if element is None:
        return None
    return profile_from_element(element)
