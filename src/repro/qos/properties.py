"""The CORBA Notification 13 QoS properties and the JMS QoS criteria."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Mapping


class QosError(ValueError):
    """An unsupported QoS property or an invalid value (CORBA's
    UnsupportedQoS exception)."""


class OrderPolicy(Enum):
    ANY_ORDER = "AnyOrder"
    FIFO_ORDER = "FifoOrder"
    PRIORITY_ORDER = "PriorityOrder"
    DEADLINE_ORDER = "DeadlineOrder"


class DiscardPolicy(Enum):
    ANY_ORDER = "AnyOrder"
    FIFO_ORDER = "FifoOrder"
    LIFO_ORDER = "LifoOrder"
    PRIORITY_ORDER = "PriorityOrder"
    DEADLINE_ORDER = "DeadlineOrder"


#: the 13 properties the CORBA Notification Service specification defines
#: (must be *understood* by implementations, extendable with others)
CORBA_QOS_PROPERTIES: tuple[str, ...] = (
    "EventReliability",
    "ConnectionReliability",
    "Priority",
    "StartTime",
    "StopTime",
    "Timeout",
    "StartTimeSupported",
    "StopTimeSupported",
    "MaxEventsPerConsumer",
    "OrderPolicy",
    "DiscardPolicy",
    "MaximumBatchSize",
    "PacingInterval",
)

#: Table 3's JMS QoS criteria
JMS_QOS_CRITERIA: tuple[str, ...] = (
    "Priority",
    "Persistence",
    "Durability",
    "Transaction",
    "MessageOrder",
)

_DEFAULTS: dict[str, Any] = {
    "EventReliability": "BestEffort",
    "ConnectionReliability": "BestEffort",
    "Priority": 0,
    "StartTime": None,
    "StopTime": None,
    "Timeout": None,
    "StartTimeSupported": False,
    "StopTimeSupported": False,
    "MaxEventsPerConsumer": 0,  # 0 = unbounded
    "OrderPolicy": OrderPolicy.ANY_ORDER,
    "DiscardPolicy": DiscardPolicy.ANY_ORDER,
    "MaximumBatchSize": 1,
    "PacingInterval": 0.0,
}


@dataclass
class QosProfile:
    """A validated set of QoS property values (CORBA-style).

    Unknown properties are accepted only when ``allow_extensions`` — the spec
    allows vendors to extend beyond the 13, but every implementation must
    understand the 13.
    """

    values: dict[str, Any] = field(default_factory=dict)
    allow_extensions: bool = False

    def __post_init__(self) -> None:
        for name, value in self.values.items():
            self._validate(name, value)

    def _validate(self, name: str, value: Any) -> None:
        if name not in CORBA_QOS_PROPERTIES:
            if not self.allow_extensions:
                raise QosError(f"unknown QoS property {name!r}")
            return
        if name == "Priority" and not isinstance(value, int):
            raise QosError("Priority must be an integer")
        if name == "Priority" and not (-32767 <= value <= 32767):
            raise QosError("Priority out of CORBA short range")
        if name == "MaxEventsPerConsumer" and (not isinstance(value, int) or value < 0):
            raise QosError("MaxEventsPerConsumer must be a non-negative integer")
        if name == "MaximumBatchSize" and (not isinstance(value, int) or value < 1):
            raise QosError("MaximumBatchSize must be a positive integer")
        if name == "OrderPolicy" and not isinstance(value, OrderPolicy):
            raise QosError("OrderPolicy must be an OrderPolicy value")
        if name == "DiscardPolicy" and not isinstance(value, DiscardPolicy):
            raise QosError("DiscardPolicy must be a DiscardPolicy value")
        if name in ("EventReliability", "ConnectionReliability") and value not in (
            "BestEffort",
            "Persistent",
        ):
            raise QosError(f"{name} must be BestEffort or Persistent")
        if name == "Timeout" and value is not None and value < 0:
            raise QosError("Timeout must be non-negative")

    def set(self, name: str, value: Any) -> None:
        self._validate(name, value)
        self.values[name] = value

    def get(self, name: str) -> Any:
        if name in self.values:
            return self.values[name]
        if name in _DEFAULTS:
            return _DEFAULTS[name]
        raise QosError(f"unknown QoS property {name!r}")

    def merged_with(self, overrides: Mapping[str, Any]) -> "QosProfile":
        merged = dict(self.values)
        merged.update(overrides)
        return QosProfile(merged, allow_extensions=self.allow_extensions)

    @staticmethod
    def understood_properties() -> tuple[str, ...]:
        return CORBA_QOS_PROPERTIES
