"""Quality-of-Service property models — and the adaptive layer that
makes them load-bearing.

Table 3's QoS row contrasts: CORBA Notification *defines* 13 QoS properties
"that must be understood by all implementations even though they are not
required to be implemented"; JMS defines priority/persistence/durability/
transactions/ordering; the WS-based specifications define **none**, deferring
to composition with WS-Reliability / WS-Transaction et al. — the paper's
section VI observation (4).  :mod:`repro.qos.adaptive` closes the loop: the
property stubs become the broker's actual overload behaviour (token-bucket
pacing, DiscardPolicy-driven shedding, publisher pause thresholds), and
:mod:`repro.qos.wire` carries requested profiles inside Subscribe bodies.
"""

from repro.qos.adaptive import (
    AdaptiveQosController,
    AdaptiveQosPolicy,
    TokenBucket,
    default_tenant,
    validate_supported,
)
from repro.qos.properties import (
    CORBA_QOS_PROPERTIES,
    JMS_QOS_CRITERIA,
    DiscardPolicy,
    OrderPolicy,
    QosProfile,
    QosError,
)

__all__ = [
    "CORBA_QOS_PROPERTIES",
    "JMS_QOS_CRITERIA",
    "QosProfile",
    "QosError",
    "OrderPolicy",
    "DiscardPolicy",
    "AdaptiveQosPolicy",
    "AdaptiveQosController",
    "TokenBucket",
    "default_tenant",
    "validate_supported",
]
