"""Adaptive QoS: the Table 3 property stubs made load-bearing.

The paper's Table 3 shows the WS eventing specs defining *no* QoS
properties while CORBA Notification mandates thirteen; the CORBA-services
experience reports are equally clear that the properties only matter when
the broker actually consults them under load.  This module is that
consultation point: an :class:`AdaptiveQosController` sits on the delivery
pipeline and turns sustained overload into *graceful degradation* instead
of unbounded queue growth —

* **token-bucket pacing** per consumer sink and per tenant (an
  address-prefix grouping of sinks), refilled on the virtual clock so every
  throttling decision is deterministic;
* **bounded per-sink queues** whose overflow behaviour is driven by the
  CORBA :class:`~repro.qos.properties.DiscardPolicy` a consumer requested
  (FIFO drops the oldest waiting message, LIFO rejects the newest,
  PriorityOrder evicts the lowest-priority waiter);
* **profile acceptance**: a consumer attaches a
  :class:`~repro.qos.properties.QosProfile` to Subscribe/Register and gets
  CORBA's ``UnsupportedQoS`` behaviour (:class:`QosError`, surfaced as a
  sender fault on the wire) when it asks for what this broker cannot do;
* thresholds for **publisher pause/resume** (used by the WSN broker's
  demand-based publishing to stop pulling from upstream producers while
  downstream lag is high).

Everything here is policy and bookkeeping; the delivery manager owns the
queues and performs the actual shedding/ledgering so the obligation books
(:mod:`repro.obs.lineage`) stay balanced — shed messages close their
obligations with a ``shed`` event rather than vanishing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.qos.properties import DiscardPolicy, QosError, QosProfile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.delivery.task import DeliveryTask

#: properties this broker cannot honour: requesting them must fault, per
#: CORBA's "must be understood even when not implemented" rule
_UNSUPPORTED_WHEN_SET = ("StartTime", "StopTime")
_UNSUPPORTED_WHEN_TRUE = ("StartTimeSupported", "StopTimeSupported")


def validate_supported(profile: QosProfile) -> QosProfile:
    """Reject profiles requesting properties this broker cannot honour."""
    for name in _UNSUPPORTED_WHEN_SET:
        if profile.get(name) is not None:
            raise QosError(f"{name} is not supported by this broker")
    for name in _UNSUPPORTED_WHEN_TRUE:
        if profile.get(name):
            raise QosError(f"{name} cannot be granted by this broker")
    return profile


def default_tenant(sink: str) -> str:
    """The tenant a sink address belongs to: its prefix up to the last
    ``/`` (else the last ``-``), so ``http://host/app/c1`` and ``.../c2``
    share one tenant bucket."""
    for separator in ("/", "-"):
        head, found, _ = sink.rpartition(separator)
        if found:
            return head
    return sink


class TokenBucket:
    """A token bucket on the virtual clock (no wall time, fully seeded-run
    deterministic): ``rate`` tokens per virtual second up to ``burst``."""

    __slots__ = ("clock", "rate", "burst", "tokens", "stamped_at")

    def __init__(self, clock, rate: float, burst: float) -> None:
        if rate <= 0:
            raise ValueError("token rate must be positive")
        if burst < 1:
            raise ValueError("burst must allow at least one token")
        self.clock = clock
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.stamped_at = clock.now()

    def balance(self) -> float:
        """Refill from elapsed virtual time, then report the balance."""
        now = self.clock.now()
        if now > self.stamped_at:
            self.tokens = min(
                self.burst, self.tokens + (now - self.stamped_at) * self.rate
            )
            self.stamped_at = now
        return self.tokens

    def try_acquire(self, n: float = 1.0) -> bool:
        # the epsilon absorbs refill rounding when a wake-up lands exactly
        # on the computed next_available instant
        if self.balance() >= n - 1e-9:
            self.tokens = max(0.0, self.tokens - n)
            return True
        return False

    def next_available(self, n: float = 1.0) -> float:
        """Virtual time when ``n`` tokens will have accrued."""
        deficit = n - self.balance()
        if deficit <= 0:
            return self.clock.now()
        return self.clock.now() + deficit / self.rate


@dataclass(frozen=True)
class AdaptiveQosPolicy:
    """Broker-side overload policy (immutable, shareable).

    ``None`` disables a dimension; the all-defaults policy is a no-op, so
    attaching a controller never changes behaviour until a knob is set.
    """

    #: sustained deliveries/virtual-second allowed per consumer sink
    per_sink_rate: Optional[float] = None
    per_sink_burst: float = 8.0
    #: sustained deliveries/virtual-second shared by a tenant's sinks
    per_tenant_rate: Optional[float] = None
    per_tenant_burst: float = 32.0
    #: queued tasks per sink before DiscardPolicy shedding kicks in
    max_sink_queue: Optional[int] = None
    #: how overflow victims are chosen (consumer profiles may override)
    discard_policy: DiscardPolicy = DiscardPolicy.FIFO_ORDER
    #: aggregate delivery.pending at which demand-based publishers pause…
    pause_pending_above: Optional[int] = None
    #: …and the (lower) watermark at which they resume
    resume_pending_below: int = 0

    def __post_init__(self) -> None:
        for name in ("per_sink_rate", "per_tenant_rate"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise QosError(f"{name} must be positive (or None)")
        if self.per_sink_burst < 1 or self.per_tenant_burst < 1:
            raise QosError("bucket bursts must allow at least one token")
        if self.max_sink_queue is not None and self.max_sink_queue < 1:
            raise QosError("max_sink_queue must be at least 1 (or None)")
        if self.pause_pending_above is not None:
            if self.pause_pending_above < 1:
                raise QosError("pause_pending_above must be at least 1")
            if not 0 <= self.resume_pending_below < self.pause_pending_above:
                raise QosError(
                    "resume_pending_below must sit below pause_pending_above"
                )


class AdaptiveQosController:
    """Consults policy + per-consumer profiles on every delivery decision.

    The controller is pure bookkeeping: it answers *admit or shed whom*
    and *attempt now or at what time*; the delivery manager applies the
    verdicts (and owns the lineage/metric consequences).
    """

    def __init__(
        self, clock, policy: Optional[AdaptiveQosPolicy] = None
    ) -> None:
        self.clock = clock
        self.policy = policy or AdaptiveQosPolicy()
        self._sink_buckets: dict[str, TokenBucket] = {}
        self._tenant_buckets: dict[str, TokenBucket] = {}
        self._profiles: dict[str, QosProfile] = {}
        #: profiles refused at subscribe/register time (UnsupportedQoS)
        self.profile_rejections = 0

    # --- profile acceptance ------------------------------------------------

    def accept_profile(self, profile: QosProfile) -> QosProfile:
        """Validate a requested profile; :class:`QosError` when this broker
        cannot honour it (callers map that to the wire fault)."""
        try:
            return validate_supported(profile)
        except QosError:
            self.profile_rejections += 1
            raise

    def register_consumer(self, sink: str, profile: QosProfile) -> QosProfile:
        accepted = self.accept_profile(profile)
        self._profiles[sink] = accepted
        return accepted

    def profile_for(self, sink: str) -> Optional[QosProfile]:
        return self._profiles.get(sink)

    def priority_of(self, sink: str) -> int:
        profile = self._profiles.get(sink)
        return int(profile.get("Priority")) if profile is not None else 0

    def queue_limit(self, sink: str) -> Optional[int]:
        """Bounded-queue limit for a sink: the consumer's
        ``MaxEventsPerConsumer`` (when non-zero) overrides the policy."""
        profile = self._profiles.get(sink)
        if profile is not None:
            limit = profile.get("MaxEventsPerConsumer")
            if limit:
                return int(limit)
        return self.policy.max_sink_queue

    def discard_policy_for(self, sink: str) -> DiscardPolicy:
        profile = self._profiles.get(sink)
        if profile is not None and "DiscardPolicy" in profile.values:
            return profile.values["DiscardPolicy"]
        return self.policy.discard_policy

    # --- bounded-queue admission --------------------------------------------

    def plan_admission(
        self, sink: str, queue, task: "DeliveryTask"
    ) -> "tuple[bool, list[DeliveryTask]]":
        """Decide one enqueue against the sink's bound.

        Returns ``(admit, victims)``: whether the incoming task may join
        the queue, and which *waiting* tasks must be shed to make room.
        The queue head (index 0) is never evicted — it may be owned by an
        active attempt loop, so only positions 1.. are eligible victims.
        """
        limit = self.queue_limit(sink)
        if limit is None or len(queue) < limit:
            return True, []
        discard = self.discard_policy_for(sink)
        if discard is DiscardPolicy.LIFO_ORDER:
            return False, []
        waiting = [queued for index, queued in enumerate(queue) if index > 0]
        if not waiting:
            return False, []
        if discard is DiscardPolicy.PRIORITY_ORDER:
            lowest = waiting[0]
            for queued in waiting[1:]:
                if queued.priority < lowest.priority:
                    lowest = queued
            if task.priority > lowest.priority:
                return True, [lowest]
            return False, []
        # FIFO_ORDER (and ANY/DEADLINE, which this broker maps to FIFO):
        # the oldest waiting message makes room for the newest
        return True, [waiting[0]]

    # --- token-bucket pacing -----------------------------------------------

    def _bucket(
        self, table: dict[str, TokenBucket], key: str, rate: float, burst: float
    ) -> TokenBucket:
        bucket = table.get(key)
        if bucket is None:
            bucket = table[key] = TokenBucket(self.clock, rate, burst)
        return bucket

    def attempt_delay(self, sink: str) -> Optional[float]:
        """Gate one delivery attempt to ``sink``.

        ``None`` means *go* (one token was consumed from every applicable
        bucket); otherwise the virtual time at which tokens will exist —
        the caller schedules a wake-up instead of attempting (queue-based
        load leveling: the message waits, the wire stays quiet).
        """
        policy = self.policy
        buckets: list[TokenBucket] = []
        if policy.per_sink_rate is not None:
            buckets.append(
                self._bucket(
                    self._sink_buckets, sink,
                    policy.per_sink_rate, policy.per_sink_burst,
                )
            )
        if policy.per_tenant_rate is not None:
            buckets.append(
                self._bucket(
                    self._tenant_buckets, default_tenant(sink),
                    policy.per_tenant_rate, policy.per_tenant_burst,
                )
            )
        if not buckets:
            return None
        ready_at = self.clock.now()
        starved = False
        for bucket in buckets:
            if bucket.balance() < 1.0 - 1e-9:
                starved = True
                ready_at = max(ready_at, bucket.next_available())
        if starved:
            return ready_at
        for bucket in buckets:
            bucket.try_acquire()
        return None

    # --- introspection ------------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "profiles": len(self._profiles),
            "profile_rejections": self.profile_rejections,
            "sink_buckets": len(self._sink_buckets),
            "tenant_buckets": len(self._tenant_buckets),
        }
