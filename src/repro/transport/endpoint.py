"""SOAP endpoints and clients over the simulated network.

A :class:`SoapEndpoint` registers under a URI, unframes incoming HTTP,
parses the SOAP envelope, extracts WS-Addressing headers and dispatches on
``wsa:Action`` — the coarse-grained, message-level interoperability style the
paper identifies as the key shift away from fine-grained API interop
(section VI, observation 6).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.obs.instrument import BoundCounters
from repro.obs.propagation import LineageContext, extract as extract_lineage
from repro.soap.codec import parse_envelope, serialize_envelope
from repro.soap.envelope import SoapEnvelope, SoapVersion
from repro.soap.fault import FaultCode, SoapFault
from repro.transport.http import (
    LINEAGE_HTTP_HEADER,
    HttpFramingError,
    build_request,
    build_response,
    parse_request,
    parse_response,
)
from repro.transport.network import PUBLIC_ZONE, SimulatedNetwork
from repro.wsa.epr import EndpointReference
from repro.wsa.headers import MessageHeaders, apply_headers, extract_headers
from repro.wsa.versions import WsaVersion
from repro.xmlkit.element import XElem

#: an action handler: (request envelope, addressing headers) -> reply or None
ActionHandler = Callable[[SoapEnvelope, MessageHeaders], Optional[SoapEnvelope]]


class SoapEndpoint:
    """A Web service bound to an address on the simulated network."""

    def __init__(
        self,
        network: SimulatedNetwork,
        address: str,
        *,
        zone: str = PUBLIC_ZONE,
        soap_version: SoapVersion = SoapVersion.V11,
    ) -> None:
        self.network = network
        self.address = address
        self.zone = zone
        self.soap_version = soap_version
        self._handlers: dict[str, ActionHandler] = {}
        self._fallback: Optional[ActionHandler] = None
        #: pre-bound endpoint.requests counters, one per status (see
        #: repro.obs.instrument.BoundCounters) — this endpoint counts per
        #: dispatched request, so it never rebuilds metric keys
        self._request_counters = BoundCounters()
        network.register(address, self._handle_wire, zone=zone)

    def epr(self) -> EndpointReference:
        return EndpointReference(self.address)

    def on_action(self, action: str, handler: ActionHandler) -> "SoapEndpoint":
        """Register a handler for one ``wsa:Action`` URI."""
        self._handlers[action] = handler
        return self

    def on_any(self, handler: ActionHandler) -> "SoapEndpoint":
        """Fallback for actions with no explicit handler (e.g. raw notifies)."""
        self._fallback = handler
        return self

    def close(self) -> None:
        self.network.unregister(self.address)

    # --- wire handling ----------------------------------------------------

    def _count_request(self, instr, status: str) -> None:
        counter = self._request_counters.probe(instr, status)
        if counter is None:
            counter = self._request_counters.get(
                instr, status, "endpoint.requests",
                address=self.address, status=status,
            )
        counter.inc()

    def _handle_wire(self, wire: bytes) -> bytes:
        instr = self.network.instrumentation
        try:
            request = parse_request(wire)
        except HttpFramingError as exc:
            fault = SoapFault(FaultCode.SENDER, f"malformed HTTP framing: {exc}")
            self._count_request(instr, "framing_error")
            return build_response(400, self._fault_bytes(fault, SoapVersion.V11))
        try:
            envelope = parse_envelope(request.body)
        except ValueError as exc:
            fault = SoapFault(FaultCode.SENDER, f"unparseable envelope: {exc}")
            self._count_request(instr, "parse_error")
            return build_response(400, self._fault_bytes(fault, SoapVersion.V11))
        try:
            headers = extract_headers(envelope)
        except ValueError:
            headers = MessageHeaders(to=self.address, action="")
        if not instr.enabled:
            return self._dispatch(envelope, headers)
        # re-establish the wire-carried trace context (None when absent or
        # malformed: the dispatch then roots a fresh tree, exactly as
        # before).  Instrumented senders put it in the HTTP head; envelopes
        # from other carriers (stored replays, alternative bindings) may
        # still bear the lin:Lineage SOAP header, so fall back to that.
        lineage_text = request.headers.get(LINEAGE_HTTP_HEADER)
        if lineage_text is not None:
            lineage = LineageContext.decode(lineage_text)
        else:
            lineage = extract_lineage(envelope)
        with instr.span(
            "dispatch", remote=lineage, address=self.address, action=headers.action
        ) as span:
            handler = self._handlers.get(headers.action, self._fallback)
            if handler is None:
                span.fail(f"no handler for {headers.action!r}")
                self._count_request(instr, "no_handler")
                fault = SoapFault(
                    FaultCode.SENDER, f"no handler for action {headers.action!r}"
                )
                return build_response(500, self._fault_bytes(fault, envelope.version))
            try:
                reply = handler(envelope, headers)
            except SoapFault as fault:
                span.fail(f"fault: {fault.reason}")
                self._count_request(instr, "fault")
                return build_response(500, self._fault_bytes(fault, envelope.version))
            self._count_request(instr, "ok")
            if reply is None:
                return build_response(202)
            return build_response(200, serialize_envelope(reply).encode("utf-8"))

    def _dispatch(self, envelope: SoapEnvelope, headers: MessageHeaders) -> bytes:
        """Uninstrumented action dispatch (the seed hot path, unchanged)."""
        handler = self._handlers.get(headers.action, self._fallback)
        if handler is None:
            fault = SoapFault(
                FaultCode.SENDER, f"no handler for action {headers.action!r}"
            )
            return build_response(500, self._fault_bytes(fault, envelope.version))
        try:
            reply = handler(envelope, headers)
        except SoapFault as fault:
            return build_response(500, self._fault_bytes(fault, envelope.version))
        if reply is None:
            return build_response(202)
        return build_response(200, serialize_envelope(reply).encode("utf-8"))

    def _fault_bytes(self, fault: SoapFault, version: SoapVersion) -> bytes:
        return serialize_envelope(fault.to_envelope(version)).encode("utf-8")


class SoapClient:
    """Builds, addresses, sends and unwraps SOAP request/response exchanges."""

    def __init__(
        self,
        network: SimulatedNetwork,
        *,
        zone: str = PUBLIC_ZONE,
        wsa_version: WsaVersion = WsaVersion.V2005_08,
        soap_version: SoapVersion = SoapVersion.V11,
        envelope_filter: Optional[Callable[[SoapEnvelope], None]] = None,
    ) -> None:
        self.network = network
        self.zone = zone
        self.wsa_version = wsa_version
        self.soap_version = soap_version
        #: composition hook: applied to every outgoing envelope just before
        #: serialization (e.g. WS-Security signing, WS-Reliability sequencing)
        self.envelope_filter = envelope_filter

    def call(
        self,
        target: EndpointReference,
        action: str,
        body: list[XElem],
        *,
        reply_to: Optional[EndpointReference] = None,
        expect_reply: bool = True,
        extra_headers: Optional[list[XElem]] = None,
    ) -> Optional[SoapEnvelope]:
        """Send a request; returns the reply envelope (or ``None`` on 202).

        Raises :class:`SoapFault` when the peer answered with a fault, and
        the transport's :class:`NetworkError` subclasses on wire failures.
        """
        envelope = SoapEnvelope(self.soap_version)
        headers = MessageHeaders.request(target, action, reply_to=reply_to)
        apply_headers(envelope, headers, self.wsa_version)
        for header in extra_headers or []:
            envelope.add_header(header.copy())
        for element in body:
            envelope.add_body(element)
        if self.envelope_filter is not None:
            self.envelope_filter(envelope)
        context = self.network.instrumentation.trace_context()
        wire = build_request(
            target.address,
            serialize_envelope(envelope).encode("utf-8"),
            soap_action=action,
            lineage=None if context is None else context.wire_text(),
        )
        raw = self.network.send_request(target.address, wire, from_zone=self.zone)
        response = parse_response(raw)
        if not response.body:
            return None
        reply = parse_envelope(response.body)
        if reply.is_fault():
            raise SoapFault.from_element(reply.body_element(), reply.version)
        return reply if expect_reply else None

    def send_rendered(
        self, target_address: str, action: str, text: str,
        *, lineage: Optional[str] = None,
    ) -> Optional[SoapEnvelope]:
        """Send pre-rendered envelope text (the byte-template fast path).

        The caller has already rendered addressing and body into ``text``,
        so unlike :meth:`call` nothing touches the envelope here; lineage
        (when tracing) rides the HTTP head and only the framing and the
        reply unwrap run.  Callers must not use this when an
        :attr:`envelope_filter` is installed — the filter operates on
        envelope trees, which a rendered send never builds.
        """
        wire = build_request(
            target_address, text.encode("utf-8"), soap_action=action, lineage=lineage
        )
        raw = self.network.send_request(target_address, wire, from_zone=self.zone)
        response = parse_response(raw)
        if not response.body:
            return None
        reply = parse_envelope(response.body)
        if reply.is_fault():
            raise SoapFault.from_element(reply.body_element(), reply.version)
        return reply

    def send_envelope(self, target_address: str, envelope: SoapEnvelope) -> Optional[SoapEnvelope]:
        """Send a pre-built envelope (used by the mediation layer)."""
        if self.envelope_filter is not None:
            self.envelope_filter(envelope)
        context = self.network.instrumentation.trace_context()
        headers = extract_headers(envelope)
        wire = build_request(
            target_address,
            serialize_envelope(envelope).encode("utf-8"),
            soap_action=headers.action,
            lineage=None if context is None else context.wire_text(),
        )
        raw = self.network.send_request(target_address, wire, from_zone=self.zone)
        response = parse_response(raw)
        if not response.body:
            return None
        reply = parse_envelope(response.body)
        if reply.is_fault():
            raise SoapFault.from_element(reply.body_element(), reply.version)
        return reply
