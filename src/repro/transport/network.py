"""The simulated network: addresses, zones, firewalls, latency and loss.

Endpoints register a handler under a URI address inside a *zone*.  Zones
model network segments; a zone may block inbound connections (a stateful
firewall / NAT), in which case hosts inside it can originate requests but
cannot be reached from other zones.  This is precisely the scenario the paper
gives for the pull delivery mode: "delivering messages to consumers behind
firewalls".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.transport.clock import VirtualClock

Handler = Callable[[bytes], bytes]

PUBLIC_ZONE = "public"


class NetworkError(Exception):
    """Base class for transport-level failures."""


class AddressUnreachable(NetworkError):
    """No endpoint is registered under the target address."""


class FirewallBlocked(NetworkError):
    """The target's zone rejects inbound connections from the caller's zone."""


class MessageLost(NetworkError):
    """The loss model dropped the message in flight."""


@dataclass
class Zone:
    """A network segment."""

    name: str
    #: when True, requests originating in *other* zones are refused
    blocks_inbound: bool = False


@dataclass
class NetworkStats:
    """Aggregate wire accounting, reset-able between benchmark phases."""

    requests: int = 0
    responses: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    refused: int = 0
    lost: int = 0

    def reset(self) -> None:
        self.requests = self.responses = 0
        self.bytes_sent = self.bytes_received = 0
        self.refused = self.lost = 0


@dataclass
class _Registration:
    address: str
    handler: Handler
    zone: str


class SimulatedNetwork:
    """Synchronous request/response fabric with latency, loss and firewalls.

    One-way notification delivery is modelled as an HTTP request that elicits
    an empty 202 response, mirroring SOAP-over-HTTP practice.
    """

    def __init__(
        self,
        clock: Optional[VirtualClock] = None,
        *,
        latency: float = 0.001,
        loss_rate: float = 0.0,
        seed: int = 0,
    ) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self.latency = latency
        self.loss_rate = loss_rate
        self.stats = NetworkStats()
        self._rng = random.Random(seed)
        self._zones: dict[str, Zone] = {PUBLIC_ZONE: Zone(PUBLIC_ZONE)}
        self._registrations: dict[str, _Registration] = {}
        self._link_latency: dict[tuple[str, str], float] = {}
        #: wire observers: called with (target_address, request_bytes) for
        #: every delivered request (interaction tracing for the figures)
        self.observers: list[Callable[[str, bytes], None]] = []

    # --- topology ----------------------------------------------------------

    def add_zone(self, name: str, *, blocks_inbound: bool = False) -> Zone:
        zone = Zone(name, blocks_inbound)
        self._zones[name] = zone
        return zone

    def set_link_latency(self, from_zone: str, to_zone: str, latency: float) -> None:
        self._link_latency[(from_zone, to_zone)] = latency

    def register(self, address: str, handler: Handler, *, zone: str = PUBLIC_ZONE) -> None:
        if zone not in self._zones:
            raise ValueError(f"unknown zone {zone!r}")
        self._registrations[address] = _Registration(address, handler, zone)

    def unregister(self, address: str) -> None:
        self._registrations.pop(address, None)

    def is_registered(self, address: str) -> bool:
        return address in self._registrations

    def zone_of(self, address: str) -> Optional[str]:
        registration = self._registrations.get(address)
        return registration.zone if registration else None

    # --- transfer --------------------------------------------------------------

    def send_request(
        self, target_address: str, payload: bytes, *, from_zone: str = PUBLIC_ZONE
    ) -> bytes:
        """Deliver request bytes to the endpoint at ``target_address``.

        Raises :class:`AddressUnreachable`, :class:`FirewallBlocked` or
        :class:`MessageLost`; otherwise advances the clock by the round-trip
        latency and returns the response bytes.
        """
        registration = self._registrations.get(target_address)
        if registration is None:
            self.stats.refused += 1
            raise AddressUnreachable(target_address)
        target_zone = self._zones[registration.zone]
        if target_zone.blocks_inbound and from_zone != registration.zone:
            self.stats.refused += 1
            raise FirewallBlocked(
                f"zone {target_zone.name!r} refuses inbound connections from {from_zone!r}"
            )
        if self.loss_rate > 0 and self._rng.random() < self.loss_rate:
            self.stats.lost += 1
            raise MessageLost(target_address)
        one_way = self._link_latency.get((from_zone, registration.zone), self.latency)
        for observer in self.observers:
            observer(target_address, payload)
        self.stats.requests += 1
        self.stats.bytes_sent += len(payload)
        self.clock.advance(one_way)
        response = registration.handler(payload)
        self.clock.advance(one_way)
        self.stats.responses += 1
        self.stats.bytes_received += len(response)
        return response
