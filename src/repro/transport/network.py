"""The simulated network: addresses, zones, firewalls, latency and loss.

Endpoints register a handler under a URI address inside a *zone*.  Zones
model network segments; a zone may block inbound connections (a stateful
firewall / NAT), in which case hosts inside it can originate requests but
cannot be reached from other zones.  This is precisely the scenario the paper
gives for the pull delivery mode: "delivering messages to consumers behind
firewalls".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.obs.instrument import NULL_INSTRUMENTATION
from repro.transport.clock import VirtualClock

Handler = Callable[[bytes], bytes]

PUBLIC_ZONE = "public"


class NetworkError(Exception):
    """Base class for transport-level failures."""


class AddressUnreachable(NetworkError):
    """No endpoint is registered under the target address."""


class FirewallBlocked(NetworkError):
    """The target's zone rejects inbound connections from the caller's zone."""


class MessageLost(NetworkError):
    """The loss model dropped the message in flight."""


@dataclass
class Zone:
    """A network segment."""

    name: str
    #: when True, requests originating in *other* zones are refused
    blocks_inbound: bool = False


@dataclass
class NetworkStats:
    """Aggregate wire accounting, reset-able between benchmark phases.

    ``bytes_sent`` counts every request that left a sender, including ones
    the loss model dropped in flight (the sender still paid for them);
    refusals never leave the sender, so their bytes are not counted.
    """

    requests: int = 0
    responses: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    unreachable: int = 0
    firewall_blocked: int = 0
    lost: int = 0

    @property
    def refused(self) -> int:
        """Connection refusals of either kind (backward-compatible sum)."""
        return self.unreachable + self.firewall_blocked

    def reset(self) -> None:
        self.requests = self.responses = 0
        self.bytes_sent = self.bytes_received = 0
        self.unreachable = self.firewall_blocked = self.lost = 0


class WireObservation:
    """One completed ``send_request`` attempt, outcome included.

    Handed to every callback in :attr:`SimulatedNetwork.wire_observers`
    after the exchange resolves — successfully or not — so observability
    layers (``repro.obs.capture``) see responses and failures without
    monkey-patching the transport.

    A plain ``__slots__`` record (one per exchange): the frozen-dataclass
    construction path was measurable in the instrumentation-overhead bench.
    """

    __slots__ = (
        "address", "from_zone", "to_zone", "request", "response",
        "outcome", "started", "finished",
    )

    def __init__(
        self,
        address: str,
        from_zone: str,
        to_zone: Optional[str],
        request: bytes,
        response: Optional[bytes],
        outcome: str,
        started: float,
        finished: float,
    ) -> None:
        self.address = address
        self.from_zone = from_zone
        #: the target's zone, or None when the address was unreachable
        self.to_zone = to_zone
        self.request = request
        #: response bytes on success, None on any failure outcome
        self.response = response
        #: "ok", "unreachable", "firewall_blocked", "lost" or "error"
        self.outcome = outcome
        self.started = started
        self.finished = finished

    @property
    def latency(self) -> float:
        return self.finished - self.started

    @property
    def ok(self) -> bool:
        return self.outcome == "ok"


@dataclass
class _Registration:
    address: str
    handler: Handler
    zone: str


class SimulatedNetwork:
    """Synchronous request/response fabric with latency, loss and firewalls.

    One-way notification delivery is modelled as an HTTP request that elicits
    an empty 202 response, mirroring SOAP-over-HTTP practice.
    """

    def __init__(
        self,
        clock: Optional[VirtualClock] = None,
        *,
        latency: float = 0.001,
        loss_rate: float = 0.0,
        seed: int = 0,
    ) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self.latency = latency
        self.loss_rate = loss_rate
        self.stats = NetworkStats()
        self._rng = random.Random(seed)
        self._zones: dict[str, Zone] = {PUBLIC_ZONE: Zone(PUBLIC_ZONE)}
        self._registrations: dict[str, _Registration] = {}
        self._link_latency: dict[tuple[str, str], float] = {}
        #: request observers: called with (target_address, request_bytes)
        #: just before a request is handed to its handler; may raise a
        #: NetworkError to inject failures (see tests' loss schedules)
        self.observers: list[Callable[[str, bytes], None]] = []
        #: outcome observers: called with a WireObservation after every
        #: send_request attempt resolves, success or failure
        self.wire_observers: list[Callable[[WireObservation], None]] = []
        #: observability handle (see repro.obs); the null object by default
        self.instrumentation = NULL_INSTRUMENTATION
        # pre-bound net.* instruments, invalidated when the handle changes
        self._net_instr = None
        self._net_counters: dict[str, object] = {}
        self._net_rtt = None

    # --- topology ----------------------------------------------------------

    def add_zone(self, name: str, *, blocks_inbound: bool = False) -> Zone:
        zone = Zone(name, blocks_inbound)
        self._zones[name] = zone
        return zone

    def set_link_latency(self, from_zone: str, to_zone: str, latency: float) -> None:
        self._link_latency[(from_zone, to_zone)] = latency

    def register(self, address: str, handler: Handler, *, zone: str = PUBLIC_ZONE) -> None:
        if zone not in self._zones:
            raise ValueError(f"unknown zone {zone!r}")
        self._registrations[address] = _Registration(address, handler, zone)

    def unregister(self, address: str) -> None:
        self._registrations.pop(address, None)

    def is_registered(self, address: str) -> bool:
        return address in self._registrations

    def zone_of(self, address: str) -> Optional[str]:
        registration = self._registrations.get(address)
        return registration.zone if registration else None

    # --- transfer --------------------------------------------------------------

    def send_request(
        self, target_address: str, payload: bytes, *, from_zone: str = PUBLIC_ZONE
    ) -> bytes:
        """Deliver request bytes to the endpoint at ``target_address``.

        Raises :class:`AddressUnreachable`, :class:`FirewallBlocked` or
        :class:`MessageLost`; otherwise advances the clock by the round-trip
        latency and returns the response bytes.  When instrumented, every
        attempt — failed or not — is reported to :attr:`wire_observers` as a
        :class:`WireObservation` and spanned as ``deliver``.
        """
        instr = self.instrumentation
        if not (instr.enabled or self.wire_observers):
            # the uninstrumented fast path: identical to the seed hot path
            return self._transfer(target_address, payload, from_zone)
        started = self.clock.now()
        response: Optional[bytes] = None
        outcome = "error"
        phases = instr.phases
        timer = phases.begin() if phases is not None else 0
        with instr.span("deliver", address=target_address, from_zone=from_zone):
            try:
                response = self._transfer(target_address, payload, from_zone)
                outcome = "ok"
                return response
            except AddressUnreachable:
                outcome = "unreachable"
                raise
            except FirewallBlocked:
                outcome = "firewall_blocked"
                raise
            except MessageLost:
                outcome = "lost"
                raise
            finally:
                if phases is not None:
                    phases.end("deliver", timer)
                finished = self.clock.now()
                if instr is not self._net_instr:
                    self._net_instr = instr
                    self._net_counters = {}
                    self._net_rtt = instr.histogram_handle("net.rtt_seconds")
                counter = self._net_counters.get(outcome)
                if counter is None:
                    counter = self._net_counters[outcome] = instr.counter_handle(
                        "net.requests", outcome=outcome
                    )
                counter.inc()
                self._net_rtt.observe(finished - started)
                if self.wire_observers:
                    registration = self._registrations.get(target_address)
                    observation = WireObservation(
                        target_address,
                        from_zone,
                        registration.zone if registration else None,
                        payload,
                        response,
                        outcome,
                        started,
                        finished,
                    )
                    for hook in self.wire_observers:
                        hook(observation)

    def _transfer(self, target_address: str, payload: bytes, from_zone: str) -> bytes:
        """The wire itself: zone checks, loss model, latency, handler call."""
        registration = self._registrations.get(target_address)
        if registration is None:
            self.stats.unreachable += 1
            raise AddressUnreachable(target_address)
        target_zone = self._zones[registration.zone]
        if target_zone.blocks_inbound and from_zone != registration.zone:
            self.stats.firewall_blocked += 1
            raise FirewallBlocked(
                f"zone {target_zone.name!r} refuses inbound connections from {from_zone!r}"
            )
        if self.loss_rate > 0 and self._rng.random() < self.loss_rate:
            self.stats.lost += 1
            self.stats.bytes_sent += len(payload)
            raise MessageLost(target_address)
        one_way = self._link_latency.get((from_zone, registration.zone), self.latency)
        try:
            for observer in self.observers:
                observer(target_address, payload)
        except MessageLost:
            self.stats.bytes_sent += len(payload)
            raise
        self.stats.requests += 1
        self.stats.bytes_sent += len(payload)
        self.clock.advance(one_way)
        response = registration.handler(payload)
        self.clock.advance(one_way)
        self.stats.responses += 1
        self.stats.bytes_received += len(response)
        return response
