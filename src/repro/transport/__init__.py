"""Deterministic in-process transport substrate.

The paper's systems ran over real HTTP between real hosts.  Here the wire is
simulated so every experiment is reproducible on one machine, while still
exercising the full serialization path: every SOAP message is rendered to
XML, framed as an HTTP/1.1 request, routed through the simulated network
(latency, loss, firewall zones), unframed and re-parsed on the far side.

- :mod:`repro.transport.clock` -- virtual time (subscription expiry, latency
  accounting) with no wall-clock dependence.
- :mod:`repro.transport.network` -- address registry, zones with inbound
  firewalls (the reason pull delivery exists, per the paper), latency and
  loss models, byte/message accounting.
- :mod:`repro.transport.http` -- minimal HTTP/1.1 request/response framing.
- :mod:`repro.transport.endpoint` -- SOAP endpoint with per-action dispatch
  and a SOAP client helper.
"""

from repro.transport.clock import ClockScheduler, VirtualClock
from repro.transport.network import (
    AddressUnreachable,
    FirewallBlocked,
    MessageLost,
    NetworkError,
    NetworkStats,
    SimulatedNetwork,
    WireObservation,
    Zone,
)
from repro.transport.endpoint import SoapClient, SoapEndpoint

__all__ = [
    "VirtualClock",
    "ClockScheduler",
    "SimulatedNetwork",
    "Zone",
    "NetworkError",
    "AddressUnreachable",
    "FirewallBlocked",
    "MessageLost",
    "NetworkStats",
    "SoapEndpoint",
    "SoapClient",
    "WireObservation",
]
