"""Virtual time.

Subscription expiry ("soft state" in the paper's section VI observation 5),
message latency and lease renewal are all driven by one explicit clock so
tests and benchmarks are deterministic and can fast-forward time.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional


class VirtualClock:
    """A monotonically advancing simulated clock, in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new time."""
        if seconds < 0:
            raise ValueError("the clock cannot run backwards")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        if timestamp < self._now:
            raise ValueError(
                f"cannot rewind clock from {self._now} to {timestamp}"
            )
        self._now = timestamp
        return self._now

    def __repr__(self) -> str:
        return f"VirtualClock(t={self._now:.3f})"


class ClockScheduler:
    """Deferred callbacks on a :class:`VirtualClock`.

    The simulation is synchronous, so nothing fires spontaneously: callbacks
    scheduled for the future run when the owner *pumps* the scheduler —
    either :meth:`run_due` after the clock has been advanced externally, or
    :meth:`run_until_idle`, which repeatedly fast-forwards the clock to the
    next deadline.  Ties break in insertion order (a monotonic sequence
    number), so two tasks due at the same instant always run in the order
    they were scheduled — one of the determinism guarantees the delivery
    benchmarks assert byte-for-byte.
    """

    def __init__(self, clock: VirtualClock) -> None:
        self.clock = clock
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()

    def call_at(self, when: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` once the clock reaches ``when`` (clamped to now)."""
        heapq.heappush(
            self._heap, (max(when, self.clock.now()), next(self._seq), callback)
        )

    def call_later(self, delay: float, callback: Callable[[], None]) -> None:
        self.call_at(self.clock.now() + max(delay, 0.0), callback)

    def pending(self) -> int:
        return len(self._heap)

    def next_due(self) -> Optional[float]:
        """The earliest scheduled deadline, or ``None`` when idle."""
        return self._heap[0][0] if self._heap else None

    def run_due(self) -> int:
        """Run every callback whose deadline has passed; returns how many."""
        ran = 0
        while self._heap and self._heap[0][0] <= self.clock.now():
            _, _, callback = heapq.heappop(self._heap)
            callback()
            ran += 1
        return ran

    def run_until_idle(self, *, deadline: Optional[float] = None) -> int:
        """Advance the clock deadline-to-deadline until nothing is scheduled
        (or the next deadline lies beyond ``deadline``); returns runs."""
        ran = self.run_due()
        while self._heap:
            when = self._heap[0][0]
            if deadline is not None and when > deadline:
                break
            self.clock.advance_to(when)
            ran += self.run_due()
        return ran
