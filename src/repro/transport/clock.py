"""Virtual time.

Subscription expiry ("soft state" in the paper's section VI observation 5),
message latency and lease renewal are all driven by one explicit clock so
tests and benchmarks are deterministic and can fast-forward time.
"""

from __future__ import annotations


class VirtualClock:
    """A monotonically advancing simulated clock, in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new time."""
        if seconds < 0:
            raise ValueError("the clock cannot run backwards")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        if timestamp < self._now:
            raise ValueError(
                f"cannot rewind clock from {self._now} to {timestamp}"
            )
        self._now = timestamp
        return self._now

    def __repr__(self) -> str:
        return f"VirtualClock(t={self._now:.3f})"
