"""Minimal HTTP/1.1 framing for SOAP messages.

Every envelope crosses the simulated wire as a real HTTP request so the
benchmarks can account true message sizes (Table 3's "message transport" row
contrasts RPC-bound protocols with transport-independent SOAP; we demonstrate
the HTTP binding while the codec itself stays transport-agnostic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from urllib.parse import urlparse

_CRLF = "\r\n"


class HttpFramingError(ValueError):
    """Malformed HTTP framing on the simulated wire."""


@dataclass
class HttpRequest:
    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""


@dataclass
class HttpResponse:
    status: int
    reason: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


def build_request(
    url: str, body: bytes, *, soap_action: str = "", content_type: str = "text/xml; charset=utf-8"
) -> bytes:
    """Frame a SOAP POST to ``url``."""
    parts = urlparse(url)
    path = parts.path or "/"
    headers = [
        f"POST {path} HTTP/1.1",
        f"Host: {parts.netloc or 'localhost'}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f'SOAPAction: "{soap_action}"',
        "",
        "",
    ]
    return _CRLF.join(headers).encode("ascii") + body


def parse_request(wire: bytes) -> HttpRequest:
    head, _, body = wire.partition(b"\r\n\r\n")
    lines = head.decode("ascii", errors="replace").split(_CRLF)
    if not lines or " " not in lines[0]:
        raise HttpFramingError("missing request line")
    try:
        method, path, _version = lines[0].split(" ", 2)
    except ValueError as exc:
        raise HttpFramingError(f"bad request line: {lines[0]!r}") from exc
    headers = _parse_headers(lines[1:])
    return HttpRequest(method, path, headers, body)


def build_response(status: int, body: bytes = b"", reason: str | None = None) -> bytes:
    reason = reason or {200: "OK", 202: "Accepted", 400: "Bad Request", 500: "Internal Server Error"}.get(
        status, "Unknown"
    )
    headers = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: text/xml; charset=utf-8",
        f"Content-Length: {len(body)}",
        "",
        "",
    ]
    return _CRLF.join(headers).encode("ascii") + body


def parse_response(wire: bytes) -> HttpResponse:
    head, _, body = wire.partition(b"\r\n\r\n")
    lines = head.decode("ascii", errors="replace").split(_CRLF)
    if not lines or not lines[0].startswith("HTTP/"):
        raise HttpFramingError("missing status line")
    parts = lines[0].split(" ", 2)
    if len(parts) < 2:
        raise HttpFramingError(f"bad status line: {lines[0]!r}")
    status = int(parts[1])
    reason = parts[2] if len(parts) > 2 else ""
    headers = _parse_headers(lines[1:])
    return HttpResponse(status, reason, headers, body)


def _parse_headers(lines: list[str]) -> dict[str, str]:
    headers: dict[str, str] = {}
    for line in lines:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip()] = value.strip()
    return headers
