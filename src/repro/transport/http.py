"""Minimal HTTP/1.1 framing for SOAP messages.

Every envelope crosses the simulated wire as a real HTTP request so the
benchmarks can account true message sizes (Table 3's "message transport" row
contrasts RPC-bound protocols with transport-independent SOAP; we demonstrate
the HTTP binding while the codec itself stays transport-agnostic).

Framing is strict in both directions: the head must be pure ASCII with
CRLF-free header fields, and a declared ``Content-Length`` must match the
body byte-for-byte.  Anything else raises :class:`HttpFramingError` — a
mismatch silently accepted here would let a truncated or padded envelope
masquerade as the real message, which is exactly the class of wire-fidelity
bug the conformance fuzzer exists to catch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from urllib.parse import urlparse

_CRLF = "\r\n"

#: trace-context request header (see :mod:`repro.obs.propagation`).
#: Instrumented sends carry lineage here — in the HTTP head, the way W3C
#: ``traceparent`` rides — so the SOAP envelope bytes stay identical with
#: and without instrumentation.
LINEAGE_HTTP_HEADER = "X-Lineage"


class HttpFramingError(ValueError):
    """Malformed HTTP framing on the simulated wire."""


@dataclass
class HttpRequest:
    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""


@dataclass
class HttpResponse:
    status: int
    reason: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


def _require_token(value: str, what: str) -> str:
    """An ASCII, CR/LF-free header field; raises HttpFramingError otherwise."""
    if not value.isascii():
        raise HttpFramingError(f"non-ASCII {what}: {value!r}")
    if "\r" in value or "\n" in value:
        raise HttpFramingError(f"CR/LF in {what}: {value!r}")
    return value


def build_request(
    url: str,
    body: bytes,
    *,
    soap_action: str = "",
    content_type: str = "text/xml; charset=utf-8",
    lineage: str | None = None,
) -> bytes:
    """Frame a SOAP POST to ``url``.

    ``lineage`` is the optional trace-context value; when given it is
    emitted as an ``X-Lineage`` header so instrumented sends never alter
    the envelope bytes themselves.
    """
    if any(ch <= " " for ch in url):
        # controls and SP must be rejected before urlparse sees them: a SP in
        # the request-target would mis-split the request line on parse, and
        # urlparse *silently strips* tab/CR/LF (WHATWG sanitization) — either
        # way the path on the wire would not be the path the caller addressed
        # (RFC 7230 §3.1.1 requires percent-encoding)
        raise HttpFramingError(f"control character or space in request URL: {url!r}")
    parts = urlparse(url)
    path = _require_token(parts.path or "/", "request path")
    headers = [
        f"POST {path} HTTP/1.1",
        f"Host: {_require_token(parts.netloc or 'localhost', 'Host')}",
        f"Content-Type: {_require_token(content_type, 'Content-Type')}",
        f"Content-Length: {len(body)}",
        f'SOAPAction: "{_require_token(soap_action, "SOAPAction")}"',
    ]
    if lineage is not None:
        headers.append(
            f"{LINEAGE_HTTP_HEADER}: {_require_token(lineage, LINEAGE_HTTP_HEADER)}"
        )
    headers += ["", ""]
    return _CRLF.join(headers).encode("ascii") + body


def parse_request(wire: bytes) -> HttpRequest:
    head, sep, body = wire.partition(b"\r\n\r\n")
    if not sep:
        raise HttpFramingError("no header/body separator (CRLFCRLF)")
    lines = _decode_head(head).split(_CRLF)
    if not lines or " " not in lines[0]:
        raise HttpFramingError("missing request line")
    try:
        method, path, _version = lines[0].split(" ", 2)
    except ValueError as exc:
        raise HttpFramingError(f"bad request line: {lines[0]!r}") from exc
    headers = _parse_headers(lines[1:])
    return HttpRequest(method, path, headers, _checked_body(headers, body))


def build_response(status: int, body: bytes = b"", reason: str | None = None) -> bytes:
    reason = reason or {200: "OK", 202: "Accepted", 400: "Bad Request", 500: "Internal Server Error"}.get(
        status, "Unknown"
    )
    headers = [
        f"HTTP/1.1 {status} {_require_token(reason, 'reason phrase')}",
        "Content-Type: text/xml; charset=utf-8",
        f"Content-Length: {len(body)}",
        "",
        "",
    ]
    return _CRLF.join(headers).encode("ascii") + body


def parse_response(wire: bytes) -> HttpResponse:
    head, sep, body = wire.partition(b"\r\n\r\n")
    if not sep:
        raise HttpFramingError("no header/body separator (CRLFCRLF)")
    lines = _decode_head(head).split(_CRLF)
    if not lines or not lines[0].startswith("HTTP/"):
        raise HttpFramingError("missing status line")
    parts = lines[0].split(" ", 2)
    if len(parts) < 2:
        raise HttpFramingError(f"bad status line: {lines[0]!r}")
    try:
        status = int(parts[1])
    except ValueError as exc:
        raise HttpFramingError(f"non-numeric status: {parts[1]!r}") from exc
    reason = parts[2] if len(parts) > 2 else ""
    headers = _parse_headers(lines[1:])
    return HttpResponse(status, reason, headers, _checked_body(headers, body))


def _decode_head(head: bytes) -> str:
    try:
        return head.decode("ascii")
    except UnicodeDecodeError as exc:
        raise HttpFramingError(f"non-ASCII bytes in header section: {exc}") from exc


def _parse_headers(lines: list[str]) -> dict[str, str]:
    headers: dict[str, str] = {}
    for line in lines:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep or not name.strip():
            raise HttpFramingError(f"malformed header line: {line!r}")
        headers[name.strip()] = value.strip()
    return headers


def _checked_body(headers: dict[str, str], body: bytes) -> bytes:
    """Validate the body against a declared Content-Length.

    With no declared length the body is taken as delimited by the wire blob
    itself (the simulated transport always hands over whole messages); with
    one, any mismatch — short, long, or unparsable — is a framing error, not
    a silent truncation.
    """
    declared = _content_length(headers)
    if declared is not None and declared != len(body):
        raise HttpFramingError(
            f"Content-Length mismatch: declared {declared}, body has {len(body)} bytes"
        )
    return body


def _content_length(headers: dict[str, str]) -> int | None:
    for name, value in headers.items():
        if name.lower() == "content-length":
            try:
                declared = int(value)
            except ValueError as exc:
                raise HttpFramingError(f"bad Content-Length: {value!r}") from exc
            if declared < 0:
                raise HttpFramingError(f"negative Content-Length: {declared}")
            return declared
    return None
