"""A WS-ResourceFramework (WSRF) subset.

WS-Notification versions 1.0 and 1.2 *require* WSRF: a subscription is a
WS-Resource whose state (filter, termination time, paused flag...) is exposed
as resource properties, whose lifetime is managed via WSRF-ResourceLifetime,
and whose demise is announced by a WSRF ``TerminationNotification``.  Version
1.3 made WSRF optional by adding native Renew/Unsubscribe — one of the
convergence steps the paper tracks in Table 1.

This package implements the parts the notification stack needs:

- :mod:`repro.wsrf.resource` -- WS-Resources, resource property documents and
  the implied-resource-pattern registry (EPR reference parameters select the
  resource).
- :mod:`repro.wsrf.properties` -- GetResourceProperty, GetMultiple,
  SetResourceProperties (insert/update/delete) and QueryResourceProperties
  (XPath over the property document).
- :mod:`repro.wsrf.lifetime` -- immediate ``Destroy`` and scheduled
  termination (``SetTerminationTime``), plus termination notification
  callbacks (how WSN <= 1.2 realizes WS-Eventing's SubscriptionEnd, per
  Table 2).
"""

from repro.wsrf.resource import ResourceKey, ResourceRegistry, WsResource, ResourceUnknownFault
from repro.wsrf.properties import (
    get_resource_property,
    get_multiple_resource_properties,
    set_resource_properties,
    query_resource_properties,
    InvalidResourcePropertyFault,
)
from repro.wsrf.lifetime import destroy_resource, set_termination_time, sweep_expired

__all__ = [
    "WsResource",
    "ResourceKey",
    "ResourceRegistry",
    "ResourceUnknownFault",
    "get_resource_property",
    "get_multiple_resource_properties",
    "set_resource_properties",
    "query_resource_properties",
    "InvalidResourcePropertyFault",
    "destroy_resource",
    "set_termination_time",
    "sweep_expired",
]
