"""WSRF resource property operations.

These are the operations the paper's Table 2 maps WS-Eventing's ``GetStatus``
onto: "Not defined, can use getResourceProperties in WSRF".
"""

from __future__ import annotations

from typing import Optional

from repro.soap.fault import FaultCode, SoapFault
from repro.wsrf.resource import WsResource
from repro.xmlkit.names import Namespaces, QName
from repro.xmlkit.element import XElem
from repro.xmlkit.xpath import XPath, XPathError


class InvalidResourcePropertyFault(SoapFault):
    """The named property does not exist on the resource."""

    def __init__(self, name: QName) -> None:
        super().__init__(
            FaultCode.SENDER,
            f"resource has no property {name}",
            subcode=QName(Namespaces.WSRF_RP, "InvalidResourcePropertyQNameFault"),
        )


def get_resource_property(resource: WsResource, name: QName) -> list[XElem]:
    """GetResourceProperty: all values of one property."""
    if name not in resource.properties:
        raise InvalidResourcePropertyFault(name)
    return resource.get_property(name)


def get_multiple_resource_properties(
    resource: WsResource, names: list[QName]
) -> dict[QName, list[XElem]]:
    """GetMultipleResourceProperties: values for each requested property."""
    return {name: get_resource_property(resource, name) for name in names}


def set_resource_properties(
    resource: WsResource,
    *,
    insert: Optional[list[XElem]] = None,
    update: Optional[list[XElem]] = None,
    delete: Optional[list[QName]] = None,
) -> None:
    """SetResourceProperties with Insert/Update/Delete components.

    Components apply in the order delete, update, insert (each is atomic per
    property; validation happens before mutation so a failed request leaves
    the document untouched).
    """
    for name in delete or []:
        if name not in resource.properties:
            raise InvalidResourcePropertyFault(name)
    for element in update or []:
        if element.name not in resource.properties:
            raise InvalidResourcePropertyFault(element.name)
    for name in delete or []:
        del resource.properties[name]
    if update:
        by_name: dict[QName, list[XElem]] = {}
        for element in update:
            by_name.setdefault(element.name, []).append(element.copy())
        for name, values in by_name.items():
            resource.properties[name] = values
    for element in insert or []:
        resource.properties.setdefault(element.name, []).append(element.copy())


_PROPERTY_DOC_ROOT = QName(Namespaces.WSRF_RP, "ResourcePropertyDocument")


def query_resource_properties(
    resource: WsResource,
    expression: str,
    namespaces: Optional[dict[str, str]] = None,
) -> list[XElem]:
    """QueryResourceProperties with the XPath 1.0 dialect."""
    document = resource.property_document(_PROPERTY_DOC_ROOT)
    try:
        result = XPath(expression, namespaces).evaluate(document)
    except XPathError as exc:
        raise SoapFault(
            FaultCode.SENDER,
            f"query evaluation failed: {exc}",
            subcode=QName(Namespaces.WSRF_RP, "QueryEvaluationErrorFault"),
        ) from exc
    if isinstance(result, list):
        return [item for item in result if isinstance(item, XElem)]
    # scalar results come back wrapped so the response is still XML
    from repro.xmlkit.xpath.values import to_string

    wrapper = XElem(QName(Namespaces.WSRF_RP, "QueryResult"))
    wrapper.append(to_string(result))
    return [wrapper]
