"""WSRF-ResourceLifetime: Destroy and ScheduledResourceTermination.

Soft-state lifetime is the evolution the paper highlights in section VI
observation (5): subscriptions time out unless renewed, so dead consumers are
garbage-collected without keeping connections alive.  WSN <= 1.2 realizes
subscription expiry through these operations; WSN 1.3 and WS-Eventing carry
the same semantics natively (Renew / expiration in Subscribe).
"""

from __future__ import annotations

from typing import Optional

from repro.soap.fault import FaultCode, SoapFault
from repro.wsrf.resource import ResourceRegistry, WsResource
from repro.xmlkit.names import Namespaces, QName


class UnableToSetTerminationTimeFault(SoapFault):
    def __init__(self, reason: str) -> None:
        super().__init__(
            FaultCode.SENDER,
            reason,
            subcode=QName(Namespaces.WSRF_RL, "UnableToSetTerminationTimeFault"),
        )


def destroy_resource(registry: ResourceRegistry, resource: WsResource) -> None:
    """Immediate destruction; fires termination notifications."""
    registry.destroy(resource.key, reason="destroyed")


def set_termination_time(
    registry: ResourceRegistry,
    resource: WsResource,
    termination_time: Optional[float],
) -> float | None:
    """SetTerminationTime: absolute virtual-clock time, or ``None`` for infinite.

    Returns the new termination time.  Setting a time in the past is
    rejected (the spec's UnableToSetTerminationTime fault) rather than being
    treated as an immediate destroy.
    """
    now = registry.clock.now()
    if termination_time is not None and termination_time < now:
        raise UnableToSetTerminationTimeFault(
            f"requested termination time {termination_time} is in the past (now={now})"
        )
    resource.termination_time = termination_time
    registry.note_termination(resource)
    return termination_time


def sweep_expired(registry: ResourceRegistry) -> list[WsResource]:
    """Expire overdue resources, firing their termination notifications."""
    return registry.sweep()
