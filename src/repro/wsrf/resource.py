"""WS-Resources and the implied resource pattern."""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.soap.fault import FaultCode, SoapFault
from repro.transport.clock import VirtualClock
from repro.wsa.epr import EndpointReference
from repro.xmlkit.element import XElem, text_element
from repro.xmlkit.names import Namespaces, QName

#: the reference parameter that selects a resource (implied resource pattern)
RESOURCE_ID = QName("http://repro.invalid/wsrf", "ResourceID")

ResourceKey = str


class ResourceUnknownFault(SoapFault):
    """wsrf-bf ResourceUnknownFault: the EPR designates no live resource."""

    def __init__(self, key: ResourceKey) -> None:
        super().__init__(
            FaultCode.SENDER,
            f"resource {key!r} is unknown (destroyed or never existed)",
            subcode=QName(Namespaces.WSRF_BF, "ResourceUnknownFault"),
        )


@dataclass
class WsResource:
    """One stateful resource with a property document and a lifetime.

    Properties are multi-valued: each QName maps to a list of elements.  A
    WSN subscription resource, for instance, exposes its filter, its
    termination time and its paused state as properties.
    """

    key: ResourceKey
    properties: dict[QName, list[XElem]] = field(default_factory=dict)
    #: virtual-clock timestamp after which the resource is expired; None = infinite
    termination_time: Optional[float] = None
    destroyed: bool = False
    #: callbacks run exactly once on destruction/expiry (termination notification)
    termination_listeners: list[Callable[["WsResource", str], None]] = field(default_factory=list)

    def set_property(self, name: QName, *values: XElem) -> None:
        self.properties[name] = list(values)

    def set_text_property(self, name: QName, value: str) -> None:
        self.set_property(name, text_element(name, value))

    def get_property(self, name: QName) -> list[XElem]:
        return list(self.properties.get(name, []))

    def property_text(self, name: QName) -> Optional[str]:
        values = self.properties.get(name)
        if not values:
            return None
        return values[0].full_text().strip()

    def property_document(self, root_name: QName) -> XElem:
        """The full resource property document as one element."""
        document = XElem(root_name)
        for values in self.properties.values():
            for value in values:
                document.append(value.copy())
        return document

    def is_expired(self, now: float) -> bool:
        return self.termination_time is not None and now >= self.termination_time

    def alive(self, now: float) -> bool:
        return not self.destroyed and not self.is_expired(now)

    def _fire_termination(self, reason: str) -> None:
        listeners, self.termination_listeners = self.termination_listeners, []
        for listener in listeners:
            listener(self, reason)


class ResourceRegistry:
    """All live resources behind one Web service endpoint."""

    def __init__(self, clock: VirtualClock, key_prefix: str = "res") -> None:
        self.clock = clock
        self._key_prefix = key_prefix
        self._serial = 0
        self._resources: dict[ResourceKey, WsResource] = {}
        # earliest-expiry heap of (termination_time, key); lazy deletion:
        # entries go stale when a resource is destroyed or its termination
        # time changes, and sweep_due skips them
        self._expiry_heap: list[tuple[float, ResourceKey]] = []

    def create(
        self, *, lifetime: Optional[float] = None, key: Optional[ResourceKey] = None
    ) -> WsResource:
        """Create a resource; ``lifetime`` is seconds from now (soft state).
        A forced ``key`` (log replay) also advances the serial past it."""
        if key is None:
            self._serial += 1
            key = f"{self._key_prefix}-{self._serial}"
        else:
            if key in self._resources:
                raise ValueError(f"resource key {key!r} already exists")
            tail = key.rsplit("-", 1)[-1]
            if key.startswith(f"{self._key_prefix}-") and tail.isdigit():
                self._serial = max(self._serial, int(tail))
        resource = WsResource(key)
        if lifetime is not None:
            resource.termination_time = self.clock.now() + lifetime
        self._resources[key] = resource
        self.note_termination(resource)
        return resource

    def note_termination(self, resource: WsResource) -> None:
        """Record (a change of) ``resource.termination_time`` so
        :meth:`sweep_due` sees it; must be called after every assignment."""
        if resource.termination_time is not None:
            heapq.heappush(
                self._expiry_heap, (resource.termination_time, resource.key)
            )

    def sweep_due(self) -> list[WsResource]:
        """Expire exactly the resources whose termination time has passed.

        Amortized O(expired log n) per call instead of :meth:`sweep`'s full
        scan — the fan-out hot path calls this once per publication.
        """
        now = self.clock.now()
        heap = self._expiry_heap
        expired: list[WsResource] = []
        while heap and heap[0][0] <= now:
            when, key = heapq.heappop(heap)
            resource = self._resources.get(key)
            if resource is None or resource.termination_time != when:
                continue  # stale entry (destroyed / rescheduled)
            self._expire(resource)
            expired.append(resource)
        return expired

    def get(self, key: ResourceKey) -> WsResource:
        """Look up a live resource; raises :class:`ResourceUnknownFault`."""
        resource = self._resources.get(key)
        if resource is None or not resource.alive(self.clock.now()):
            if resource is not None and resource.is_expired(self.clock.now()):
                self._expire(resource)
            raise ResourceUnknownFault(key)
        return resource

    def find(self, key: ResourceKey) -> Optional[WsResource]:
        return self._resources.get(key)

    def resolve(self, epr_or_headers_params: list[XElem]) -> WsResource:
        """Implied resource pattern: the ResourceID echoed header picks the resource."""
        for element in epr_or_headers_params:
            if element.name == RESOURCE_ID:
                return self.get(element.full_text().strip())
        raise ResourceUnknownFault("<no ResourceID header>")

    def epr_for(self, resource: WsResource, address: str) -> EndpointReference:
        epr = EndpointReference(address)
        epr.with_parameter(text_element(RESOURCE_ID, resource.key))
        return epr

    def destroy(self, key: ResourceKey, reason: str = "destroyed") -> None:
        resource = self._resources.pop(key, None)
        if resource is None or resource.destroyed:
            raise ResourceUnknownFault(key)
        resource.destroyed = True
        resource._fire_termination(reason)

    def sweep(self) -> list[WsResource]:
        """Expire every resource whose termination time has passed."""
        now = self.clock.now()
        expired = [r for r in self._resources.values() if r.is_expired(now)]
        for resource in expired:
            self._expire(resource)
        return expired

    def _expire(self, resource: WsResource) -> None:
        self._resources.pop(resource.key, None)
        if not resource.destroyed:
            resource.destroyed = True
            resource._fire_termination("expired")

    def live_resources(self) -> Iterator[WsResource]:
        now = self.clock.now()
        return (r for r in list(self._resources.values()) if r.alive(now))

    def __len__(self) -> int:
        return sum(1 for _ in self.live_resources())
