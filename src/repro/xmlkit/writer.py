"""Serialize :class:`XElem` trees to XML text.

Prefix management is deterministic: the well-known WS-* namespaces get their
conventional prefixes (``wsa``, ``wse``, ``wsnt``...), unknown namespaces get
``ns0``, ``ns1``... in first-use order.  Deterministic output matters for the
message-format comparison benchmarks, which diff serialized messages
byte-for-byte.

Frozen subtrees (:meth:`XElem.freeze`) additionally act as serialization
cache points: the first time a frozen element is written it remembers the
exact text it produced together with the prefix assignment it was produced
under, and every later write under the *same* prefix assignment splices that
text back in verbatim.  Because notification fan-out reuses one frozen
payload across every push, the body of a publication is serialized once and
re-used byte-identically for each subscriber.
"""

from __future__ import annotations

from repro.xmlkit.element import XElem
from repro.xmlkit.names import Namespaces, QName

# a single translate pass per text node (was: chained str.replace passes)
# \r must be a character reference: the XML line-end normalization pass turns
# a literal \r (or \r\n) into \n before the parser ever sees it
_TEXT_TRANSLATION = str.maketrans(
    {"&": "&amp;", "<": "&lt;", ">": "&gt;", "\r": "&#13;"}
)
# attribute-value normalization additionally folds \t and \n to spaces, so
# all three must ride as character references to round-trip exactly
_ATTR_TRANSLATION = str.maketrans(
    {
        "&": "&amp;",
        "<": "&lt;",
        ">": "&gt;",
        '"': "&quot;",
        "\t": "&#9;",
        "\n": "&#10;",
        "\r": "&#13;",
    }
)


def _escape_text(value: str) -> str:
    return value.translate(_TEXT_TRANSLATION)


def _escape_attr(value: str) -> str:
    return value.translate(_ATTR_TRANSLATION)


class WriterStats:
    """Serialization accounting for the fan-out benchmarks (single-threaded)."""

    __slots__ = ("frozen_serializations", "frozen_splices", "tree_serializations")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.frozen_serializations = 0
        self.frozen_splices = 0
        #: full top-level tree walks (:func:`serialize_xml` calls) — the
        #: envelope byte-template cache exists to drive this to zero on the
        #: steady-state fan-out path
        self.tree_serializations = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "frozen_serializations": self.frozen_serializations,
            "frozen_splices": self.frozen_splices,
            "tree_serializations": self.tree_serializations,
        }


WRITER_STATS = WriterStats()


class _PrefixAllocator:
    def __init__(self) -> None:
        self._by_uri: dict[str, str] = {}
        self._used: set[str] = set()
        self._counter = 0

    def prefix_for(self, uri: str) -> str:
        if uri in self._by_uri:
            return self._by_uri[uri]
        preferred = Namespaces.PREFERRED_PREFIXES.get(uri)
        if preferred and preferred not in self._used:
            prefix = preferred
        else:
            prefix = f"ns{self._counter}"
            self._counter += 1
            while prefix in self._used:
                prefix = f"ns{self._counter}"
                self._counter += 1
        self._by_uri[uri] = prefix
        self._used.add(prefix)
        return prefix

    def declared(self) -> dict[str, str]:
        return dict(self._by_uri)


def serialize_xml(root: XElem, *, xml_declaration: bool = False, indent: bool = False) -> str:
    """Serialize a tree to a string.

    All namespace declarations are hoisted to the root element (a single
    two-pass walk), which keeps notification payload serialization compact
    and stable regardless of tree construction order.
    """
    WRITER_STATS.tree_serializations += 1
    allocator = _PrefixAllocator()
    _collect_namespaces(root, allocator)
    parts: list[str] = []
    if xml_declaration:
        parts.append('<?xml version="1.0" encoding="utf-8"?>')
        if indent:
            parts.append("\n")
    _write(root, allocator, parts, declare_namespaces=True, indent=0 if indent else None)
    return "".join(parts)


def serialize_with_allocator(root: XElem) -> tuple[str, _PrefixAllocator]:
    """Serialize like :func:`serialize_xml` (declaration, no indent) but also
    return the prefix allocator, so a caller can compile byte-templates whose
    splice slots must be rendered under the exact same prefix assignment."""
    WRITER_STATS.tree_serializations += 1
    allocator = _PrefixAllocator()
    _collect_namespaces(root, allocator)
    parts: list[str] = ['<?xml version="1.0" encoding="utf-8"?>']
    _write(root, allocator, parts, declare_namespaces=True, indent=None)
    return "".join(parts), allocator


def serialize_subtree(elem: XElem, allocator: _PrefixAllocator) -> str:
    """Serialize one subtree under an existing prefix assignment, without
    namespace declarations — the exact text :func:`serialize_xml` would embed
    for this subtree inside a document whose root declared ``allocator``'s
    prefixes."""
    parts: list[str] = []
    _write(elem, allocator, parts, declare_namespaces=False, indent=None)
    return "".join(parts)


def frozen_splice_text(elem: XElem, mapping: tuple[str, ...]) -> str:
    """The spliced text of a frozen subtree under a known prefix assignment.

    ``mapping`` pairs positionally with the subtree's frozen namespace order
    (:func:`frozen_namespace_order`).  This is the render-time half of the
    envelope byte-template cache: the template remembers the payload slot's
    prefix mapping once, and every later payload with the same namespace
    shape splices straight from (or refills) its own serialization cache.
    """
    state = elem._fcache
    if state is None:
        raise ValueError("frozen_splice_text requires a frozen element")
    if state[1] == mapping and state[2] is not None:
        WRITER_STATS.frozen_splices += 1
        return state[2]
    allocator = _PrefixAllocator()
    for uri, prefix in zip(_frozen_namespace_order(elem), mapping):
        allocator._by_uri[uri] = prefix
        allocator._used.add(prefix)
    sub: list[str] = []
    _write(elem, allocator, sub, declare_namespaces=False, indent=None, splice=False)
    text = "".join(sub)
    state[1] = mapping
    state[2] = text
    WRITER_STATS.frozen_serializations += 1
    return text


def frozen_namespace_order(elem: XElem) -> tuple[str, ...]:
    """Public accessor for a frozen subtree's memoized namespace order (the
    template cache keys notification shapes on it)."""
    return _frozen_namespace_order(elem)


def _namespace_order(elem: XElem) -> list[str]:
    """Namespaces of a subtree in first-use pre-order (deduplicated) —
    the exact order :func:`_collect_namespaces` would register them in."""
    seen: set[str] = set()
    order: list[str] = []

    def walk(node: XElem) -> None:
        uri = node.name.namespace
        if uri and uri not in seen:
            seen.add(uri)
            order.append(uri)
        for attr in node.attrs:
            ns = attr.namespace
            if ns and ns not in (Namespaces.XMLNS, Namespaces.XML) and ns not in seen:
                seen.add(ns)
                order.append(ns)
        for child in node.elements():
            walk(child)

    walk(elem)
    return order


def _frozen_namespace_order(elem: XElem) -> tuple[str, ...]:
    state = elem._fcache
    assert state is not None
    if state[0] is None:
        state[0] = tuple(_namespace_order(elem))
    return state[0]


def _collect_namespaces(elem: XElem, allocator: _PrefixAllocator) -> None:
    if elem._fcache is not None:  # frozen: replay the memoized namespace order
        for uri in _frozen_namespace_order(elem):
            allocator.prefix_for(uri)
        return
    if elem.name.namespace:
        allocator.prefix_for(elem.name.namespace)
    for attr in elem.attrs:
        if attr.namespace and attr.namespace not in (Namespaces.XMLNS, Namespaces.XML):
            allocator.prefix_for(attr.namespace)
    for child in elem.elements():
        _collect_namespaces(child, allocator)


def _tag(name: QName, allocator: _PrefixAllocator) -> str:
    if not name.namespace:
        return name.local
    return f"{allocator.prefix_for(name.namespace)}:{name.local}"


def _write_frozen(elem: XElem, allocator: _PrefixAllocator, parts: list[str]) -> None:
    """Write a frozen subtree through its serialization cache.

    The cache is valid only for the prefix assignment it was filled under:
    the key is the tuple of prefixes the allocator maps this subtree's
    namespaces to.  A different assignment (a different envelope context)
    falls back to a normal serialization and re-primes the cache.
    """
    state = elem._fcache
    assert state is not None
    mapping = tuple(
        allocator.prefix_for(uri) for uri in _frozen_namespace_order(elem)
    )
    if state[1] == mapping and state[2] is not None:
        WRITER_STATS.frozen_splices += 1
        parts.append(state[2])
        return
    sub: list[str] = []
    _write(elem, allocator, sub, declare_namespaces=False, indent=None, splice=False)
    text = "".join(sub)
    state[1] = mapping
    state[2] = text
    WRITER_STATS.frozen_serializations += 1
    parts.append(text)


def _write(
    elem: XElem,
    allocator: _PrefixAllocator,
    parts: list[str],
    *,
    declare_namespaces: bool,
    indent: int | None,
    splice: bool = True,
) -> None:
    pad = "  " * indent if indent is not None else ""
    tag = _tag(elem.name, allocator)
    parts.append(f"{pad}<{tag}")
    if declare_namespaces:
        for uri, prefix in sorted(allocator.declared().items(), key=lambda kv: kv[1]):
            parts.append(f' xmlns:{prefix}="{_escape_attr(uri)}"')
    for attr, value in elem.attrs.items():
        if attr.namespace == Namespaces.XML:
            attr_tag = f"xml:{attr.local}"
        elif attr.namespace:
            attr_tag = f"{allocator.prefix_for(attr.namespace)}:{attr.local}"
        else:
            attr_tag = attr.local
        parts.append(f' {attr_tag}="{_escape_attr(value)}"')
    if not elem.children:
        parts.append("/>")
        if indent is not None:
            parts.append("\n")
        return
    parts.append(">")
    # indentation must not alter mixed content, so any text child disables it
    only_text = any(isinstance(child, str) for child in elem.children)
    if indent is not None and not only_text:
        parts.append("\n")
    child_indent = indent + 1 if indent is not None and not only_text else None
    for child in elem.children:
        if isinstance(child, str):
            parts.append(_escape_text(child))
        elif splice and child_indent is None and child._fcache is not None:
            # top-most frozen boundary: cached text or one serialization
            _write_frozen(child, allocator, parts)
        else:
            _write(
                child,
                allocator,
                parts,
                declare_namespaces=False,
                indent=child_indent,
                splice=splice,
            )
    if indent is not None and not only_text:
        parts.append(pad)
    parts.append(f"</{tag}>")
    if indent is not None:
        parts.append("\n")
