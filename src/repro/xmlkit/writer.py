"""Serialize :class:`XElem` trees to XML text.

Prefix management is deterministic: the well-known WS-* namespaces get their
conventional prefixes (``wsa``, ``wse``, ``wsnt``...), unknown namespaces get
``ns0``, ``ns1``... in first-use order.  Deterministic output matters for the
message-format comparison benchmarks, which diff serialized messages
byte-for-byte.
"""

from __future__ import annotations

from repro.xmlkit.element import XElem
from repro.xmlkit.names import Namespaces, QName

_ESCAPES_TEXT = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}
_ESCAPES_ATTR = {"&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;"}


def _escape(value: str, table: dict[str, str]) -> str:
    for raw, enc in table.items():
        value = value.replace(raw, enc)
    return value


class _PrefixAllocator:
    def __init__(self) -> None:
        self._by_uri: dict[str, str] = {}
        self._used: set[str] = set()
        self._counter = 0

    def prefix_for(self, uri: str) -> str:
        if uri in self._by_uri:
            return self._by_uri[uri]
        preferred = Namespaces.PREFERRED_PREFIXES.get(uri)
        if preferred and preferred not in self._used:
            prefix = preferred
        else:
            prefix = f"ns{self._counter}"
            self._counter += 1
            while prefix in self._used:
                prefix = f"ns{self._counter}"
                self._counter += 1
        self._by_uri[uri] = prefix
        self._used.add(prefix)
        return prefix

    def declared(self) -> dict[str, str]:
        return dict(self._by_uri)


def serialize_xml(root: XElem, *, xml_declaration: bool = False, indent: bool = False) -> str:
    """Serialize a tree to a string.

    All namespace declarations are hoisted to the root element (a single
    two-pass walk), which keeps notification payload serialization compact
    and stable regardless of tree construction order.
    """
    allocator = _PrefixAllocator()
    _collect_namespaces(root, allocator)
    parts: list[str] = []
    if xml_declaration:
        parts.append('<?xml version="1.0" encoding="utf-8"?>')
        if indent:
            parts.append("\n")
    _write(root, allocator, parts, declare_namespaces=True, indent=0 if indent else None)
    return "".join(parts)


def _collect_namespaces(elem: XElem, allocator: _PrefixAllocator) -> None:
    if elem.name.namespace:
        allocator.prefix_for(elem.name.namespace)
    for attr in elem.attrs:
        if attr.namespace and attr.namespace not in (Namespaces.XMLNS, Namespaces.XML):
            allocator.prefix_for(attr.namespace)
    for child in elem.elements():
        _collect_namespaces(child, allocator)


def _tag(name: QName, allocator: _PrefixAllocator) -> str:
    if not name.namespace:
        return name.local
    return f"{allocator.prefix_for(name.namespace)}:{name.local}"


def _write(
    elem: XElem,
    allocator: _PrefixAllocator,
    parts: list[str],
    *,
    declare_namespaces: bool,
    indent: int | None,
) -> None:
    pad = "  " * indent if indent is not None else ""
    tag = _tag(elem.name, allocator)
    parts.append(f"{pad}<{tag}")
    if declare_namespaces:
        for uri, prefix in sorted(allocator.declared().items(), key=lambda kv: kv[1]):
            parts.append(f' xmlns:{prefix}="{_escape(uri, _ESCAPES_ATTR)}"')
    for attr, value in elem.attrs.items():
        if attr.namespace == Namespaces.XML:
            attr_tag = f"xml:{attr.local}"
        elif attr.namespace:
            attr_tag = f"{allocator.prefix_for(attr.namespace)}:{attr.local}"
        else:
            attr_tag = attr.local
        parts.append(f' {attr_tag}="{_escape(value, _ESCAPES_ATTR)}"')
    if not elem.children:
        parts.append("/>")
        if indent is not None:
            parts.append("\n")
        return
    parts.append(">")
    # indentation must not alter mixed content, so any text child disables it
    only_text = any(isinstance(child, str) for child in elem.children)
    if indent is not None and not only_text:
        parts.append("\n")
    for child in elem.children:
        if isinstance(child, str):
            parts.append(_escape(child, _ESCAPES_TEXT))
        else:
            _write(
                child,
                allocator,
                parts,
                declare_namespaces=False,
                indent=indent + 1 if indent is not None and not only_text else None,
            )
    if indent is not None and not only_text:
        parts.append(pad)
    parts.append(f"</{tag}>")
    if indent is not None:
        parts.append("\n")
