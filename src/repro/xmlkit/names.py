"""Qualified names and the namespace URIs of every specification in the paper.

The comparative study hinges on *version* differences: WS-Eventing 01/2004 vs
08/2004, WS-BaseNotification 1.0/1.2 vs 1.3, and the three WS-Addressing
releases they bind to (2003/03, 2004/08, 2005/08).  Each version has its own
namespace URI, and several of the paper's "message format difference"
categories (section V.4) are literally namespace differences, so the URIs are
first-class constants here.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class QName:
    """An XML qualified name: a ``(namespace URI, local part)`` pair.

    ``namespace`` is ``""`` for names in no namespace.  QNames are hashable
    and compare by value, which lets element/attribute lookup be exact even
    when two specifications use the same local name in different namespaces
    (e.g. ``Subscribe`` exists in both WS-Eventing and WS-BaseNotification).
    """

    namespace: str
    local: str

    def __str__(self) -> str:  # Clark notation, convenient in errors/tests
        if self.namespace:
            return "{%s}%s" % (self.namespace, self.local)
        return self.local

    @classmethod
    def from_clark(cls, text: str) -> "QName":
        """Parse ``{uri}local`` Clark notation (or a bare local name)."""
        if text.startswith("{"):
            uri, _, local = text[1:].partition("}")
            if not local:
                raise ValueError(f"malformed Clark name: {text!r}")
            return cls(uri, local)
        return cls("", text)


class Namespaces:
    """Namespace URIs for every specification exercised by the reproduction."""

    # --- XML / SOAP ------------------------------------------------------
    XML = "http://www.w3.org/XML/1998/namespace"
    XMLNS = "http://www.w3.org/2000/xmlns/"
    XSD = "http://www.w3.org/2001/XMLSchema"
    XSI = "http://www.w3.org/2001/XMLSchema-instance"
    SOAP11 = "http://schemas.xmlsoap.org/soap/envelope/"
    SOAP12 = "http://www.w3.org/2003/05/soap-envelope"

    # --- WS-Addressing: the three versions the two spec families bind to --
    WSA_2003_03 = "http://schemas.xmlsoap.org/ws/2003/03/addressing"
    WSA_2004_08 = "http://schemas.xmlsoap.org/ws/2004/08/addressing"
    WSA_2005_08 = "http://www.w3.org/2005/08/addressing"

    # --- WS-Eventing: the two released versions ---------------------------
    WSE_2004_01 = "http://schemas.xmlsoap.org/ws/2004/01/eventing"
    WSE_2004_08 = "http://schemas.xmlsoap.org/ws/2004/08/eventing"

    # --- WS-Notification family -------------------------------------------
    # 1.0 (03/2004, initial refactor), 1.2 (OASIS submission), 1.3 (PRD2).
    WSNT_10 = "http://www.ibm.com/xmlns/stdwip/web-services/WS-BaseNotification"
    WSNT_12 = "http://docs.oasis-open.org/wsn/2004/06/wsn-WS-BaseNotification-1.2-draft-01.xsd"
    WSNT_13 = "http://docs.oasis-open.org/wsn/b-2"
    WSNT_BROKERED_13 = "http://docs.oasis-open.org/wsn/br-2"
    WSTOP_10 = "http://www.ibm.com/xmlns/stdwip/web-services/WS-Topics"
    WSTOP_13 = "http://docs.oasis-open.org/wsn/t-1"

    # --- WSRF (required by WSN <= 1.2, optional in 1.3) --------------------
    WSRF_RP = "http://docs.oasis-open.org/wsrf/rp-2"
    WSRF_RL = "http://docs.oasis-open.org/wsrf/rl-2"
    WSRF_BF = "http://docs.oasis-open.org/wsrf/bf-2"

    # --- filter dialects ----------------------------------------------------
    DIALECT_XPATH10 = "http://www.w3.org/TR/1999/REC-xpath-19991116"
    DIALECT_TOPIC_SIMPLE = "http://docs.oasis-open.org/wsn/t-1/TopicExpression/Simple"
    DIALECT_TOPIC_CONCRETE = "http://docs.oasis-open.org/wsn/t-1/TopicExpression/Concrete"
    DIALECT_TOPIC_FULL = "http://docs.oasis-open.org/wsn/t-1/TopicExpression/Full"

    #: conventional prefixes used by the serializer for readable messages
    PREFERRED_PREFIXES = {
        SOAP11: "s11",
        SOAP12: "s12",
        XSD: "xsd",
        XSI: "xsi",
        WSA_2003_03: "wsa03",
        WSA_2004_08: "wsa04",
        WSA_2005_08: "wsa",
        WSE_2004_01: "wse01",
        WSE_2004_08: "wse",
        WSNT_10: "wsnt10",
        WSNT_12: "wsnt12",
        WSNT_13: "wsnt",
        WSNT_BROKERED_13: "wsntbr",
        WSTOP_10: "wstop10",
        WSTOP_13: "wstop",
        WSRF_RP: "wsrf-rp",
        WSRF_RL: "wsrf-rl",
        WSRF_BF: "wsrf-bf",
    }


def qn(namespace: str, local: str) -> QName:
    """Shorthand constructor used pervasively by the message builders."""
    return QName(namespace, local)
