"""Parse XML text into :class:`~repro.xmlkit.element.XElem` trees.

Uses the stdlib expat-backed ``xml.etree.ElementTree`` purely as a tokenizer;
all namespace bookkeeping is converted into :class:`QName` values so the rest
of the stack never sees prefixes or Clark strings.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.xmlkit.element import XElem
from repro.xmlkit.names import QName


class XmlParseError(ValueError):
    """Raised when a wire payload is not well-formed XML."""


def parse_xml(text: str | bytes) -> XElem:
    """Parse an XML document and return its root element."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise XmlParseError(f"malformed XML: {exc}") from exc
    return _convert(root)


def _convert(node: ET.Element) -> XElem:
    elem = XElem(_qname(node.tag))
    for key, value in node.attrib.items():
        elem.attrs[_qname(key)] = value
    if node.text:
        elem.append(node.text)
    for child in node:
        elem.append(_convert(child))
        if child.tail:
            elem.append(child.tail)
    return elem


def _qname(tag: str) -> QName:
    return QName.from_clark(tag)
