"""Byte-templates: precompiled wire text with named splice slots.

The writer's frozen-subtree cache (:mod:`repro.xmlkit.writer`) already makes
a notification *payload* serialize once per publish.  At 100k subscribers the
remaining per-send cost is everything around the payload: building the SOAP
envelope tree and walking it.  A :class:`ByteTemplate` removes that walk for
the steady state: the envelope is serialized once with unique sentinel
strings standing in for the per-send fields (message id, lineage header,
subscription id, payload), the text is split on those sentinels, and every
later send is a ``str.join`` over the cached segments with fresh slot values.

Compilation is strict: a sentinel that does not occur **exactly once** in the
serialized text raises :class:`TemplateSlotError`, and callers fall back to
the ordinary tree path — a payload that happens to contain a sentinel string
can therefore never corrupt the wire, it just loses the fast path.
"""

from __future__ import annotations


class TemplateSlotError(ValueError):
    """A slot sentinel was missing, duplicated, or out of order."""


class TemplateStats:
    """Template-cache accounting (single-threaded, like ``WRITER_STATS``)."""

    __slots__ = ("hits", "misses", "fallbacks")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        #: renders served from a compiled template
        self.hits = 0
        #: cache misses that compiled a fresh template
        self.misses = 0
        #: sends that could not use a template at all (unfrozen payload,
        #: sentinel collision, envelope filter, ``debug_no_templates``...)
        self.fallbacks = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "fallbacks": self.fallbacks,
        }


TEMPLATE_STATS = TemplateStats()


class ByteTemplate:
    """Compiled text with ordered named slots; render is a single join."""

    __slots__ = ("segments", "slot_names")

    def __init__(self, segments: list[str], slot_names: tuple[str, ...]) -> None:
        self.segments = segments  # len(slot_names) + 1 pieces
        self.slot_names = slot_names

    @classmethod
    def compile(cls, text: str, slots: list[tuple[str, str]]) -> "ByteTemplate":
        """Split ``text`` on each ``(name, sentinel)``, in document order.

        Every sentinel must occur exactly once in the whole text; the slots
        must appear in the order given.  Violations raise
        :class:`TemplateSlotError` so the caller can fall back.
        """
        segments: list[str] = []
        names: list[str] = []
        rest = text
        for name, sentinel in slots:
            if text.count(sentinel) != 1:
                raise TemplateSlotError(
                    f"slot {name!r}: sentinel occurs {text.count(sentinel)} times"
                )
            head, found, rest = rest.partition(sentinel)
            if not found:
                raise TemplateSlotError(f"slot {name!r}: sentinel out of order")
            segments.append(head)
            names.append(name)
        segments.append(rest)
        return cls(segments, tuple(names))

    def render(self, values: dict[str, str]) -> str:
        """Fill every slot; ``values`` must cover all slot names."""
        segments = self.segments
        parts: list[str] = [segments[0]]
        for i, name in enumerate(self.slot_names):
            parts.append(values[name])
            parts.append(segments[i + 1])
        return "".join(parts)
