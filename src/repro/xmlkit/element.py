"""A small explicit element tree.

``XElem`` is deliberately simpler than ``xml.etree.ElementTree``: children are
a single ordered list that mixes sub-elements and text chunks, names are
:class:`~repro.xmlkit.names.QName` values, and structural equality is defined
(whitespace-insensitively for text) so tests and the mediation layer can
compare whole SOAP messages directly.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Iterable, Iterator, Optional, Union

from repro.xmlkit.names import QName

Child = Union["XElem", str]


class FrozenElementError(TypeError):
    """Raised when a mutating operation reaches a frozen element."""


class XElem:
    """An XML element: qualified name, attributes, and ordered children.

    Children may be ``XElem`` instances or ``str`` text chunks.  Attribute
    keys are :class:`QName` (unprefixed attributes have an empty namespace).
    """

    __slots__ = ("name", "attrs", "children", "_frozen", "_fcache")

    def __init__(
        self,
        name: QName,
        attrs: Optional[dict[QName, str]] = None,
        children: Optional[Iterable[Child]] = None,
    ) -> None:
        if not isinstance(name, QName):
            raise TypeError(f"element name must be a QName, got {type(name).__name__}")
        self.name = name
        self._frozen = False
        self._fcache: Optional[list] = None  # writer's serialization cache slot
        self.attrs: dict[QName, str] = dict(attrs) if attrs else {}
        self.children: list[Child] = []
        if children:
            for child in children:
                self.append(child)

    # --- construction ----------------------------------------------------

    def append(self, child: Child) -> "XElem":
        """Append a sub-element or text chunk; returns ``self`` for chaining."""
        if self._frozen:
            raise FrozenElementError(f"element <{self.name}> is frozen")
        if not isinstance(child, (XElem, str)):
            raise TypeError(f"child must be XElem or str, got {type(child).__name__}")
        self.children.append(child)
        return self

    def extend(self, children: Iterable[Child]) -> "XElem":
        for child in children:
            self.append(child)
        return self

    def set(self, attr: QName, value: str) -> "XElem":
        if self._frozen:
            raise FrozenElementError(f"element <{self.name}> is frozen")
        self.attrs[attr] = value
        return self

    # --- immutability -----------------------------------------------------

    @property
    def frozen(self) -> bool:
        return self._frozen

    def freeze(self) -> "XElem":
        """Recursively make this tree immutable; returns ``self``.

        A frozen payload can be shared across an entire notification fan-out
        (queues, batches, push closures) without per-subscriber deep copies:
        mutation raises :class:`FrozenElementError`, and :meth:`copy` hands
        back a fresh mutable tree for the paths that genuinely rewrite.
        Freezing also gives the serializer a stable place to cache the
        element's serialized form (see :mod:`repro.xmlkit.writer`).
        """
        if self._frozen:
            return self
        for child in self.children:
            if isinstance(child, XElem):
                child.freeze()
        self.children = tuple(self.children)  # type: ignore[assignment]
        self.attrs = MappingProxyType(self.attrs)  # type: ignore[assignment]
        self._frozen = True
        self._fcache = [None, None, None]
        return self

    # --- navigation --------------------------------------------------------

    def elements(self) -> Iterator["XElem"]:
        """Iterate direct sub-elements (skipping text chunks)."""
        for child in self.children:
            if isinstance(child, XElem):
                yield child

    def find(self, name: QName) -> Optional["XElem"]:
        """First direct sub-element with the given qualified name."""
        for child in self.elements():
            if child.name == name:
                return child
        return None

    def find_all(self, name: QName) -> list["XElem"]:
        return [child for child in self.elements() if child.name == name]

    def find_local(self, local: str) -> Optional["XElem"]:
        """First direct sub-element matching on local name only.

        The WS-Messenger spec-detection layer uses this when the namespace is
        the thing being detected.
        """
        for child in self.elements():
            if child.name.local == local:
                return child
        return None

    def require(self, name: QName) -> "XElem":
        """Like :meth:`find` but raises ``KeyError`` when absent."""
        found = self.find(name)
        if found is None:
            raise KeyError(f"<{self.name}> has no <{name}> child")
        return found

    def descendants(self) -> Iterator["XElem"]:
        """All sub-elements, depth-first, excluding ``self``."""
        for child in self.elements():
            yield child
            yield from child.descendants()

    # --- text ---------------------------------------------------------------

    def text(self) -> str:
        """Concatenated text of *direct* text children."""
        return "".join(child for child in self.children if isinstance(child, str))

    def full_text(self) -> str:
        """Concatenated text of the whole subtree (XPath string-value)."""
        parts: list[str] = []
        self._collect_text(parts)
        return "".join(parts)

    def _collect_text(self, parts: list[str]) -> None:
        for child in self.children:
            if isinstance(child, str):
                parts.append(child)
            else:
                child._collect_text(parts)

    # --- comparison ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, XElem):
            return NotImplemented
        return (
            self.name == other.name
            and self.attrs == other.attrs
            and _normalized_children(self) == _normalized_children(other)
        )

    def __hash__(self) -> int:  # identity hash: elements are mutable
        return id(self)

    def __repr__(self) -> str:
        return f"XElem({self.name}, attrs={len(self.attrs)}, children={len(self.children)})"

    def copy(self) -> "XElem":
        """Deep copy (always mutable, even when the source tree is frozen);
        the mediation layer rewrites copies, never originals."""
        dup = XElem(self.name, dict(self.attrs))
        for child in self.children:
            dup.append(child.copy() if isinstance(child, XElem) else child)
        return dup


def _normalized_children(elem: XElem) -> list[Child]:
    """Children with whitespace-only text dropped and adjacent text merged."""
    merged: list[Child] = []
    for child in elem.children:
        if isinstance(child, str):
            if not child.strip():
                continue
            if merged and isinstance(merged[-1], str):
                merged[-1] = merged[-1] + child
                continue
        merged.append(child)
    return merged


def element(name: QName, *children: Child, **text: str) -> XElem:
    """Terse element factory: ``element(qn, child1, "text")``."""
    elem = XElem(name)
    for child in children:
        elem.append(child)
    return elem


def text_element(name: QName, value: str) -> XElem:
    """An element whose only content is a text value."""
    return XElem(name, children=[value])
