"""XML infoset substrate for the WS-* event notification stack.

This package provides everything the SOAP/WS-Addressing/WS-Eventing/
WS-Notification layers need from XML, implemented from scratch so that the
reproduction does not depend on any third-party web-services tooling:

- :mod:`repro.xmlkit.names` -- qualified names and the namespace URIs used by
  every specification in the paper (all three WS-Addressing versions, both
  WS-Eventing versions, the WS-Notification family, WSRF, SOAP 1.1/1.2).
- :mod:`repro.xmlkit.element` -- a small, explicit element tree (``XElem``).
- :mod:`repro.xmlkit.parser` / :mod:`repro.xmlkit.writer` -- parse and
  serialize with deterministic namespace-prefix management.
- :mod:`repro.xmlkit.xpath` -- an XPath 1.0 subset engine (lexer, parser,
  evaluator) used as the content-based filter dialect in both WS-Eventing and
  WS-Notification 1.3.
"""

from repro.xmlkit.names import QName, Namespaces
from repro.xmlkit.element import FrozenElementError, XElem
from repro.xmlkit.parser import parse_xml, XmlParseError
from repro.xmlkit.writer import serialize_xml
from repro.xmlkit.xpath import XPath, XPathError

__all__ = [
    "QName",
    "Namespaces",
    "FrozenElementError",
    "XElem",
    "parse_xml",
    "XmlParseError",
    "serialize_xml",
    "XPath",
    "XPathError",
]
