"""Recursive-descent parser for the XPath 1.0 subset grammar.

Grammar (simplified to the supported axes and node types)::

    Expr            ::= OrExpr
    OrExpr          ::= AndExpr ('or' AndExpr)*
    AndExpr         ::= EqualityExpr ('and' EqualityExpr)*
    EqualityExpr    ::= RelationalExpr (('='|'!=') RelationalExpr)*
    RelationalExpr  ::= AdditiveExpr (('<'|'<='|'>'|'>=') AdditiveExpr)*
    AdditiveExpr    ::= MultiplicativeExpr (('+'|'-') MultiplicativeExpr)*
    MultiplicativeExpr ::= UnaryExpr (('*'|'div'|'mod') UnaryExpr)*
    UnaryExpr       ::= '-'* UnionExpr
    UnionExpr       ::= PathExpr ('|' PathExpr)*
    PathExpr        ::= LocationPath
                      | FilterExpr (('/'|'//') RelativeLocationPath)?
    FilterExpr      ::= PrimaryExpr Predicate*
    PrimaryExpr     ::= '(' Expr ')' | Literal | Number | FunctionCall
"""

from __future__ import annotations

from repro.xmlkit.xpath import ast
from repro.xmlkit.xpath.errors import XPathSyntaxError
from repro.xmlkit.xpath.lexer import Token, TokenKind, tokenize

_SUPPORTED_AXES = {
    "child",
    "attribute",
    "self",
    "parent",
    "descendant",
    "descendant-or-self",
}


class _Parser:
    def __init__(self, expression: str) -> None:
        self.expression = expression
        self.tokens = tokenize(expression)
        self.pos = 0

    # --- token helpers ----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def expect(self, kind: TokenKind, value: str | None = None) -> Token:
        token = self.peek()
        if token.kind is not kind or (value is not None and token.value != value):
            raise XPathSyntaxError(
                f"expected {value or kind.name}, found {token.value or 'end of input'}",
                self.expression,
                token.position,
            )
        return self.advance()

    def at_operator(self, *values: str) -> bool:
        token = self.peek()
        return token.kind is TokenKind.OPERATOR and token.value in values

    # --- grammar ------------------------------------------------------------

    def parse(self) -> ast.Expr:
        expr = self.parse_or()
        token = self.peek()
        if token.kind is not TokenKind.EOF:
            raise XPathSyntaxError(
                f"trailing input: {token.value!r}", self.expression, token.position
            )
        return expr

    def _binary_chain(self, ops: tuple[str, ...], sub) -> ast.Expr:
        left = sub()
        while self.at_operator(*ops):
            op = self.advance().value
            left = ast.BinaryOp(op, left, sub())
        return left

    def parse_or(self) -> ast.Expr:
        return self._binary_chain(("or",), self.parse_and)

    def parse_and(self) -> ast.Expr:
        return self._binary_chain(("and",), self.parse_equality)

    def parse_equality(self) -> ast.Expr:
        return self._binary_chain(("=", "!="), self.parse_relational)

    def parse_relational(self) -> ast.Expr:
        return self._binary_chain(("<", "<=", ">", ">="), self.parse_additive)

    def parse_additive(self) -> ast.Expr:
        return self._binary_chain(("+", "-"), self.parse_multiplicative)

    def parse_multiplicative(self) -> ast.Expr:
        return self._binary_chain(("*", "div", "mod"), self.parse_unary)

    def parse_unary(self) -> ast.Expr:
        negations = 0
        while self.at_operator("-"):
            self.advance()
            negations += 1
        expr = self.parse_union()
        for _ in range(negations):
            expr = ast.UnaryMinus(expr)
        return expr

    def parse_union(self) -> ast.Expr:
        return self._binary_chain(("|",), self.parse_path)

    def parse_path(self) -> ast.Expr:
        token = self.peek()
        if token.kind in (TokenKind.NUMBER, TokenKind.LITERAL, TokenKind.FUNC) or (
            token.kind is TokenKind.LPAREN
        ):
            primary = self.parse_primary()
            predicates = self.parse_predicates()
            steps: list[ast.Step] = []
            if self.at_operator("/", "//"):
                steps = self.parse_relative_steps()
            if predicates or steps:
                return ast.FilterPath(primary, tuple(predicates), tuple(steps))
            return primary
        return self.parse_location_path()

    def parse_primary(self) -> ast.Expr:
        token = self.peek()
        if token.kind is TokenKind.LPAREN:
            self.advance()
            expr = self.parse_or()
            self.expect(TokenKind.RPAREN)
            return expr
        if token.kind is TokenKind.NUMBER:
            self.advance()
            return ast.NumberLit(float(token.value))
        if token.kind is TokenKind.LITERAL:
            self.advance()
            return ast.StringLit(token.value)
        if token.kind is TokenKind.FUNC:
            return self.parse_function_call()
        raise XPathSyntaxError(
            f"unexpected token {token.value!r}", self.expression, token.position
        )

    def parse_function_call(self) -> ast.FunctionCall:
        name_token = self.expect(TokenKind.FUNC)
        self.expect(TokenKind.LPAREN)
        args: list[ast.Expr] = []
        if self.peek().kind is not TokenKind.RPAREN:
            args.append(self.parse_or())
            while self.peek().kind is TokenKind.COMMA:
                self.advance()
                args.append(self.parse_or())
        self.expect(TokenKind.RPAREN)
        return ast.FunctionCall(name_token.value, tuple(args))

    def parse_location_path(self) -> ast.LocationPath:
        absolute = False
        steps: list[ast.Step] = []
        if self.at_operator("/"):
            self.advance()
            absolute = True
            if not self._at_step_start():
                return ast.LocationPath(True, ())
        elif self.at_operator("//"):
            self.advance()
            absolute = True
            steps.append(ast.Step("descendant-or-self", ast.NodeTest("node")))
        steps.append(self.parse_step())
        steps.extend(self.parse_relative_steps(initial=False))
        return ast.LocationPath(absolute, tuple(steps))

    def parse_relative_steps(self, initial: bool = True) -> list[ast.Step]:
        steps: list[ast.Step] = []
        while self.at_operator("/", "//"):
            sep = self.advance().value
            if sep == "//":
                steps.append(ast.Step("descendant-or-self", ast.NodeTest("node")))
            steps.append(self.parse_step())
        return steps

    def _at_step_start(self) -> bool:
        token = self.peek()
        return token.kind in (
            TokenKind.NAME,
            TokenKind.STAR,
            TokenKind.AT,
            TokenKind.DOT,
            TokenKind.DOTDOT,
            TokenKind.AXIS,
            TokenKind.NODETYPE,
        )

    def parse_step(self) -> ast.Step:
        token = self.peek()
        if token.kind is TokenKind.DOT:
            self.advance()
            return ast.Step("self", ast.NodeTest("node"), tuple(self.parse_predicates()))
        if token.kind is TokenKind.DOTDOT:
            self.advance()
            return ast.Step("parent", ast.NodeTest("node"), tuple(self.parse_predicates()))
        axis = "child"
        if token.kind is TokenKind.AT:
            self.advance()
            axis = "attribute"
        elif token.kind is TokenKind.AXIS:
            if token.value not in _SUPPORTED_AXES:
                raise XPathSyntaxError(
                    f"unsupported axis {token.value!r}", self.expression, token.position
                )
            axis = token.value
            self.advance()
        test = self.parse_node_test()
        return ast.Step(axis, test, tuple(self.parse_predicates()))

    def parse_node_test(self) -> ast.NodeTest:
        token = self.peek()
        if token.kind is TokenKind.NODETYPE:
            self.advance()
            self.expect(TokenKind.LPAREN)
            self.expect(TokenKind.RPAREN)
            if token.value == "text":
                return ast.NodeTest("text")
            if token.value == "node":
                return ast.NodeTest("node")
            raise XPathSyntaxError(
                f"unsupported node type {token.value}()", self.expression, token.position
            )
        if token.kind is TokenKind.STAR:
            self.advance()
            return ast.NodeTest("name", prefix=None, local="*")
        if token.kind is TokenKind.NAME:
            first = self.advance().value
            if self.peek().kind is TokenKind.COLON:
                self.advance()
                nxt = self.peek()
                if nxt.kind is TokenKind.STAR:
                    self.advance()
                    return ast.NodeTest("name", prefix=first, local="*")
                local = self.expect(TokenKind.NAME).value
                return ast.NodeTest("name", prefix=first, local=local)
            return ast.NodeTest("name", prefix=None, local=first)
        raise XPathSyntaxError(
            f"expected a node test, found {token.value!r}", self.expression, token.position
        )

    def parse_predicates(self) -> list[ast.Expr]:
        predicates: list[ast.Expr] = []
        while self.peek().kind is TokenKind.LBRACKET:
            self.advance()
            predicates.append(self.parse_or())
            self.expect(TokenKind.RBRACKET)
        return predicates


def parse_xpath(expression: str) -> ast.Expr:
    """Parse an XPath expression into an AST."""
    return _Parser(expression).parse()
