"""XPath 1.0 lexer.

Implements the XPath 1.0 lexical rules including the spec's disambiguation:
``*`` is the multiply operator (and ``and``/``or``/``div``/``mod`` are
operators rather than name tests) exactly when the preceding token could end
an operand.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from repro.xmlkit.xpath.errors import XPathSyntaxError


class TokenKind(Enum):
    NUMBER = auto()
    LITERAL = auto()
    NAME = auto()          # NCName, possibly part of a QName
    STAR = auto()          # wildcard name test
    OPERATOR = auto()      # = != < <= > >= + - * div mod and or | / //
    LPAREN = auto()
    RPAREN = auto()
    LBRACKET = auto()
    RBRACKET = auto()
    AT = auto()
    COMMA = auto()
    COLON = auto()
    DOT = auto()
    DOTDOT = auto()
    AXIS = auto()          # name:: (axis specifier)
    NODETYPE = auto()      # node( / text( / comment( / processing-instruction(
    FUNC = auto()          # name( (function call)
    EOF = auto()


@dataclass(frozen=True, slots=True)
class Token:
    kind: TokenKind
    value: str
    position: int


_OPERATOR_NAMES = {"and", "or", "div", "mod"}
_NODE_TYPES = {"node", "text", "comment", "processing-instruction"}
# token kinds after which '*' and the operator names are operators
_OPERAND_ENDERS = {
    TokenKind.NUMBER,
    TokenKind.LITERAL,
    TokenKind.NAME,
    TokenKind.STAR,
    TokenKind.RPAREN,
    TokenKind.RBRACKET,
    TokenKind.DOT,
    TokenKind.DOTDOT,
}


_DIGITS = "0123456789"


def _is_digit(ch: str) -> bool:
    return ch in _DIGITS  # ASCII only: unicode "digits" pass isdigit() but not float()


def _is_name_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_name_char(ch: str) -> bool:
    return ch.isalnum() or ch in "_-."


def tokenize(expression: str) -> list[Token]:
    """Tokenize an XPath expression, raising :class:`XPathSyntaxError`."""
    tokens: list[Token] = []
    i = 0
    n = len(expression)

    def prev_kind() -> TokenKind | None:
        return tokens[-1].kind if tokens else None

    while i < n:
        ch = expression[i]
        if ch.isspace():
            i += 1
            continue
        start = i
        if ch in "([":
            tokens.append(Token(TokenKind.LPAREN if ch == "(" else TokenKind.LBRACKET, ch, start))
            i += 1
        elif ch in ")]":
            tokens.append(Token(TokenKind.RPAREN if ch == ")" else TokenKind.RBRACKET, ch, start))
            i += 1
        elif ch == "@":
            tokens.append(Token(TokenKind.AT, ch, start))
            i += 1
        elif ch == ",":
            tokens.append(Token(TokenKind.COMMA, ch, start))
            i += 1
        elif ch == "/":
            if i + 1 < n and expression[i + 1] == "/":
                tokens.append(Token(TokenKind.OPERATOR, "//", start))
                i += 2
            else:
                tokens.append(Token(TokenKind.OPERATOR, "/", start))
                i += 1
        elif ch == "|":
            tokens.append(Token(TokenKind.OPERATOR, "|", start))
            i += 1
        elif ch in "+-":
            tokens.append(Token(TokenKind.OPERATOR, ch, start))
            i += 1
        elif ch == "=":
            tokens.append(Token(TokenKind.OPERATOR, "=", start))
            i += 1
        elif ch == "!":
            if i + 1 < n and expression[i + 1] == "=":
                tokens.append(Token(TokenKind.OPERATOR, "!=", start))
                i += 2
            else:
                raise XPathSyntaxError("unexpected '!'", expression, start)
        elif ch in "<>":
            if i + 1 < n and expression[i + 1] == "=":
                tokens.append(Token(TokenKind.OPERATOR, ch + "=", start))
                i += 2
            else:
                tokens.append(Token(TokenKind.OPERATOR, ch, start))
                i += 1
        elif ch == "*":
            if prev_kind() in _OPERAND_ENDERS:
                tokens.append(Token(TokenKind.OPERATOR, "*", start))
            else:
                tokens.append(Token(TokenKind.STAR, "*", start))
            i += 1
        elif ch == ".":
            if i + 1 < n and expression[i + 1] == ".":
                tokens.append(Token(TokenKind.DOTDOT, "..", start))
                i += 2
            elif i + 1 < n and _is_digit(expression[i + 1]):
                i = _lex_number(expression, i, tokens)
            else:
                tokens.append(Token(TokenKind.DOT, ".", start))
                i += 1
        elif _is_digit(ch):
            i = _lex_number(expression, i, tokens)
        elif ch in "'\"":
            end = expression.find(ch, i + 1)
            if end < 0:
                raise XPathSyntaxError("unterminated string literal", expression, start)
            tokens.append(Token(TokenKind.LITERAL, expression[i + 1 : end], start))
            i = end + 1
        elif ch == ":":
            tokens.append(Token(TokenKind.COLON, ":", start))
            i += 1
        elif _is_name_start(ch):
            j = i + 1
            while j < n and _is_name_char(expression[j]):
                j += 1
            name = expression[i:j]
            # operator-name disambiguation (XPath 1.0 section 3.7)
            if name in _OPERATOR_NAMES and prev_kind() in _OPERAND_ENDERS:
                tokens.append(Token(TokenKind.OPERATOR, name, start))
                i = j
                continue
            # look ahead past whitespace for '(' or '::'
            k = j
            while k < n and expression[k].isspace():
                k += 1
            if k + 1 < n and expression[k] == ":" and expression[k + 1] == ":":
                tokens.append(Token(TokenKind.AXIS, name, start))
                i = k + 2
            elif k < n and expression[k] == "(":
                kind = TokenKind.NODETYPE if name in _NODE_TYPES else TokenKind.FUNC
                tokens.append(Token(kind, name, start))
                tokens.append(Token(TokenKind.LPAREN, "(", k))
                i = k + 1
            else:
                tokens.append(Token(TokenKind.NAME, name, start))
                i = j
        else:
            raise XPathSyntaxError(f"unexpected character {ch!r}", expression, start)
    tokens.append(Token(TokenKind.EOF, "", n))
    return tokens


def _lex_number(expression: str, i: int, tokens: list[Token]) -> int:
    start = i
    n = len(expression)
    while i < n and _is_digit(expression[i]):
        i += 1
    if i < n and expression[i] == ".":
        i += 1
        while i < n and _is_digit(expression[i]):
            i += 1
    tokens.append(Token(TokenKind.NUMBER, expression[start:i], start))
    return i
