"""XPath error hierarchy."""


class XPathError(Exception):
    """Base class for all XPath failures."""


class XPathSyntaxError(XPathError):
    """The expression text could not be lexed or parsed."""

    def __init__(self, message: str, expression: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position} in {expression!r})")
        self.expression = expression
        self.position = position


class XPathEvaluationError(XPathError):
    """The expression is well-formed but failed at evaluation time."""
