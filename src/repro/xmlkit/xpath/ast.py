"""AST node definitions for the XPath 1.0 subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union


@dataclass(frozen=True)
class NumberLit:
    value: float


@dataclass(frozen=True)
class StringLit:
    value: str


@dataclass(frozen=True)
class FunctionCall:
    name: str
    args: tuple["Expr", ...]


@dataclass(frozen=True)
class BinaryOp:
    op: str  # or and = != < <= > >= + - * div mod |
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class UnaryMinus:
    operand: "Expr"


@dataclass(frozen=True)
class NodeTest:
    """A node test within a step.

    ``kind`` is ``"name"`` (with ``prefix``/``local``, either possibly ``*``),
    ``"text"`` or ``"node"``.
    """

    kind: str
    prefix: Optional[str] = None
    local: Optional[str] = None


@dataclass(frozen=True)
class Step:
    axis: str  # child attribute self parent descendant descendant-or-self
    test: NodeTest
    predicates: tuple["Expr", ...] = field(default=())


@dataclass(frozen=True)
class LocationPath:
    absolute: bool
    steps: tuple[Step, ...]


@dataclass(frozen=True)
class FilterPath:
    """A primary expression filtered by predicates and/or followed by a path."""

    primary: "Expr"
    predicates: tuple["Expr", ...]
    steps: tuple[Step, ...]


Expr = Union[NumberLit, StringLit, FunctionCall, BinaryOp, UnaryMinus, LocationPath, FilterPath]
