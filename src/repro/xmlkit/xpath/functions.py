"""The XPath 1.0 core function library (subset used by the filter dialects)."""

from __future__ import annotations

import math
from typing import Callable

from repro.xmlkit.xpath.errors import XPathEvaluationError
from repro.xmlkit.xpath.nodes import AttributeNode, ElementNode, XNode
from repro.xmlkit.xpath.values import (
    XPathValue,
    is_node_set,
    to_boolean,
    to_number,
    to_string,
)


class Context:
    """Evaluation context: node, position/size, and the prefix->URI map."""

    __slots__ = ("node", "position", "size", "namespaces")

    def __init__(
        self, node: XNode, position: int, size: int, namespaces: dict[str, str]
    ) -> None:
        self.node = node
        self.position = position
        self.size = size
        self.namespaces = namespaces

    def with_node(self, node: XNode, position: int, size: int) -> "Context":
        return Context(node, position, size, self.namespaces)


def _arity(name: str, args: list[XPathValue], low: int, high: int | None = None) -> None:
    high = low if high is None else high
    if not (low <= len(args) <= high):
        raise XPathEvaluationError(
            f"{name}() expects {low}{'' if high == low else f'..{high}'} argument(s), got {len(args)}"
        )


def _node_name(node: XNode) -> str | None:
    if isinstance(node, (ElementNode, AttributeNode)):
        return node.name.local
    return None


def _node_namespace(node: XNode) -> str | None:
    if isinstance(node, (ElementNode, AttributeNode)):
        return node.name.namespace
    return None


def fn_last(ctx: Context, args: list[XPathValue]) -> XPathValue:
    _arity("last", args, 0)
    return float(ctx.size)


def fn_position(ctx: Context, args: list[XPathValue]) -> XPathValue:
    _arity("position", args, 0)
    return float(ctx.position)


def fn_count(ctx: Context, args: list[XPathValue]) -> XPathValue:
    _arity("count", args, 1)
    if not is_node_set(args[0]):
        raise XPathEvaluationError("count() requires a node-set")
    return float(len(args[0]))


def _name_arg(ctx: Context, args: list[XPathValue], extractor) -> str:
    if not args:
        node: XNode | None = ctx.node
    else:
        if not is_node_set(args[0]):
            raise XPathEvaluationError("argument must be a node-set")
        node = args[0][0] if args[0] else None
    if node is None:
        return ""
    return extractor(node) or ""


def fn_local_name(ctx: Context, args: list[XPathValue]) -> XPathValue:
    _arity("local-name", args, 0, 1)
    return _name_arg(ctx, args, _node_name)


def fn_namespace_uri(ctx: Context, args: list[XPathValue]) -> XPathValue:
    _arity("namespace-uri", args, 0, 1)
    return _name_arg(ctx, args, _node_namespace)


def fn_name(ctx: Context, args: list[XPathValue]) -> XPathValue:
    # without prefix bookkeeping in XElem, name() == local-name()
    _arity("name", args, 0, 1)
    return _name_arg(ctx, args, _node_name)


def fn_string(ctx: Context, args: list[XPathValue]) -> XPathValue:
    _arity("string", args, 0, 1)
    if not args:
        return ctx.node.string_value()
    return to_string(args[0])


def fn_concat(ctx: Context, args: list[XPathValue]) -> XPathValue:
    if len(args) < 2:
        raise XPathEvaluationError("concat() expects at least 2 arguments")
    return "".join(to_string(arg) for arg in args)


def fn_starts_with(ctx: Context, args: list[XPathValue]) -> XPathValue:
    _arity("starts-with", args, 2)
    return to_string(args[0]).startswith(to_string(args[1]))


def fn_contains(ctx: Context, args: list[XPathValue]) -> XPathValue:
    _arity("contains", args, 2)
    return to_string(args[1]) in to_string(args[0])


def fn_substring_before(ctx: Context, args: list[XPathValue]) -> XPathValue:
    _arity("substring-before", args, 2)
    haystack, needle = to_string(args[0]), to_string(args[1])
    index = haystack.find(needle)
    return haystack[:index] if index >= 0 else ""


def fn_substring_after(ctx: Context, args: list[XPathValue]) -> XPathValue:
    _arity("substring-after", args, 2)
    haystack, needle = to_string(args[0]), to_string(args[1])
    index = haystack.find(needle)
    return haystack[index + len(needle):] if index >= 0 else ""


def fn_substring(ctx: Context, args: list[XPathValue]) -> XPathValue:
    _arity("substring", args, 2, 3)
    text = to_string(args[0])
    start = to_number(args[1])
    if math.isnan(start):
        return ""
    start_round = round(start)
    if len(args) == 3:
        length = to_number(args[2])
        if math.isnan(length):
            return ""
        end_round = start_round + round(length)
    else:
        end_round = len(text) + 1
    # XPath positions are 1-based; clamp to the string
    begin = max(start_round, 1)
    end = min(end_round, len(text) + 1)
    if begin >= end:
        return ""
    return text[begin - 1 : end - 1]


def fn_string_length(ctx: Context, args: list[XPathValue]) -> XPathValue:
    _arity("string-length", args, 0, 1)
    text = ctx.node.string_value() if not args else to_string(args[0])
    return float(len(text))


def fn_normalize_space(ctx: Context, args: list[XPathValue]) -> XPathValue:
    _arity("normalize-space", args, 0, 1)
    text = ctx.node.string_value() if not args else to_string(args[0])
    return " ".join(text.split())


def fn_translate(ctx: Context, args: list[XPathValue]) -> XPathValue:
    _arity("translate", args, 3)
    text, src, dst = (to_string(arg) for arg in args)
    table: dict[int, int | None] = {}
    for i, ch in enumerate(src):
        if ord(ch) in table:
            continue
        table[ord(ch)] = ord(dst[i]) if i < len(dst) else None
    return text.translate(table)


def fn_boolean(ctx: Context, args: list[XPathValue]) -> XPathValue:
    _arity("boolean", args, 1)
    return to_boolean(args[0])


def fn_not(ctx: Context, args: list[XPathValue]) -> XPathValue:
    _arity("not", args, 1)
    return not to_boolean(args[0])


def fn_true(ctx: Context, args: list[XPathValue]) -> XPathValue:
    _arity("true", args, 0)
    return True


def fn_false(ctx: Context, args: list[XPathValue]) -> XPathValue:
    _arity("false", args, 0)
    return False


def fn_number(ctx: Context, args: list[XPathValue]) -> XPathValue:
    _arity("number", args, 0, 1)
    if not args:
        return to_number(ctx.node.string_value())
    return to_number(args[0])


def fn_sum(ctx: Context, args: list[XPathValue]) -> XPathValue:
    _arity("sum", args, 1)
    if not is_node_set(args[0]):
        raise XPathEvaluationError("sum() requires a node-set")
    return float(sum(to_number(node.string_value()) for node in args[0]))


def fn_floor(ctx: Context, args: list[XPathValue]) -> XPathValue:
    _arity("floor", args, 1)
    return float(math.floor(to_number(args[0])))


def fn_ceiling(ctx: Context, args: list[XPathValue]) -> XPathValue:
    _arity("ceiling", args, 1)
    return float(math.ceil(to_number(args[0])))


def fn_round(ctx: Context, args: list[XPathValue]) -> XPathValue:
    _arity("round", args, 1)
    value = to_number(args[0])
    if math.isnan(value) or math.isinf(value):
        return value
    return float(math.floor(value + 0.5))  # XPath rounds .5 towards +inf


FUNCTIONS: dict[str, Callable[[Context, list[XPathValue]], XPathValue]] = {
    "last": fn_last,
    "position": fn_position,
    "count": fn_count,
    "local-name": fn_local_name,
    "namespace-uri": fn_namespace_uri,
    "name": fn_name,
    "string": fn_string,
    "concat": fn_concat,
    "starts-with": fn_starts_with,
    "contains": fn_contains,
    "substring-before": fn_substring_before,
    "substring-after": fn_substring_after,
    "substring": fn_substring,
    "string-length": fn_string_length,
    "normalize-space": fn_normalize_space,
    "translate": fn_translate,
    "boolean": fn_boolean,
    "not": fn_not,
    "true": fn_true,
    "false": fn_false,
    "number": fn_number,
    "sum": fn_sum,
    "floor": fn_floor,
    "ceiling": fn_ceiling,
    "round": fn_round,
}
