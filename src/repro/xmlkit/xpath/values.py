"""XPath 1.0 value types and coercion rules.

The four XPath value types are node-set, boolean, number and string.  The
coercion rules here follow XPath 1.0 sections 3.4 (booleans, including
existential node-set comparison) and 4.x (conversion functions).
"""

from __future__ import annotations

import math
from typing import Union

from repro.xmlkit.xpath.nodes import XNode

NodeSet = list  # of XNode, kept in document order with no duplicates
XPathValue = Union[NodeSet, bool, float, str]


def is_node_set(value: XPathValue) -> bool:
    return isinstance(value, list)


def to_boolean(value: XPathValue) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return value != 0.0 and not math.isnan(value)
    if isinstance(value, str):
        return len(value) > 0
    return len(value) > 0  # node-set: true iff non-empty


def to_number(value: XPathValue) -> float:
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, float):
        return value
    if isinstance(value, str):
        try:
            return float(value.strip())
        except ValueError:
            return math.nan
    return to_number(to_string(value))  # node-set: via string-value


def to_string(value: XPathValue) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return format_number(value)
    if isinstance(value, str):
        return value
    if not value:
        return ""
    return value[0].string_value()  # node-set: first node in document order


def format_number(number: float) -> str:
    """XPath number-to-string: integers print without a decimal point."""
    if math.isnan(number):
        return "NaN"
    if math.isinf(number):
        return "Infinity" if number > 0 else "-Infinity"
    if number == int(number):
        return str(int(number))
    return repr(number)


def compare(op: str, left: XPathValue, right: XPathValue) -> bool:
    """XPath 1.0 comparison, with existential node-set semantics."""
    if is_node_set(left) and is_node_set(right):
        left_values = {node.string_value() for node in left}
        right_values = {node.string_value() for node in right}
        if op == "=":
            return bool(left_values & right_values)
        if op == "!=":
            return any(a != b for a in left_values for b in right_values)
        return any(
            _numeric_compare(op, to_number(a), to_number(b))
            for a in left_values
            for b in right_values
        )
    if is_node_set(left):
        return any(_compare_scalar(op, node.string_value(), right) for node in left)
    if is_node_set(right):
        flipped = {"<": ">", ">": "<", "<=": ">=", ">=": "<="}.get(op, op)
        return any(_compare_scalar(flipped, node.string_value(), left) for node in right)
    return _compare_scalar(op, left, right)


def _compare_scalar(op: str, left: XPathValue, right: XPathValue) -> bool:
    if op in ("=", "!="):
        if isinstance(left, bool) or isinstance(right, bool):
            result = to_boolean(left) == to_boolean(right)
        elif isinstance(left, float) or isinstance(right, float):
            result = to_number(left) == to_number(right)
        else:
            result = to_string(left) == to_string(right)
        return result if op == "=" else not result
    return _numeric_compare(op, to_number(left), to_number(right))


def _numeric_compare(op: str, a: float, b: float) -> bool:
    if math.isnan(a) or math.isnan(b):
        return False
    if op == "<":
        return a < b
    if op == "<=":
        return a <= b
    if op == ">":
        return a > b
    return a >= b


def merge_node_sets(a: NodeSet, b: NodeSet) -> NodeSet:
    """Union of two node-sets, deduplicated, in document order."""
    seen: set[int] = set()
    merged: list[XNode] = []
    for node in sorted([*a, *b], key=lambda n: n.order):
        if id(node) not in seen:
            seen.add(id(node))
            merged.append(node)
    return merged
