"""Node wrappers giving :class:`XElem` trees the XPath data model.

XPath needs parent pointers, document order, and distinct node kinds for
attributes and text; ``XElem`` keeps none of these (it is a pure message
payload structure).  The evaluator therefore wraps the tree once per
evaluation into ``XNode`` objects carrying a document-order index.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.xmlkit.element import XElem
from repro.xmlkit.names import QName


class XNode:
    """Base wrapper: parent pointer plus a document-order index."""

    __slots__ = ("parent", "order")

    def __init__(self, parent: Optional["XNode"], order: int) -> None:
        self.parent = parent
        self.order = order

    def string_value(self) -> str:
        raise NotImplementedError


class RootNode(XNode):
    """The document root (distinct from the document element)."""

    __slots__ = ("children",)

    def __init__(self) -> None:
        super().__init__(None, 0)
        self.children: list[XNode] = []

    def string_value(self) -> str:
        return "".join(child.string_value() for child in self.children)


class ElementNode(XNode):
    __slots__ = ("elem", "children", "attributes")

    def __init__(self, elem: XElem, parent: XNode, order: int) -> None:
        super().__init__(parent, order)
        self.elem = elem
        self.children: list[XNode] = []
        self.attributes: list[AttributeNode] = []

    @property
    def name(self) -> QName:
        return self.elem.name

    def string_value(self) -> str:
        return self.elem.full_text()


class AttributeNode(XNode):
    __slots__ = ("name", "value")

    def __init__(self, name: QName, value: str, parent: ElementNode, order: int) -> None:
        super().__init__(parent, order)
        self.name = name
        self.value = value

    def string_value(self) -> str:
        return self.value


class TextNode(XNode):
    __slots__ = ("value",)

    def __init__(self, value: str, parent: XNode, order: int) -> None:
        super().__init__(parent, order)
        self.value = value

    def string_value(self) -> str:
        return self.value


def build_tree(root_elem: XElem) -> RootNode:
    """Wrap an element tree, assigning document-order indices."""
    root = RootNode()
    counter = [1]
    root.children.append(_wrap(root_elem, root, counter))
    return root


def _wrap(elem: XElem, parent: XNode, counter: list[int]) -> ElementNode:
    node = ElementNode(elem, parent, counter[0])
    counter[0] += 1
    for attr_name, attr_value in elem.attrs.items():
        node.attributes.append(AttributeNode(attr_name, attr_value, node, counter[0]))
        counter[0] += 1
    for child in elem.children:
        if isinstance(child, str):
            node.children.append(TextNode(child, node, counter[0]))
            counter[0] += 1
        else:
            node.children.append(_wrap(child, node, counter))
    return node


def descendants(node: XNode) -> Iterator[XNode]:
    """Depth-first descendants (elements and text), excluding ``node``."""
    children = getattr(node, "children", ())
    for child in children:
        yield child
        yield from descendants(child)
