"""An XPath 1.0 subset engine, built from scratch.

Both WS-Eventing (default filter dialect) and WS-BaseNotification 1.3
(MessageContent filter) use XPath 1.0 expressions that must evaluate to a
boolean over the notification message.  This package implements the fragment
of XPath 1.0 those dialects need:

- location paths over child/attribute/descendant/self/parent axes, with
  namespace-aware name tests and wildcards;
- predicates, including positional predicates;
- the full expression grammar (or/and/equality/relational/arithmetic/union);
- the core function library (string, boolean, number and node-set functions);
- XPath 1.0 type coercion, including existential node-set comparison.

Entry point: :class:`XPath` compiles an expression once; ``evaluate`` returns
the raw XPath value and ``matches`` applies boolean coercion, which is exactly
the "evaluates to a Boolean" filter criterion in both specifications.
"""

from repro.xmlkit.xpath.errors import XPathError, XPathSyntaxError, XPathEvaluationError
from repro.xmlkit.xpath.engine import XPath

__all__ = ["XPath", "XPathError", "XPathSyntaxError", "XPathEvaluationError"]
