"""The XPath evaluator and the public :class:`XPath` compiled-expression API."""

from __future__ import annotations

import math
from typing import Optional

from repro.xmlkit.element import XElem
from repro.xmlkit.xpath import ast
from repro.xmlkit.xpath.errors import XPathEvaluationError
from repro.xmlkit.xpath.functions import FUNCTIONS, Context
from repro.xmlkit.xpath.nodes import (
    AttributeNode,
    ElementNode,
    RootNode,
    TextNode,
    XNode,
    build_tree,
    descendants,
)
from repro.xmlkit.xpath.parser import parse_xpath
from repro.xmlkit.xpath.values import (
    NodeSet,
    XPathValue,
    compare,
    is_node_set,
    merge_node_sets,
    to_boolean,
    to_number,
)


class XPath:
    """A compiled XPath expression.

    ``namespaces`` maps the prefixes used in the expression to namespace URIs
    (the way a WSE/WSN subscription message carries in-scope namespace
    bindings for its filter expression).
    """

    def __init__(self, expression: str, namespaces: Optional[dict[str, str]] = None) -> None:
        self.expression = expression
        self.namespaces = dict(namespaces or {})
        self._ast = parse_xpath(expression)

    def __repr__(self) -> str:
        return f"XPath({self.expression!r})"

    def evaluate(self, root: XElem) -> XPathValue:
        """Evaluate against a document whose root element is ``root``.

        Returns the raw XPath value: a node-set is returned as a list of the
        underlying :class:`XElem`/attribute/text values.
        """
        doc = build_tree(root)
        ctx = Context(doc, 1, 1, self.namespaces)
        value = _evaluate(self._ast, ctx)
        if is_node_set(value):
            return [_unwrap(node) for node in value]
        return value

    def matches(self, root: XElem) -> bool:
        """Boolean-coerced evaluation — the WS filter-dialect semantics."""
        doc = build_tree(root)
        ctx = Context(doc, 1, 1, self.namespaces)
        return to_boolean(_evaluate(self._ast, ctx))

    def select(self, root: XElem) -> list[XElem]:
        """Evaluate and keep only element nodes (common in tests/tools)."""
        value = self.evaluate(root)
        if not is_node_set(value):
            raise XPathEvaluationError(
                f"{self.expression!r} evaluated to a {type(value).__name__}, not a node-set"
            )
        return [item for item in value if isinstance(item, XElem)]


def _unwrap(node: XNode):
    if isinstance(node, ElementNode):
        return node.elem
    if isinstance(node, AttributeNode):
        return node.value
    if isinstance(node, TextNode):
        return node.value
    return node  # RootNode


# --- expression evaluation ---------------------------------------------------


def _evaluate(expr: ast.Expr, ctx: Context) -> XPathValue:
    if isinstance(expr, ast.NumberLit):
        return expr.value
    if isinstance(expr, ast.StringLit):
        return expr.value
    if isinstance(expr, ast.UnaryMinus):
        return -to_number(_evaluate(expr.operand, ctx))
    if isinstance(expr, ast.BinaryOp):
        return _evaluate_binary(expr, ctx)
    if isinstance(expr, ast.FunctionCall):
        fn = FUNCTIONS.get(expr.name)
        if fn is None:
            raise XPathEvaluationError(f"unknown function {expr.name}()")
        args = [_evaluate(arg, ctx) for arg in expr.args]
        return fn(ctx, args)
    if isinstance(expr, ast.LocationPath):
        return _evaluate_path(expr, ctx)
    if isinstance(expr, ast.FilterPath):
        return _evaluate_filter_path(expr, ctx)
    raise XPathEvaluationError(f"unhandled AST node {type(expr).__name__}")


def _evaluate_binary(expr: ast.BinaryOp, ctx: Context) -> XPathValue:
    op = expr.op
    if op == "or":
        return to_boolean(_evaluate(expr.left, ctx)) or to_boolean(_evaluate(expr.right, ctx))
    if op == "and":
        return to_boolean(_evaluate(expr.left, ctx)) and to_boolean(_evaluate(expr.right, ctx))
    left = _evaluate(expr.left, ctx)
    right = _evaluate(expr.right, ctx)
    if op in ("=", "!=", "<", "<=", ">", ">="):
        return compare(op, left, right)
    if op == "|":
        if not (is_node_set(left) and is_node_set(right)):
            raise XPathEvaluationError("'|' requires node-set operands")
        return merge_node_sets(left, right)
    a, b = to_number(left), to_number(right)
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "div":
        if b == 0:
            if a == 0 or math.isnan(a):
                return math.nan
            return math.inf if a > 0 else -math.inf
        return a / b
    if op == "mod":
        if b == 0 or math.isnan(a) or math.isnan(b):
            return math.nan
        return math.fmod(a, b)
    raise XPathEvaluationError(f"unknown operator {op!r}")


def _evaluate_path(path: ast.LocationPath, ctx: Context) -> NodeSet:
    if path.absolute:
        node: XNode = ctx.node
        while node.parent is not None:
            node = node.parent
        current: NodeSet = [node]
    else:
        current = [ctx.node]
    return _apply_steps(path.steps, current, ctx)


def _evaluate_filter_path(expr: ast.FilterPath, ctx: Context) -> XPathValue:
    value = _evaluate(expr.primary, ctx)
    if expr.predicates or expr.steps:
        if not is_node_set(value):
            raise XPathEvaluationError("predicates/steps require a node-set")
        value = _filter_nodes(value, expr.predicates, ctx)
        value = _apply_steps(expr.steps, value, ctx)
    return value


def _apply_steps(steps: tuple[ast.Step, ...], current: NodeSet, ctx: Context) -> NodeSet:
    for step in steps:
        gathered: list[XNode] = []
        seen: set[int] = set()
        for node in current:
            for candidate in _axis_nodes(step.axis, node):
                if _test_matches(step.test, step.axis, candidate, ctx):
                    if id(candidate) not in seen:
                        seen.add(id(candidate))
                        gathered.append(candidate)
        gathered.sort(key=lambda n: n.order)
        current = _filter_nodes(gathered, step.predicates, ctx)
    return current


def _filter_nodes(nodes: NodeSet, predicates: tuple[ast.Expr, ...], ctx: Context) -> NodeSet:
    for predicate in predicates:
        kept: list[XNode] = []
        size = len(nodes)
        for position, node in enumerate(nodes, start=1):
            value = _evaluate(predicate, ctx.with_node(node, position, size))
            if isinstance(value, float):
                if value == position:  # positional predicate
                    kept.append(node)
            elif to_boolean(value):
                kept.append(node)
        nodes = kept
    return nodes


def _axis_nodes(axis: str, node: XNode):
    if axis == "child":
        return list(getattr(node, "children", ()))
    if axis == "attribute":
        return list(getattr(node, "attributes", ()))
    if axis == "self":
        return [node]
    if axis == "parent":
        return [node.parent] if node.parent is not None else []
    if axis == "descendant":
        return list(descendants(node))
    if axis == "descendant-or-self":
        return [node, *descendants(node)]
    raise XPathEvaluationError(f"unsupported axis {axis!r}")


def _test_matches(test: ast.NodeTest, axis: str, node: XNode, ctx: Context) -> bool:
    if test.kind == "node":
        return True
    if test.kind == "text":
        return isinstance(node, TextNode)
    # name test: the principal node type is attribute on the attribute axis,
    # element everywhere else
    if axis == "attribute":
        if not isinstance(node, AttributeNode):
            return False
    else:
        if not isinstance(node, ElementNode):
            return False
    if test.prefix is not None:
        uri = ctx.namespaces.get(test.prefix)
        if uri is None:
            raise XPathEvaluationError(f"undeclared namespace prefix {test.prefix!r}")
    else:
        uri = ""
    if test.local == "*":
        if test.prefix is None:
            return True
        return node.name.namespace == uri
    if node.name.local != test.local:
        return False
    return node.name.namespace == uri
