"""WS-Reliability-style at-least-once delivery with duplicate suppression.

Sequence headers (sequence id + message number) ride alongside unmodified
WSE/WSN payloads; the sender resends on transient loss, the receiver
suppresses duplicates, so end-to-end semantics become exactly-once over a
lossy wire — composed entirely outside the notification specifications.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.soap.envelope import SoapEnvelope
from repro.transport.endpoint import ActionHandler, SoapClient, SoapEndpoint
from repro.transport.network import MessageLost
from repro.wsa.epr import EndpointReference
from repro.xmlkit.element import XElem, text_element
from repro.xmlkit.names import QName

#: WS-Reliability 1.1-era namespace (abbreviated)
WSRM_NS = "http://docs.oasis-open.org/wsrm/2004/06/reference-1.1"
SEQUENCE_HEADER = QName(WSRM_NS, "Sequence")
_SEQ_ID = QName(WSRM_NS, "Identifier")
_SEQ_NUMBER = QName(WSRM_NS, "MessageNumber")

_sequence_counter = itertools.count(1)


def _sequence_block(sequence_id: str, number: int) -> XElem:
    block = XElem(SEQUENCE_HEADER)
    block.append(text_element(_SEQ_ID, sequence_id))
    block.append(text_element(_SEQ_NUMBER, str(number)))
    return block


def sequence_of(envelope: SoapEnvelope) -> Optional[tuple[str, int]]:
    header = envelope.header(SEQUENCE_HEADER)
    if header is None:
        return None
    identifier = header.find(_SEQ_ID)
    number = header.find(_SEQ_NUMBER)
    if identifier is None or number is None:
        return None
    try:
        return identifier.full_text().strip(), int(number.full_text().strip())
    except ValueError:
        return None


class ReliableChannel:
    """Sender side: numbered, resent-on-loss one-way messages."""

    def __init__(
        self,
        client: SoapClient,
        target: EndpointReference,
        *,
        max_retries: int = 3,
        sequence_id: Optional[str] = None,
    ) -> None:
        self.client = client
        self.target = target
        self.max_retries = max_retries
        self.sequence_id = sequence_id or f"urn:uuid:seq-{next(_sequence_counter):06d}"
        self._next_number = itertools.count(1)
        self.resends = 0
        self.gave_up = 0

    def send(self, action: str, body: XElem) -> bool:
        """Send one message at-least-once; True if it was acknowledged."""
        number = next(self._next_number)
        block = _sequence_block(self.sequence_id, number)
        for _attempt in range(self.max_retries + 1):
            try:
                self.client.call(
                    self.target,
                    action,
                    [body.copy()],
                    expect_reply=False,
                    extra_headers=[block],
                )
                return True
            except MessageLost:
                self.resends += 1
                continue
        self.gave_up += 1
        return False


def make_reliable(endpoint: SoapEndpoint) -> None:
    """Receiver side: suppress duplicate (sequence, number) deliveries.

    Duplicates are acknowledged (2xx) without re-invoking the handler, so a
    resent notification is never processed twice.
    """
    seen: set[tuple[str, int]] = set()

    def wrap(handler: ActionHandler) -> ActionHandler:
        def deduplicating(envelope, headers):
            sequence = sequence_of(envelope)
            if sequence is not None:
                if sequence in seen:
                    return None  # duplicate: ack, do not reprocess
                seen.add(sequence)
            return handler(envelope, headers)

        return deduplicating

    endpoint._handlers = {action: wrap(h) for action, h in endpoint._handlers.items()}
    if endpoint._fallback is not None:
        endpoint._fallback = wrap(endpoint._fallback)
