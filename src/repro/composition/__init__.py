"""WS-* composition: qualities layered onto messages, not into the specs.

The paper's section VI observation (4): QoS criteria like security and
reliability "are no longer defined in the specifications.  Instead, they
depend on the composition with other WS-* specifications, such as
WS-Reliability, WS-Transaction" — and section V: "WS-Security can be used to
achieve secure delivery of messages".

This package demonstrates that composability concretely on the stack:

- :mod:`repro.composition.security` -- a WS-Security-style signing layer: an
  HMAC signature over the body travels as a ``Security`` SOAP header; any
  endpoint can be hardened *without touching the notification specs* —
  exactly the composition story the WS-based generation relies on.
- :mod:`repro.composition.reliability` -- a WS-Reliability-style layer:
  sequence-numbered delivery with acknowledgement tracking and
  at-least-once resend, again purely via SOAP headers around unmodified
  WSE/WSN messages.
"""

from repro.composition.security import (
    SECURITY_HEADER,
    SecurityFault,
    secure_endpoint,
    sign_envelope,
    verify_envelope,
)
from repro.composition.reliability import ReliableChannel, SEQUENCE_HEADER, make_reliable

__all__ = [
    "sign_envelope",
    "verify_envelope",
    "secure_endpoint",
    "SecurityFault",
    "SECURITY_HEADER",
    "ReliableChannel",
    "make_reliable",
    "SEQUENCE_HEADER",
]
