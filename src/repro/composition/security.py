"""WS-Security-style message signing, composed onto any endpoint.

A signature header (HMAC-SHA256 over the serialized body, keyed by a shared
secret) rides in the SOAP header with ``mustUnderstand``; receivers wrapped
by :func:`secure_endpoint` reject missing or invalid signatures with a
version-correct SOAP fault.  The WSE/WSN message bodies are untouched —
security is composed *around* the notification specifications, which is the
whole point of the paper's observation (4).
"""

from __future__ import annotations

import hashlib
import hmac

from repro.soap.envelope import SoapEnvelope
from repro.soap.fault import FaultCode, SoapFault
from repro.transport.endpoint import ActionHandler, SoapEndpoint
from repro.xmlkit.element import XElem, text_element
from repro.xmlkit.names import QName
from repro.xmlkit.writer import serialize_xml

#: WS-Security 2004 namespace (wsse)
WSSE_NS = (
    "http://docs.oasis-open.org/wss/2004/01/oasis-200401-wss-wssecurity-secext-1.0.xsd"
)
SECURITY_HEADER = QName(WSSE_NS, "Security")
_SIGNATURE = QName(WSSE_NS, "SignatureValue")
_KEY_ID = QName(WSSE_NS, "KeyIdentifier")


class SecurityFault(SoapFault):
    def __init__(self, reason: str) -> None:
        super().__init__(
            FaultCode.SENDER, reason, subcode=QName(WSSE_NS, "FailedAuthentication")
        )


def _body_digest(envelope: SoapEnvelope, key: bytes) -> str:
    material = "".join(serialize_xml(element) for element in envelope.body)
    return hmac.new(key, material.encode("utf-8"), hashlib.sha256).hexdigest()


def sign_envelope(envelope: SoapEnvelope, key: bytes, *, key_id: str = "shared") -> SoapEnvelope:
    """Attach a Security header signing the current body (mutates & returns)."""
    header = XElem(SECURITY_HEADER)
    header.append(text_element(_KEY_ID, key_id))
    header.append(text_element(_SIGNATURE, _body_digest(envelope, key)))
    envelope.add_header(header, must_understand=True)
    return envelope


def verify_envelope(envelope: SoapEnvelope, key: bytes) -> bool:
    """True iff a Security header is present and its signature matches."""
    header = envelope.header(SECURITY_HEADER)
    if header is None:
        return False
    signature_elem = header.find(_SIGNATURE)
    if signature_elem is None:
        return False
    expected = _body_digest(envelope, key)
    return hmac.compare_digest(signature_elem.full_text().strip(), expected)


def secure_endpoint(endpoint: SoapEndpoint, key: bytes) -> None:
    """Harden an existing endpoint: every registered handler (and the
    fallback) now requires a valid signature.  The wrapped specs are not
    modified in any way — pure composition."""

    def wrap(handler: ActionHandler) -> ActionHandler:
        def secured(envelope, headers):
            if not verify_envelope(envelope, key):
                raise SecurityFault("missing or invalid message signature")
            return handler(envelope, headers)

        return secured

    endpoint._handlers = {action: wrap(h) for action, h in endpoint._handlers.items()}
    if endpoint._fallback is not None:
        endpoint._fallback = wrap(endpoint._fallback)
