"""Automatic specification detection.

"WS-Messenger automatically detects which specification the incoming SOAP
messages use and processes them accordingly."  The primary signal is the
namespace of the body payload element (every WSE/WSN version has its own);
the WS-Addressing header namespace serves as a cross-check, since each spec
version binds a specific WSA release (Table 1's last row).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Union

from repro.soap.envelope import SoapEnvelope
from repro.wsa.headers import detect_wsa_version
from repro.wsa.versions import WsaVersion
from repro.wse.versions import WseVersion
from repro.wsn.versions import WsnVersion


class SpecFamily(Enum):
    WS_EVENTING = "WS-Eventing"
    WS_NOTIFICATION = "WS-Notification"


SpecVersion = Union[WseVersion, WsnVersion]

_NAMESPACE_TO_VERSION: dict[str, tuple[SpecFamily, SpecVersion]] = {
    **{v.namespace: (SpecFamily.WS_EVENTING, v) for v in WseVersion},
    **{v.namespace: (SpecFamily.WS_NOTIFICATION, v) for v in WsnVersion},
}


class SpecDetectionError(ValueError):
    """The envelope matches no supported specification."""


@dataclass(frozen=True)
class DetectedSpec:
    family: SpecFamily
    version: SpecVersion
    operation: str  # body element local name, e.g. "Subscribe", "Notify"
    wsa_version: Optional[WsaVersion]
    #: the WSA version in the headers disagrees with the spec version's binding
    wsa_mismatch: bool = False

    def describe(self) -> str:
        return f"{self.family.value} {self.version.name} ({self.operation})"


def detect_spec(envelope: SoapEnvelope) -> DetectedSpec:
    """Classify one incoming envelope; raises :class:`SpecDetectionError`."""
    body = envelope.first_body()
    if body is None:
        raise SpecDetectionError("empty body: nothing to detect")
    hit = _NAMESPACE_TO_VERSION.get(body.name.namespace)
    if hit is None:
        # fall back: a body element from another namespace (raw notification)
        # may still be attributable through spec-versioned headers
        for block in envelope.headers:
            header_hit = _NAMESPACE_TO_VERSION.get(block.name.namespace)
            if header_hit is not None:
                family, version = header_hit
                return DetectedSpec(
                    family,
                    version,
                    body.name.local,
                    detect_wsa_version(envelope),
                    wsa_mismatch=_mismatch(envelope, version),
                )
        raise SpecDetectionError(
            f"body element {body.name} belongs to no supported specification"
        )
    family, version = hit
    return DetectedSpec(
        family,
        version,
        body.name.local,
        detect_wsa_version(envelope),
        wsa_mismatch=_mismatch(envelope, version),
    )


def _mismatch(envelope: SoapEnvelope, version: SpecVersion) -> bool:
    found = detect_wsa_version(envelope)
    return found is not None and found is not version.wsa_version
