"""WS-Messenger: the paper's mediation broker (section VII).

WS-Messenger is "the first open source project that supports two competing
Web services specifications and provides mediation between them".  This
package reproduces its architecture:

- :mod:`repro.messenger.detection` -- "WS-Messenger automatically detects
  which specification the incoming SOAP messages use": classify an envelope
  as WS-Eventing 01/2004 or 08/2004, or WS-BaseNotification 1.0/1.2/1.3,
  from its body/header namespaces.
- :mod:`repro.messenger.broker` -- the broker proper.  One front-door
  endpoint accepts subscriptions and publications in *any* supported spec
  version; "response messages follow the same specifications as request
  messages"; each consumer receives notifications "following the expected
  specifications of the target event consumers", determined by the spec of
  its subscription request.
- :mod:`repro.messenger.mediation` -- the message-shape translations across
  the six difference categories of section V.4 (element names, namespaces,
  WSA versions, action values, structures, content locations).
- :mod:`repro.messenger.adapters` -- the "generic interface that can use
  existing publish/subscribe systems as the underlying message systems":
  backbones over the in-memory fabric, the JMS baseline and the CORBA
  Notification baseline.
"""

from repro.messenger.detection import DetectedSpec, SpecFamily, detect_spec
from repro.messenger.broker import WsMessenger
from repro.messenger.journal import SubscriptionJournal
from repro.messenger.adapters import (
    CorbaBackbone,
    InMemoryBackbone,
    JmsBackbone,
    MessagingBackbone,
)

__all__ = [
    "WsMessenger",
    "SubscriptionJournal",
    "detect_spec",
    "DetectedSpec",
    "SpecFamily",
    "MessagingBackbone",
    "InMemoryBackbone",
    "JmsBackbone",
    "CorbaBackbone",
]
