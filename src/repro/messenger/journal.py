"""Subscription journalling: broker crash recovery by replay.

WS-Messenger's stated aim is a "scalable, reliable and efficient" broker.
One reliability ingredient is surviving a broker restart without losing the
subscription population.  Because every subscription *is* a SOAP message,
durability falls out of the architecture: the journal records each accepted
Subscribe request verbatim (wire bytes) and recovery replays them at a fresh
broker — which re-runs spec detection and re-creates every subscription in
its original dialect.  No spec-specific state format is needed.

Each entry also records the *granted* subscription identifier and absolute
expiry (captured by the broker at Subscribe time).  When :meth:`replay` is
given the target broker, it pins those ids via
``force_next_subscription_id`` — so the manager EPRs clients already hold
(which embed the id as an echoed header / ResourceID parameter) stay valid
across the crash — and restores the granted absolute expiry instead of
re-granting relative durations from recovery time.

Remaining limitation (inherent to wire-replay): in-flight deliveries and
parked message-box content are not journalled here — the event-sourced
store (:mod:`repro.store`) subsumes this journal when full durability is
needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.soap.codec import serialize_envelope
from repro.soap.envelope import SoapEnvelope
from repro.transport.http import build_request, parse_response
from repro.transport.network import NetworkError, SimulatedNetwork
from repro.wsa.headers import extract_headers


@dataclass
class JournalEntry:
    action: str
    wire: bytes
    #: granted identity ("wse"/"wsn", version tag, sub id) — empty strings
    #: for entries journalled before the broker captured it
    family: str = ""
    tag: str = ""
    sub_id: str = ""
    #: granted absolute expiry (virtual-clock seconds); None = never/unknown
    expires: Optional[float] = None


@dataclass
class SubscriptionJournal:
    """An append-only log of accepted Subscribe requests."""

    entries: list[JournalEntry] = field(default_factory=list)

    def record(
        self,
        envelope: SoapEnvelope,
        *,
        granted: Optional[tuple[str, str, str, Optional[float]]] = None,
    ) -> None:
        try:
            action = extract_headers(envelope).action
        except ValueError:
            action = ""
        family, tag, sub_id, expires = granted or ("", "", "", None)
        self.entries.append(
            JournalEntry(
                action,
                serialize_envelope(envelope).encode("utf-8"),
                family=family,
                tag=tag,
                sub_id=sub_id,
                expires=expires,
            )
        )

    def __len__(self) -> int:
        return len(self.entries)

    def replay(
        self, network: SimulatedNetwork, broker_address: str, *, broker=None
    ) -> int:
        """Re-post every journalled Subscribe at a (new) broker.

        Returns the number of successfully re-created subscriptions; entries
        whose original consumer endpoint has meanwhile vanished fail their
        first delivery later, exactly as a live subscription would.

        Pass the target ``broker`` (a :class:`~repro.messenger.WsMessenger`)
        to preserve subscription identifiers and manager EPRs: before each
        re-post, the granted id is pinned on the owning implementation and
        the granted absolute expiry is restored afterwards.
        """
        recovered = 0
        # snapshot: the target broker may be journalling into this very list,
        # and replayed Subscribes must not be replayed again
        for entry in list(self.entries):
            implementation = (
                self._implementation(broker, entry) if broker is not None else None
            )
            if implementation is not None and entry.sub_id:
                implementation.force_next_subscription_id(entry.sub_id)
            wire = build_request(broker_address, entry.wire, soap_action=entry.action)
            try:
                response = parse_response(network.send_request(broker_address, wire))
            except NetworkError as exc:
                # a dead broker front door mid-replay: skip the entry, but
                # leave the skip visible to the report layer
                network.instrumentation.count(
                    "obs.swallowed_errors_total",
                    site="messenger.journal.replay",
                    kind=type(exc).__name__,
                )
                continue
            if response.ok:
                recovered += 1
                if implementation is not None and entry.sub_id:
                    self._restore_expiry(implementation, entry)
        return recovered

    @staticmethod
    def _implementation(broker, entry: JournalEntry):
        if entry.family == "wse":
            for version, source in broker.wse_sources.items():
                if version.name.lower() == entry.tag:
                    return source
        elif entry.family == "wsn":
            for version, producer in broker.wsn_producers.items():
                if version.name.lower() == entry.tag:
                    return producer
        return None

    @staticmethod
    def _restore_expiry(implementation, entry: JournalEntry) -> None:
        if entry.family == "wse":
            subscription = implementation.store._subscriptions.get(entry.sub_id)
            if subscription is not None:
                implementation.store.update_expiry(subscription, entry.expires)
        else:
            subscription = implementation._subscriptions.get(entry.sub_id)
            if subscription is not None:
                subscription.resource.termination_time = entry.expires
                implementation.registry.note_termination(subscription.resource)
