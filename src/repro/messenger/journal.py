"""Subscription journalling: broker crash recovery by replay.

WS-Messenger's stated aim is a "scalable, reliable and efficient" broker.
One reliability ingredient is surviving a broker restart without losing the
subscription population.  Because every subscription *is* a SOAP message,
durability falls out of the architecture: the journal records each accepted
Subscribe request verbatim (wire bytes) and recovery replays them at a fresh
broker — which re-runs spec detection and re-creates every subscription in
its original dialect.  No spec-specific state format is needed.

Limitations (documented, inherent to the approach): subscription identifiers
are re-minted on replay, so clients holding pre-crash manager EPRs must
re-subscribe to manage their subscriptions; relative ("duration") expirations
are re-granted from the recovery time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.soap.codec import serialize_envelope
from repro.soap.envelope import SoapEnvelope
from repro.transport.http import build_request, parse_response
from repro.transport.network import NetworkError, SimulatedNetwork
from repro.wsa.headers import extract_headers


@dataclass
class JournalEntry:
    action: str
    wire: bytes


@dataclass
class SubscriptionJournal:
    """An append-only log of accepted Subscribe requests."""

    entries: list[JournalEntry] = field(default_factory=list)

    def record(self, envelope: SoapEnvelope) -> None:
        try:
            action = extract_headers(envelope).action
        except ValueError:
            action = ""
        self.entries.append(
            JournalEntry(action, serialize_envelope(envelope).encode("utf-8"))
        )

    def __len__(self) -> int:
        return len(self.entries)

    def replay(self, network: SimulatedNetwork, broker_address: str) -> int:
        """Re-post every journalled Subscribe at a (new) broker.

        Returns the number of successfully re-created subscriptions; entries
        whose original consumer endpoint has meanwhile vanished fail their
        first delivery later, exactly as a live subscription would.
        """
        recovered = 0
        # snapshot: the target broker may be journalling into this very list,
        # and replayed Subscribes must not be replayed again
        for entry in list(self.entries):
            wire = build_request(broker_address, entry.wire, soap_action=entry.action)
            try:
                response = parse_response(network.send_request(broker_address, wire))
            except NetworkError:
                continue
            if response.ok:
                recovered += 1
        return recovered
