"""Message-shape mediation between WS-Eventing and WS-Notification.

Section V.4 enumerates six categories of format difference between the two
specifications.  This module holds the translation functions WS-Messenger
applies when a message produced under one spec must be consumed under the
other, plus an analyzer that *measures* those differences on live message
pairs (used by the message-format benchmark, experiment E6):

1. element/attribute names (``ReferenceParameters`` vs
   ``ReferenceProperties`` around the subscription id);
2. namespaces (spec namespaces and the WSA namespaces they import);
3. versions of underlying specifications (WSA 2004/08 vs 2005/08);
4. required message contents (different ``wsa:Action`` values);
5. SOAP structures (WSN's ``Notify``/``NotificationMessage``/``Message``
   nesting vs WSE's raw body);
6. content locations (the topic lives in the WSN *body* but would ride a
   SOAP *header* for WSE).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.obs.instrument import NULL_INSTRUMENTATION
from repro.soap.envelope import SoapEnvelope
from repro.wsa.headers import extract_headers
from repro.wse.versions import WseVersion
from repro.wsn import messages as wsn_messages
from repro.wsn.messages import NotificationMessage
from repro.wsn.versions import WsnVersion
from repro.xmlkit.element import XElem, text_element
from repro.xmlkit.names import QName

#: where the topic rides when a WSN notification is mediated to a WSE sink
#: (category 6: WSE has no body slot for it, so it becomes a SOAP header)
WSE_TOPIC_HEADER = QName("http://repro.invalid/mediation", "Topic")


@dataclass
class MediatedNotification:
    """A spec-neutral notification inside the broker."""

    payload: XElem
    topic: Optional[str] = None


# --- WSN -> neutral -> WSE -------------------------------------------------------


def neutral_from_wsn_notify(
    body: XElem, version: WsnVersion, *, instrumentation=NULL_INSTRUMENTATION
) -> list[MediatedNotification]:
    """Unwrap a wsnt:Notify into neutral notifications (category 5)."""
    if not instrumentation.enabled:
        return [
            MediatedNotification(item.payload, item.topic)
            for item in wsn_messages.parse_notify(body, version)
        ]
    with instrumentation.span(
        "mediate", direction="wsn-to-neutral", version=version.name.lower()
    ):
        items = [
            MediatedNotification(item.payload, item.topic)
            for item in wsn_messages.parse_notify(body, version)
        ]
    instrumentation.count(
        "mediation.messages", len(items), direction="wsn-to-neutral"
    )
    return items


def wse_notification_parts(
    item: MediatedNotification, version: WseVersion
) -> tuple[XElem, list[XElem]]:
    """Render for a WSE consumer: raw payload body + topic as a SOAP header
    (categories 5 and 6)."""
    headers: list[XElem] = []
    if item.topic is not None:
        headers.append(text_element(WSE_TOPIC_HEADER, item.topic))
    return item.payload.copy(), headers


# --- WSE -> neutral -> WSN --------------------------------------------------------------


def neutral_from_wse_envelope(
    envelope: SoapEnvelope, *, instrumentation=NULL_INSTRUMENTATION
) -> MediatedNotification:
    """Lift a raw WSE notification (topic in header, if any) to neutral form."""
    if not instrumentation.enabled:
        topic = envelope.header_text(WSE_TOPIC_HEADER)
        return MediatedNotification(envelope.body_element().copy(), topic)
    with instrumentation.span("mediate", direction="wse-to-neutral"):
        topic = envelope.header_text(WSE_TOPIC_HEADER)
        item = MediatedNotification(envelope.body_element().copy(), topic)
    instrumentation.count("mediation.messages", direction="wse-to-neutral")
    return item


def wsn_notify_from_neutral(
    items: list[MediatedNotification], version: WsnVersion
) -> XElem:
    """Render for a WSN consumer: wrapped Notify with topic in the body."""
    return wsn_messages.build_notify(
        version,
        [NotificationMessage(item.payload.copy(), topic=item.topic) for item in items],
    )


def wsn_message_elements(
    items: list[MediatedNotification], version: WsnVersion
) -> list[XElem]:
    """Render neutral items as bare ``NotificationMessage`` elements.

    Used by the delivery subsystem's message boxes: a ``GetMessagesResponse``
    carries NotificationMessage children directly (no ``Notify`` wrapper), so
    parked spec-neutral messages are re-rendered in the drain dialect here."""
    notify = wsn_notify_from_neutral(items, version)
    return [child.copy() for child in notify.elements()]


# --- difference analysis (experiment E6) ---------------------------------------------------


@dataclass
class FormatDifferenceReport:
    """Measured differences between a WSE message and its WSN counterpart."""

    element_name_differences: list[str] = field(default_factory=list)
    namespace_differences: list[str] = field(default_factory=list)
    wsa_version_difference: Optional[str] = None
    action_difference: Optional[str] = None
    structure_depth_difference: Optional[str] = None
    content_location_difference: Optional[str] = None

    def categories_present(self) -> list[int]:
        present = []
        if self.element_name_differences:
            present.append(1)
        if self.namespace_differences:
            present.append(2)
        if self.wsa_version_difference:
            present.append(3)
        if self.action_difference:
            present.append(4)
        if self.structure_depth_difference:
            present.append(5)
        if self.content_location_difference:
            present.append(6)
        return present


def _namespaces_of(element: XElem) -> set[str]:
    found = {element.name.namespace}
    for descendant in element.descendants():
        found.add(descendant.name.namespace)
    return {ns for ns in found if ns}


def _max_depth(element: XElem) -> int:
    children = list(element.elements())
    if not children:
        return 1
    return 1 + max(_max_depth(child) for child in children)


def _local_names(element: XElem) -> set[str]:
    names = {element.name.local}
    for descendant in element.descendants():
        names.add(descendant.name.local)
    return names


def compare_message_pair(
    wse_envelope: SoapEnvelope, wsn_envelope: SoapEnvelope
) -> FormatDifferenceReport:
    """Diff two corresponding messages across the six categories."""
    report = FormatDifferenceReport()
    wse_body = wse_envelope.body_element()
    wsn_body = wsn_envelope.body_element()

    # (1) element-name differences
    only_wse = _local_names(wse_body) - _local_names(wsn_body)
    only_wsn = _local_names(wsn_body) - _local_names(wse_body)
    report.element_name_differences = sorted(only_wse | only_wsn)

    # (2) namespace differences (bodies and headers)
    wse_ns = _namespaces_of(wse_body) | {
        block.name.namespace for block in wse_envelope.headers
    }
    wsn_ns = _namespaces_of(wsn_body) | {
        block.name.namespace for block in wsn_envelope.headers
    }
    report.namespace_differences = sorted((wse_ns | wsn_ns) - (wse_ns & wsn_ns))

    # (3) WSA version difference
    wsa_ns_wse = {ns for ns in wse_ns if "addressing" in ns}
    wsa_ns_wsn = {ns for ns in wsn_ns if "addressing" in ns}
    if wsa_ns_wse and wsa_ns_wsn and wsa_ns_wse != wsa_ns_wsn:
        report.wsa_version_difference = (
            f"{sorted(wsa_ns_wse)[0]} vs {sorted(wsa_ns_wsn)[0]}"
        )

    # (4) required action values
    try:
        wse_action = extract_headers(wse_envelope).action
        wsn_action = extract_headers(wsn_envelope).action
        if wse_action != wsn_action:
            report.action_difference = f"{wse_action} vs {wsn_action}"
    except ValueError:
        pass

    # (5) structure difference (nesting depth of the same semantic message)
    wse_depth, wsn_depth = _max_depth(wse_body), _max_depth(wsn_body)
    if wse_depth != wsn_depth:
        report.structure_depth_difference = (
            f"body depth {wse_depth} (WSE) vs {wsn_depth} (WSN)"
        )

    # (6) content location: semantic items present in one side's headers but
    # the other side's body (the Topic is the canonical case)
    wse_header_locals = {block.name.local for block in wse_envelope.headers}
    wsn_body_locals = _local_names(wsn_body)
    moved = (wse_header_locals & wsn_body_locals) - {"To", "Action", "MessageID"}
    if moved:
        report.content_location_difference = (
            f"{sorted(moved)} in WSE headers but WSN body"
        )
    return report
