"""Messaging backbones: the broker's pluggable underlying pub/sub system.

"Besides using the default message filtering, WS-Messenger provides a
generic interface that can use existing publish/subscribe systems as the
underlying message systems.  In this way, WS-Messenger provides Web service
interfaces to existing messaging systems." (section VII)

A backbone carries neutral notifications from :meth:`WsMessenger.publish`
to the broker's fan-out.  Besides the trivial in-memory fabric, two real
adapters wrap the baseline systems: the payload XML genuinely traverses a
JMS topic (as a TextMessage) or a CORBA Notification channel (as a
structured event through CDR marshalling) before reaching WS consumers.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.baselines.corba.events import StructuredEvent
from repro.baselines.corba.notification_service import NotificationChannel
from repro.baselines.corba.orb import Orb
from repro.baselines.jms.messages import TextMessage
from repro.baselines.jms.provider import JmsProvider
from repro.baselines.jms.session import Connection
from repro.xmlkit.element import XElem
from repro.xmlkit.parser import parse_xml
from repro.xmlkit.writer import serialize_xml

Deliver = Callable[[XElem, Optional[str]], None]


class MessagingBackbone:
    """The generic underlying-messaging interface."""

    #: set by the broker that mounts the backbone; lets adapters route
    #: otherwise-invisible per-message drain errors through the network's
    #: ``obs.swallowed_errors_total`` counter instead of dropping them
    network = None

    def start(self, deliver: Deliver) -> None:
        """Connect the backbone to the broker's fan-out callback."""
        raise NotImplementedError

    def publish(self, payload: XElem, topic: Optional[str]) -> None:
        raise NotImplementedError

    def _count_swallow(self, site: str, error: Exception) -> None:
        if self.network is not None:
            self.network.instrumentation.count(
                "obs.swallowed_errors_total", site=site, kind=type(error).__name__
            )

    def describe(self) -> str:
        return type(self).__name__


class InMemoryBackbone(MessagingBackbone):
    """The default: publications reach the fan-out directly."""

    def __init__(self) -> None:
        self._deliver: Optional[Deliver] = None

    def start(self, deliver: Deliver) -> None:
        self._deliver = deliver

    def publish(self, payload: XElem, topic: Optional[str]) -> None:
        if self._deliver is None:
            raise RuntimeError("backbone not started")
        self._deliver(payload, topic)

    def describe(self) -> str:
        return "in-memory"


class JmsBackbone(MessagingBackbone):
    """Routes broker traffic through a JMS topic on the baseline provider."""

    TOPIC_PROPERTY = "wsTopic"

    def __init__(self, provider: JmsProvider, topic_name: str = "ws-messenger") -> None:
        self.provider = provider
        self.topic = provider.topic(topic_name)
        self._connection = Connection(provider, "ws-messenger-backbone")
        self._connection.start()
        self._session = self._connection.create_session()
        self._producer = self._session.create_producer(self.topic)
        self._deliver: Optional[Deliver] = None
        self.messages_carried = 0

    def start(self, deliver: Deliver) -> None:
        self._deliver = deliver
        consumer = self._session.create_consumer(self.topic)

        # the consumer buffers; we drain synchronously after each publish,
        # which keeps the single-process simulation deterministic
        self._consumer = consumer

    def publish(self, payload: XElem, topic: Optional[str]) -> None:
        if self._deliver is None:
            raise RuntimeError("backbone not started")
        message = TextMessage(text=serialize_xml(payload))
        if topic is not None:
            message.set_property(self.TOPIC_PROPERTY, topic)
        self._producer.send(message)
        first_error: Optional[Exception] = None
        while True:
            received = self._consumer.receive()
            if received is None:
                break
            self.messages_carried += 1
            carried_topic = received.get_property(self.TOPIC_PROPERTY)
            try:
                self._deliver(parse_xml(received.text), carried_topic)
            except Exception as exc:  # noqa: BLE001
                # one bad buffered message must not strand those queued
                # behind it; the first error still surfaces after the drain,
                # any further ones are counted rather than silently lost
                if first_error is None:
                    first_error = exc
                else:
                    self._count_swallow("messenger.adapters.jms_drain", exc)
        if first_error is not None:
            raise first_error

    def describe(self) -> str:
        return f"jms(topic={self.topic.name})"


class CorbaBackbone(MessagingBackbone):
    """Routes broker traffic through a CORBA Notification channel.

    Payload XML rides as the remainder-of-body of a structured event; the
    WS topic becomes filterable data.  The event round-trips through CDR via
    the push consumer proxy and an ORB-registered consumer servant.
    """

    def __init__(self, orb: Optional[Orb] = None) -> None:
        self.orb = orb or Orb("ws-messenger")
        self.channel = NotificationChannel(self.orb)
        self._deliver: Optional[Deliver] = None
        self.messages_carried = 0

    def start(self, deliver: Deliver) -> None:
        self._deliver = deliver

        def consumer_servant(operation: str, args: list) -> None:
            events = args[0] if operation == "push_structured_events" else [args[0]]
            first_error: Optional[Exception] = None
            for wire in events:
                event = StructuredEvent.from_wire(wire)
                self.messages_carried += 1
                topic = event.filterable_data.get("wsTopic")
                try:
                    deliver(parse_xml(event.payload), topic)
                except Exception as exc:  # noqa: BLE001
                    # same contract as the JMS drain: finish the batch, then
                    # surface the first error; count the rest
                    if first_error is None:
                        first_error = exc
                    else:
                        self._count_swallow("messenger.adapters.corba_push", exc)
            if first_error is not None:
                raise first_error

        consumer_ref = self.orb.register(consumer_servant)
        proxy = self.channel.new_for_consumers().obtain_structured_push_supplier()
        proxy.connect_structured_push_consumer(consumer_ref)
        self._supplier = self.channel.new_for_suppliers().obtain_structured_push_consumer()

    def publish(self, payload: XElem, topic: Optional[str]) -> None:
        if self._deliver is None:
            raise RuntimeError("backbone not started")
        event = StructuredEvent(
            domain_name="ws-messenger",
            type_name="Notification",
            filterable_data={"wsTopic": topic} if topic is not None else {},
            payload=serialize_xml(payload),
        )
        self._supplier.push_structured_event(event)

    def describe(self) -> str:
        return "corba-notification"
