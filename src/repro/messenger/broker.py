"""The WS-Messenger broker.

One front-door address accepts traffic in **both** specification families and
**all five** supported versions.  Per section VII:

- spec detection: every incoming envelope is classified by
  :func:`repro.messenger.detection.detect_spec`;
- "Response messages follow the same specifications as request messages":
  each request is dispatched to an internal implementation of exactly the
  detected version, whose reply is returned verbatim;
- "notification messages follow the expected specifications of the target
  event consumers.  The specification type of a target event consumer is
  determined by the subscription request message type": a subscription made
  with a WSE 08/2004 Subscribe lives in the broker's internal WSE 08/2004
  event source and is served raw WSE notifications; a WSN 1.3 subscription
  is served wrapped ``Notify`` messages; and so on;
- publications may enter in-process (:meth:`WsMessenger.publish`), as WSN
  ``Notify`` messages at the front door, or by bridging from external WSE
  sources / WSN producers — "an event producer can publish event
  notifications using either the WS-Eventing specification or the
  WS-Notification specification.  It makes no difference to the event
  consumers";
- all traffic is carried by a pluggable messaging backbone
  (:mod:`repro.messenger.adapters`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.core import BrokerStore

from repro.delivery.manager import DeliveryManager
from repro.delivery.messagebox import MessageBoxRegistry
from repro.delivery.policy import BatchingPolicy, DeliveryPolicy
from repro.filters.topics import TopicNamespace
from repro.messenger.adapters import InMemoryBackbone, MessagingBackbone
from repro.messenger.detection import DetectedSpec, SpecDetectionError, SpecFamily, detect_spec
from repro.messenger.journal import SubscriptionJournal
from repro.obs.instrument import BoundCounters
from repro.qos.adaptive import AdaptiveQosController, AdaptiveQosPolicy
from repro.messenger import mediation
from repro.soap.envelope import SoapEnvelope
from repro.soap.fault import FaultCode, SoapFault
from repro.transport.endpoint import SoapEndpoint
from repro.transport.network import SimulatedNetwork
from repro.wsa.epr import EndpointReference
from repro.wsa.headers import MessageHeaders
from repro.wse.model import DeliveryMode
from repro.wse.source import EventSource
from repro.wse.subscriber import WseSubscriber
from repro.wse.versions import WseVersion
from repro.wsn.producer import NotificationProducer
from repro.wsn.pullpoint import PullPointFactory
from repro.wsn.subscriber import WsnSubscriber
from repro.wsn.versions import WsnVersion
from repro.xmlkit.element import XElem


@dataclass
class BrokerStats:
    """Observability: what the detection layer saw."""

    detected: dict[str, int] = field(default_factory=dict)
    publications: int = 0
    detection_failures: int = 0

    def record(self, spec: DetectedSpec) -> None:
        key = f"{spec.family.value}/{spec.version.name}"
        self.detected[key] = self.detected.get(key, 0) + 1


def _family_tag(spec: DetectedSpec) -> str:
    """Short metric-label form of the spec family ("wse"/"wsn")."""
    return "wse" if spec.family is SpecFamily.WS_EVENTING else "wsn"


class WsMessenger:
    """The mediation broker."""

    def __init__(
        self,
        network: SimulatedNetwork,
        address: str,
        *,
        backbone: Optional[MessagingBackbone] = None,
        topic_namespace: Optional[TopicNamespace] = None,
        wse_versions: Optional[list[WseVersion]] = None,
        wsn_versions: Optional[list[WsnVersion]] = None,
        journal: Optional["SubscriptionJournal"] = None,
        delivery: Optional[DeliveryPolicy] = None,
        delivery_seed: int = 0,
        qos: Optional[AdaptiveQosPolicy] = None,
        store: Optional["BrokerStore"] = None,
        debug_linear_match: bool = False,
        batching: Optional[BatchingPolicy] = None,
        debug_no_templates: bool = False,
    ) -> None:
        self.network = network
        self.address = address
        #: escape hatch: run every internal source/producer on the pre-index
        #: linear matcher (differential tests diff the two fan-out paths)
        self.debug_linear_match = debug_linear_match
        #: escape hatch: disable envelope byte-templates (tree-serialize every
        #: Notify); mirrors debug_linear_match for the byte-template layer
        self.debug_no_templates = debug_no_templates
        #: optional per-sink coalescing of same-EPR notifications
        self.batching = batching
        self.stats = BrokerStats()
        #: pre-bound front-door/fan-out counters (identity-keyed cache)
        self._bound_counters = BoundCounters()
        self.backbone = backbone or InMemoryBackbone()
        self.backbone.network = network
        #: optional crash-recovery journal (see repro.messenger.journal)
        self.journal = journal
        #: optional event-sourced durable core (see repro.store); exactly-
        #: once outcomes need the delivery pipeline, so a store implies one
        self.store = store
        if store is not None and delivery is None:
            delivery = DeliveryPolicy()
        # adaptive QoS needs the reliable pipeline to act on (bounded queues,
        # pacing and shedding all live in the delivery manager)
        if qos is not None and delivery is None:
            delivery = DeliveryPolicy()
        # reliable delivery: a DeliveryPolicy turns the best-effort push into
        # the store-and-forward pipeline shared by every internal source
        if delivery is not None:
            self.message_boxes: Optional[MessageBoxRegistry] = MessageBoxRegistry(
                network, f"{address}/msgbox"
            )
            self.qos: Optional[AdaptiveQosController] = (
                AdaptiveQosController(network.clock, policy=qos)
                if qos is not None
                else None
            )
            self.delivery_manager: Optional[DeliveryManager] = DeliveryManager(
                network,
                policy=delivery,
                seed=delivery_seed,
                message_boxes=self.message_boxes,
                qos=self.qos,
            )
        else:
            self.message_boxes = None
            self.delivery_manager = None
            self.qos = None
        topics = topic_namespace or TopicNamespace()
        # internal per-version implementations on hidden sub-addresses; the
        # manager EPRs they mint are handed to clients verbatim, so Renew /
        # Unsubscribe / GetStatus / Pull flow to them directly, already in
        # the right dialect.
        self.wse_sources: dict[WseVersion, EventSource] = {}
        for version in wse_versions if wse_versions is not None else list(WseVersion):
            tag = version.name.lower()
            self.wse_sources[version] = EventSource(
                network,
                f"{address}/{tag}",
                version=version,
                manager_address=f"{address}/{tag}/subscriptions",
                topic_header=mediation.WSE_TOPIC_HEADER,
                delivery_manager=self.delivery_manager,
                debug_linear_match=debug_linear_match,
                batching=batching,
            )
        self.wsn_producers: dict[WsnVersion, NotificationProducer] = {}
        for version in wsn_versions if wsn_versions is not None else list(WsnVersion):
            tag = version.name.lower()
            self.wsn_producers[version] = NotificationProducer(
                network,
                f"{address}/{tag}",
                version=version,
                manager_address=f"{address}/{tag}/subscriptions",
                topic_namespace=topics,
                delivery_manager=self.delivery_manager,
                debug_linear_match=debug_linear_match,
                batching=batching,
                debug_no_templates=debug_no_templates,
            )
        # pull points for firewalled WSN 1.3 consumers
        self.pullpoint_factory = (
            PullPointFactory(network, f"{address}/pullpoints", version=WsnVersion.V1_3)
            if WsnVersion.V1_3 in self.wsn_producers
            else None
        )
        #: mesh hook (see repro.mesh.node): consulted on every publish, inside
        #: the publish span; returning True means the router took the message
        #: (forwarded it to its owning shard) and local fan-out is skipped
        self.publish_router: Optional[
            Callable[[XElem, Optional[str]], bool]
        ] = None
        # capture the identity each granted Subscribe mints — (family, tag,
        # sub_id, granted absolute expiry) — for the journal and the store
        self._last_granted: Optional[tuple[str, str, str, Optional[float]]] = None
        for version, source in self.wse_sources.items():
            source.store.on_created.append(
                self._wse_granted_hook(version.name.lower())
            )
        for version, producer in self.wsn_producers.items():
            producer.subscription_listeners.append(
                self._wsn_granted_hook(version.name.lower())
            )
        # the front door
        self.endpoint = SoapEndpoint(network, address)
        self.endpoint.on_any(self._front_door)
        # bridging roles (lazy): the broker as subscriber/consumer upstream
        self._ingest_counter = 0
        self._ingest_endpoints: list[object] = []
        self.backbone.start(self._fan_out)
        if self.store is not None:
            self.store.attach(self)

    def _wse_granted_hook(self, tag: str):
        def on_created(subscription) -> None:
            self._last_granted = ("wse", tag, subscription.id, subscription.expires)

        return on_created

    def _wsn_granted_hook(self, tag: str):
        def on_event(event: str, subscription) -> None:
            if event == "created":
                self._last_granted = (
                    "wsn",
                    tag,
                    subscription.key,
                    subscription.resource.termination_time,
                )

        return on_event

    def epr(self) -> EndpointReference:
        return EndpointReference(self.address)

    def close(self) -> None:
        self.endpoint.close()
        for source in self.wse_sources.values():
            source.close()
        for producer in self.wsn_producers.values():
            producer.close()
        if self.message_boxes is not None:
            self.message_boxes.close()

    # --- reliable-delivery pump -------------------------------------------------------

    def pump_deliveries(self) -> int:
        """Run delivery retries already due on the virtual clock."""
        if self.delivery_manager is None:
            return 0
        return self.delivery_manager.run_due()

    def run_deliveries_until_idle(self, *, deadline: Optional[float] = None) -> int:
        """Fast-forward the clock until the delivery pipeline drains."""
        if self.delivery_manager is None:
            return 0
        return self.delivery_manager.run_until_idle(deadline=deadline)

    # --- the front door -----------------------------------------------------------

    def _front_door(
        self, envelope: SoapEnvelope, headers: MessageHeaders
    ) -> Optional[SoapEnvelope]:
        instr = self.network.instrumentation
        if not instr.enabled:
            try:
                spec = detect_spec(envelope)
            except SpecDetectionError as exc:
                self.stats.detection_failures += 1
                raise SoapFault(
                    FaultCode.SENDER, f"specification detection failed: {exc}"
                )
        else:
            with instr.span("detect_spec") as span:
                try:
                    spec = detect_spec(envelope)
                except SpecDetectionError as exc:
                    self.stats.detection_failures += 1
                    instr.count("broker.detection_failures")
                    raise SoapFault(
                        FaultCode.SENDER, f"specification detection failed: {exc}"
                    )
                span.set("family", _family_tag(spec))
                span.set("version", spec.version.name.lower())
                span.set("operation", spec.operation)
            family = _family_tag(spec)
            version = spec.version.name.lower()
            request_key = family + ":" + version
            request_counter = self._bound_counters.probe(instr, request_key)
            if request_counter is None:
                request_counter = self._bound_counters.get(
                    instr, request_key, "broker.requests",
                    family=family, version=version,
                )
            request_counter.inc()
        self.stats.record(spec)
        if spec.operation == "Notify" and spec.family is SpecFamily.WS_NOTIFICATION:
            return self._accept_wsn_publication(envelope, spec)
        self._last_granted = None
        reply = self._route(envelope, headers, spec)
        if spec.operation == "Subscribe":  # only reached on success (no fault)
            granted, self._last_granted = self._last_granted, None
            if self.journal is not None:
                self.journal.record(envelope, granted=granted)
            if self.store is not None:
                self.store.record_subscribe(envelope, headers.action, granted)
        return reply

    def _route(
        self, envelope: SoapEnvelope, headers: MessageHeaders, spec: DetectedSpec
    ) -> Optional[SoapEnvelope]:
        if spec.operation == "CreatePullPoint":
            if self.pullpoint_factory is None:
                raise SoapFault(FaultCode.SENDER, "pull points require WSN 1.3")
            return self.pullpoint_factory._handle_create(envelope, headers)
        if spec.family is SpecFamily.WS_EVENTING:
            implementation = self.wse_sources.get(spec.version)
        else:
            implementation = self.wsn_producers.get(spec.version)
        if implementation is None:
            raise SoapFault(
                FaultCode.SENDER,
                f"{spec.describe()} is not enabled on this broker",
            )
        handler = implementation.endpoint._handlers.get(headers.action)
        if handler is None:
            # WSE 01/2004 mounts manager ops on the source endpoint itself, so
            # they resolve above; for every other version, management flows to
            # the subscription-manager EPR minted at Subscribe time, not here.
            raise SoapFault(
                FaultCode.SENDER,
                f"operation {spec.operation!r} ({spec.describe()}) is not accepted "
                "at the broker front door; management operations go to the "
                "subscription-manager EPR",
            )
        return handler(envelope, headers)

    def _accept_wsn_publication(
        self, envelope: SoapEnvelope, spec: DetectedSpec
    ) -> None:
        body = envelope.body_element()
        items = mediation.neutral_from_wsn_notify(
            body, spec.version, instrumentation=self.network.instrumentation
        )
        for item in items:
            self.publish(item.payload, topic=item.topic)
        return None

    # --- publication & fan-out ------------------------------------------------------

    def publish(self, payload: XElem, *, topic: Optional[str] = None) -> None:
        """Publish a notification through the backbone to every consumer
        whose subscription matches — regardless of which spec they used."""
        instr = self.network.instrumentation
        self.stats.publications += 1
        store = self.store
        if not instr.enabled:
            if store is not None:
                store.record_publish(payload, topic, None)
            try:
                if self.publish_router is not None and self.publish_router(
                    payload, topic
                ):
                    if store is not None:
                        store.record_routed()
                    return
                self.backbone.publish(payload, topic)
            finally:
                if store is not None:
                    store.end_publish()
            return
        publications_counter = self._bound_counters.probe(instr, "publications")
        if publications_counter is None:
            publications_counter = self._bound_counters.get(
                instr, "publications", "broker.publications"
            )
        publications_counter.inc()
        # a mediated publish arrives inside a dispatch span that already
        # carries the origin's lineage; a locally-originated one mints here
        originating = instr.trace_context() is None
        phases = instr.phases
        timer = phases.begin() if phases is not None else 0
        with instr.span("broker.publish", mint=True, topic=topic or "") as span:
            # direct ledger write: mint=True guarantees span.lineage
            instr._ledger_record(
                span.lineage,
                "published" if originating else "mediated",
                broker=self.address,
                topic=topic or "",
            )
            flight = instr.flight
            if flight.enabled:
                flight.record(
                    "publish",
                    broker=self.address,
                    topic=topic or "",
                    lineage=span.lineage,
                    origin="local" if originating else "mediated",
                )
            # transactional outbox: the publish record (and the message id
            # that stamps every delivery item) exists before any fan-out
            if store is not None:
                store.record_publish(payload, topic, instr.trace_context())
            try:
                if self.publish_router is not None and self.publish_router(
                    payload, topic
                ):
                    if store is not None:
                        store.record_routed()
                    return
                self.backbone.publish(payload, topic)
            finally:
                if store is not None:
                    store.end_publish()
                if phases is not None:
                    phases.end("publish", timer)

    def _fan_out(self, payload: XElem, topic: Optional[str]) -> None:
        instr = self.network.instrumentation
        if not instr.enabled:
            self._fan_out_all(payload, topic)
            return
        with instr.span("broker.fan_out"):
            self._fan_out_all(payload, topic)

    def _fan_out_all(self, payload: XElem, topic: Optional[str]) -> None:
        if self.debug_linear_match:
            self._fan_out_all_linear(payload, topic)
            return
        instr = self.network.instrumentation
        # freeze once at the broker: every internal source/producer (and the
        # whole delivery machinery below them) shares this one instance
        if not payload.frozen:
            payload = payload.copy().freeze()
            if instr.enabled:
                self._bound_counters.get(
                    instr, "payload_copies", "fanout.payload_copies",
                    family="broker",
                ).inc()
        skips_counter = (
            self._bound_counters.get(
                instr, "index_skips", "fanout.index_skips", family="broker"
            )
            if instr.enabled
            else None
        )
        for source in self.wse_sources.values():
            if not source.store.has_subscriptions():
                if skips_counter is not None:
                    skips_counter.inc()
                continue
            source.publish(payload, topic=topic)
        for producer in self.wsn_producers.values():
            if topic is None and producer.version.requires_topic:
                continue  # <=1.2 subscriptions are all topic-filtered anyway
            if not producer.has_subscriptions():
                # still validate the topic and refresh GetCurrentMessage
                producer.note_publication(payload, topic)
                if skips_counter is not None:
                    skips_counter.inc()
                continue
            producer.publish(payload, topic=topic)

    def _fan_out_all_linear(self, payload: XElem, topic: Optional[str]) -> None:
        for source in self.wse_sources.values():
            source.publish(payload, topic=topic)
        for producer in self.wsn_producers.values():
            if topic is None and producer.version.requires_topic:
                continue  # <=1.2 subscriptions are all topic-filtered anyway
            producer.publish(payload, topic=topic)

    def flush(self) -> None:
        """Flush wrapped-mode batches in the internal WSE sources and any
        pending per-sink Notify batches in the WSN producers."""
        for source in self.wse_sources.values():
            source.flush()
        for producer in self.wsn_producers.values():
            producer.flush_batches()

    # --- introspection ---------------------------------------------------------------

    def subscription_count(self) -> int:
        return sum(len(s.store) for s in self.wse_sources.values()) + sum(
            len(p.live_subscriptions()) for p in self.wsn_producers.values()
        )

    # --- bridging: the broker as a consumer of external producers ------------------------

    def bridge_from_wse_source(
        self,
        source: EndpointReference,
        *,
        version: WseVersion = WseVersion.V2004_08,
        filter: Optional[str] = None,
        filter_namespaces: Optional[dict[str, str]] = None,
    ) -> None:
        """Subscribe the broker to an external WS-Eventing source; everything
        it pushes is re-published to all broker subscribers (mediation from
        WSE publishers to consumers of either spec)."""
        self._ingest_counter += 1
        ingest_address = f"{self.address}/ingest-{self._ingest_counter}"
        ingest = SoapEndpoint(self.network, ingest_address)

        def on_notification(envelope: SoapEnvelope, headers: MessageHeaders):
            item = mediation.neutral_from_wse_envelope(
                envelope, instrumentation=self.network.instrumentation
            )
            self.publish(item.payload, topic=item.topic)
            return None

        ingest.on_any(on_notification)
        self._ingest_endpoints.append(ingest)
        subscriber = WseSubscriber(self.network, version=version)
        subscriber.subscribe(
            source,
            notify_to=EndpointReference(ingest_address),
            mode=DeliveryMode.PUSH,
            filter=filter,
            filter_namespaces=filter_namespaces,
        )

    def bridge_from_wsn_producer(
        self,
        producer: EndpointReference,
        *,
        version: WsnVersion = WsnVersion.V1_3,
        topic: Optional[str] = None,
        topic_dialect: Optional[str] = None,
    ) -> None:
        """Subscribe the broker to an external WS-Notification producer."""
        self._ingest_counter += 1
        ingest_address = f"{self.address}/ingest-{self._ingest_counter}"
        ingest = SoapEndpoint(self.network, ingest_address)

        def on_notify(envelope: SoapEnvelope, headers: MessageHeaders):
            body = envelope.body_element()
            if body.name == version.qname("Notify"):
                items = mediation.neutral_from_wsn_notify(
                    body, version, instrumentation=self.network.instrumentation
                )
                for item in items:
                    self.publish(item.payload, topic=item.topic)
            else:
                self.publish(body.copy())
            return None

        ingest.on_action(version.action("Notify"), on_notify)
        ingest.on_any(on_notify)
        self._ingest_endpoints.append(ingest)
        subscriber = WsnSubscriber(self.network, version=version)
        kwargs = {}
        if topic_dialect is not None:
            kwargs["topic_dialect"] = topic_dialect
        subscriber.subscribe(
            producer, EndpointReference(ingest_address), topic=topic, **kwargs
        )
