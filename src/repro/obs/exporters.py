"""Exporters: render one instrumented run as text or deterministic JSON.

Both renderings are pure functions of the :class:`Instrumentation` state,
which itself is a pure function of the scenario under the virtual clock —
so running the same scenario twice yields byte-identical reports, which is
what lets ``python -m repro obs-report`` be diffed across commits.
"""

from __future__ import annotations

import json

from repro.obs.instrument import Instrumentation
from repro.obs.slo import slo_summary


def _base_name(key: str) -> str:
    """Metric name without the ``{label=value,...}`` suffix."""
    brace = key.find("{")
    return key if brace < 0 else key[:brace]


def _counter_family_summary(counters: dict[str, int], prefix: str) -> dict[str, int]:
    """Aggregate ``<prefix>*`` counter series across their labels."""
    totals: dict[str, int] = {}
    for key, value in counters.items():
        name = _base_name(key)
        if name.startswith(prefix):
            short = name[len(prefix):]
            totals[short] = totals.get(short, 0) + value
    return dict(sorted(totals.items()))


def _delivery_summary(counters: dict[str, int]) -> dict[str, int]:
    """Aggregate ``delivery.*`` counter series across their labels."""
    return _counter_family_summary(counters, "delivery.")


def _fanout_summary(counters: dict[str, int]) -> dict[str, int]:
    """Aggregate the fan-out fast-path counters (``fanout.*``)."""
    return _counter_family_summary(counters, "fanout.")


def caches_snapshot() -> dict:
    """The process-global fast-path cache stats (PR 8's machinery), in one
    deterministic dict: notify byte-templates, the frozen-subtree writer
    and the compiled-filter caches."""
    from repro.filters.compilecache import FILTER_COMPILE_STATS
    from repro.xmlkit.template import TEMPLATE_STATS
    from repro.xmlkit.writer import WRITER_STATS

    return {
        "templates": {
            "hits": TEMPLATE_STATS.hits,
            "misses": TEMPLATE_STATS.misses,
            "fallbacks": TEMPLATE_STATS.fallbacks,
        },
        "writer": {
            "frozen_serializations": WRITER_STATS.frozen_serializations,
            "frozen_splices": WRITER_STATS.frozen_splices,
            "tree_serializations": WRITER_STATS.tree_serializations,
        },
        "filter_compiles": FILTER_COMPILE_STATS.snapshot(),
    }


def reset_cache_stats() -> None:
    """Zero the process-global cache stats (scenario entry points call this
    so cache sections are a function of the scenario alone).  The compiled-
    filter *cache content* is dropped too — otherwise a second scenario run
    in the same process hits where the first missed and the report stops
    being deterministic."""
    from repro.filters.compilecache import FILTER_COMPILE_STATS, clear_caches
    from repro.xmlkit.template import TEMPLATE_STATS
    from repro.xmlkit.writer import WRITER_STATS

    TEMPLATE_STATS.reset()
    WRITER_STATS.reset()
    clear_caches()
    FILTER_COMPILE_STATS.reset()


def build_report(instrumentation: Instrumentation, *, title: str = "obs report") -> dict:
    """The canonical report document (deterministically ordered)."""
    snapshot = instrumentation.snapshot()
    spans = snapshot["spans"]
    wire_totals = snapshot["wire"]["totals"]
    summary = {
        "spans": len(spans),
        "span_errors": sum(1 for s in spans if s["status"] != "ok"),
        "metrics": len(instrumentation.metrics),
        "wire_frames": wire_totals["count"],
        "wire_request_bytes": wire_totals["request_bytes"],
        "wire_response_bytes": wire_totals["response_bytes"],
    }
    delivery = _delivery_summary(snapshot["metrics"]["counters"])
    if delivery:
        summary["delivery"] = delivery
    fanout = _fanout_summary(snapshot["metrics"]["counters"])
    if fanout:
        summary["fanout"] = fanout
    mesh = _counter_family_summary(snapshot["metrics"]["counters"], "mesh.")
    if mesh:
        summary["mesh"] = mesh
    store = _counter_family_summary(snapshot["metrics"]["counters"], "store.")
    if store:
        summary["store"] = store
    lineage = snapshot["lineage"]
    if lineage:
        totals = instrumentation.ledger.totals()
        summary["lineage"] = {"lineages": len(lineage), **totals.to_dict()}
    latency = slo_summary(instrumentation.metrics)
    report = {
        "title": title,
        "clock": snapshot["clock"],
        "summary": summary,
        "metrics": snapshot["metrics"],
        "spans": spans,
        "wire": snapshot["wire"],
        "lineage": lineage,
        "caches": caches_snapshot(),
    }
    if "flight" in snapshot:
        report["flight"] = snapshot["flight"]
    if "phases" in snapshot:
        report["phases"] = snapshot["phases"]
    if latency:
        report["delivery_latency"] = latency
    return report


def render_json_report(
    instrumentation: Instrumentation, *, title: str = "obs report"
) -> str:
    return json.dumps(
        build_report(instrumentation, title=title), indent=2, sort_keys=True
    )


def render_text_report(
    instrumentation: Instrumentation, *, title: str = "obs report"
) -> str:
    report = build_report(instrumentation, title=title)
    lines = [report["title"], "=" * len(report["title"]), ""]

    summary = report["summary"]
    lines.append(
        f"virtual clock {report['clock']:.4f}s | {summary['spans']} spans"
        f" ({summary['span_errors']} errored) | {summary['metrics']} metric series"
        f" | {summary['wire_frames']} wire frames"
    )
    if "fanout" in summary:
        lines.append(
            "fan-out: "
            + ", ".join(f"{k}={v}" for k, v in summary["fanout"].items())
        )
    for family in ("mesh", "store"):
        if family in summary:
            lines.append(
                f"{family}: "
                + ", ".join(f"{k}={v}" for k, v in summary[family].items())
            )
    lines.append("")

    lines.append("Metrics")
    lines.append("-------")
    counters = report["metrics"]["counters"]
    for key in counters:
        lines.append(f"  {key:<60s} {counters[key]}")
    gauges = report["metrics"]["gauges"]
    for key in gauges:
        lines.append(f"  {key:<60s} {gauges[key]:g}")
    for key, hist in report["metrics"]["histograms"].items():
        lines.append(
            f"  {key:<60s} count={hist['count']} sum={hist['sum']:g}"
            f" min={hist['min']:g} max={hist['max']:g}"
            if hist["count"]
            else f"  {key:<60s} count=0"
        )
    if not (counters or gauges or report["metrics"]["histograms"]):
        lines.append("  (none)")
    lines.append("")

    if "phases" in report:
        lines.append("Phase timers")
        lines.append("------------")
        counts = report["phases"]["counts"]
        lines.append(
            "  " + " -> ".join(f"{phase}={counts[phase]}" for phase in counts)
        )
        lines.append("")

    if "flight" in report:
        flight = report["flight"]
        lines.append("Flight recorder")
        lines.append("---------------")
        lines.append(
            f"  {flight['recorded']} recorded, {flight['dropped']} dropped"
            f" (ring capacity {flight['capacity']}); by kind: "
            + (
                ", ".join(f"{k}={v}" for k, v in flight["by_kind"].items())
                or "none"
            )
        )
        for record in instrumentation.flight.tail(12):
            lines.append(f"  {record.render()}")
        lines.append("")

    lines.append("Spans")
    lines.append("-----")
    tree = instrumentation.tracer.render_tree()
    lines.extend(
        f"  {line}" for line in (tree.splitlines() if tree else ["(none)"])
    )
    lines.append("")

    if report["lineage"]:
        lines.append("Lineage")
        lines.append("-------")
        for lineage_id, entry in report["lineage"].items():
            account = entry["account"]
            lines.append(
                f"  {lineage_id}: opened={account['opened']}"
                f" delivered={account['delivered']}"
                f" dead_lettered={account['dead_lettered']}"
                f" failed={account['failed']} pending={account['pending']}"
                f" attempts={account['attempts']}"
            )
            for event in entry["events"]:
                detail = " ".join(
                    f"{k}={v}" for k, v in event.items() if k not in ("at", "state")
                )
                lines.append(
                    f"    {event['at']:9.4f}s {event['state']}"
                    f"{(' ' + detail) if detail else ''}"
                )
        lines.append("")

    if "delivery_latency" in report:
        lines.append("Delivery latency (publish -> delivered, virtual seconds)")
        lines.append("--------------------------------------------------------")
        latency = report["delivery_latency"]
        for group_name, key_prefix in (("per_family", "family"), ("per_hops", "hops")):
            for label, stats in latency[group_name].items():
                lines.append(
                    f"  {key_prefix}={label:<12s} count={stats['count']}"
                    f" p50={stats['p50']:g} p95={stats['p95']:g}"
                    f" p99={stats['p99']:g}"
                )
        lines.append("")

    lines.append("Caches")
    lines.append("------")
    caches = report["caches"]
    lines.append(
        "  templates: "
        + ", ".join(f"{k}={v}" for k, v in caches["templates"].items())
    )
    lines.append(
        "  writer:    "
        + ", ".join(f"{k}={v}" for k, v in caches["writer"].items())
    )
    lines.append(
        "  filters:   "
        + ", ".join(f"{k}={v}" for k, v in sorted(caches["filter_compiles"].items()))
    )
    lines.append("")

    lines.append("Wire")
    lines.append("----")
    totals = report["wire"]["totals"]
    outcome = ", ".join(f"{k}={v}" for k, v in totals["by_outcome"].items()) or "none"
    lines.append(
        f"  {totals['count']} exchanges ({outcome});"
        f" {totals['request_bytes']} request bytes,"
        f" {totals['response_bytes']} response bytes"
    )
    for frame in report["wire"]["frames"]:
        response = (
            f"{frame['response_size']}B"
            if frame["response_size"] is not None
            else "-"
        )
        lines.append(
            f"  #{frame['index']:<3d} {frame['from_zone']}->"
            f"{frame['to_zone'] or '?'} {frame['address']:<44s}"
            f" {frame['request_size']}B/{response}"
            f" {frame['latency'] * 1000:.3f}ms {frame['outcome']}"
        )
    return "\n".join(lines)
