"""``python -m repro obs-health`` / ``obs-top``: continuous broker telemetry.

Where ``obs-report`` explains one publish in depth and ``obs-audit``
checks the books after the fact, this module watches a broker *while it
runs*: a store-backed core broker plus a two-shard mesh execute a scripted
minute of traffic with :class:`~repro.obs.probes.GaugeProbes` sampling
every backlog on the virtual scheduler and the
:class:`~repro.obs.flight.FlightRecorder` armed throughout.

The scripted workload deliberately ends degraded, because a health report
that has never seen an anomaly proves nothing:

* a **paused** WSN subscription accumulates one notification per publish —
  its queue gauge rises on every sample, tripping the unbounded-growth
  probe;
* a **firewalled** WSE sink parks a copy of every publish in its message
  box (drained by pull only after the sampling window closes) — a second
  monotonic series while the window is open;
* a **flaky** consumer drops its first five pushes, walking its circuit
  breaker around closed → open → half-open repeatedly — the breaker-flap
  probe counts the transitions;
* one final publish is stranded in the delivery batcher: its window
  deadline passes with the scheduler never pumped again, which is exactly
  the lost-timer signature ``stale_deadlines`` exists to catch;
* the lineage ledger is reconciled against the live parked backlog — the
  conservation-drift probe — and *passes*: everything else above is
  degraded but accounted for.

Every probe reads virtual-clock state only, so both CLIs are byte-stable
and golden-tested (``obs-top --timings`` adds wall-clock phase means and
is therefore excluded from goldens).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.obs.instrument import Instrumentation
from repro.obs.probes import PHASES, GaugeProbes

#: topic the scripted core-broker publishes ride on
HEALTH_TOPIC = "health/metrics"
#: topic owned by (and subscribed across) the mesh shards
MESH_TOPIC = "health/mesh"
#: zone whose inbound block forces parking for the firewalled sink
ZONE = "health-ward"
#: virtual seconds between gauge sweeps
SAMPLE_INTERVAL = 10.0
#: sweeps in the scripted window
SAMPLE_COUNT = 6

#: gauge families the unbounded-growth probe applies to.  ``store.*`` is
#: excluded on purpose: an append-only event log *always* grows — flagging
#: it would teach operators to ignore the probe.
ANOMALY_GAUGE_PREFIXES = ("delivery.", "broker.", "mesh.pending")


@dataclass
class HealthRun:
    """Everything the health/top renderers need from one scripted run."""

    network: object
    instrumentation: Instrumentation
    probes: GaugeProbes
    broker: object
    cluster: object

    @property
    def brokers(self) -> list:
        """The core broker plus every mesh shard's broker."""
        return [self.broker] + [node.broker for node in self.cluster]


# --- anomaly probes ---------------------------------------------------------


def queue_growth_anomalies(probes: GaugeProbes) -> list[dict]:
    """Backlog gauges that rose on every retained sample (see prefix note)."""
    return [
        anomaly
        for anomaly in probes.growth_anomalies()
        if anomaly["gauge"].startswith(ANOMALY_GAUGE_PREFIXES)
    ]


def _parse_labels(key: str) -> dict[str, str]:
    brace = key.find("{")
    if brace < 0:
        return {}
    return dict(
        part.split("=", 1) for part in key[brace + 1 : -1].split(",") if "=" in part
    )


def breaker_flaps(
    instrumentation: Instrumentation, *, threshold: int = 3
) -> list[dict]:
    """Sinks whose breaker moved at least ``threshold`` times.

    A breaker that opens once and stays open is a dead consumer; one that
    cycles closed → open → half-open repeatedly is a *flapping* one — the
    consumer is intermittently alive, which retry storms make worse.
    """
    transitions = instrumentation.metrics.counter_values(
        "delivery.breaker_transitions"
    )
    per_sink: dict[str, dict[str, int]] = {}
    for key, count in transitions.items():
        labels = _parse_labels(key)
        sink = labels.get("sink", "?")
        state = labels.get("state", "?")
        by_state = per_sink.setdefault(sink, {})
        by_state[state] = by_state.get(state, 0) + count
    flapping = []
    for sink in sorted(per_sink):
        total = sum(per_sink[sink].values())
        if total >= threshold:
            flapping.append(
                {"sink": sink, "transitions": total, "by_state": per_sink[sink]}
            )
    return flapping


def stale_batch_timers(brokers: list) -> list[dict]:
    """Batch groups whose window deadline passed without a flush.

    Non-zero means a window timer was armed but the scheduler pump never
    reached it — held notifications will sit forever unless something
    pumps or flushes explicitly.  WSN producers batch through a
    :class:`~repro.delivery.batcher.DeliveryBatcher`; WSE sources hold
    wrapped-mode subscription queues with their own window deadlines.
    """
    findings = []
    for broker in brokers:
        for version, source in sorted(
            broker.wse_sources.items(), key=lambda kv: kv[0].name
        ):
            stale = source.stale_wrapped_deadlines()
            if stale:
                findings.append(
                    {
                        "broker": broker.address,
                        "family": f"wse/{version.name.lower()}",
                        "stale_groups": stale,
                        "held_entries": sum(
                            len(s.queue)
                            for s in source.store._subscriptions.values()
                        ),
                    }
                )
        for version, producer in sorted(
            broker.wsn_producers.items(), key=lambda kv: kv[0].name
        ):
            batcher = producer.batcher
            if batcher is None:
                continue
            stale = batcher.stale_deadlines()
            if stale:
                findings.append(
                    {
                        "broker": broker.address,
                        "family": f"wsn/{version.name.lower()}",
                        "stale_groups": stale,
                        "held_entries": batcher.pending(),
                    }
                )
    return findings


def conservation_drift(instrumentation: Instrumentation, brokers: list) -> dict:
    """Ledger-pending obligations vs the live parked backlog.

    At quiescence every pending obligation must be a parked message-box
    item (the audit's invariant); a non-zero drift means messages are in
    flight nowhere — lost by the pipeline without a closing ledger event.
    """
    totals = instrumentation.ledger.totals()
    live_parked = 0
    for broker in brokers:
        boxes = broker.message_boxes
        if boxes is not None:
            live_parked += sum(len(box) for box in boxes._boxes.values())
    return {
        "ledger_pending": totals.pending,
        "live_parked": live_parked,
        "drift": totals.pending - live_parked,
    }


# --- the scripted scenario --------------------------------------------------


def _event(n: int):
    from repro.xmlkit import parse_xml

    return parse_xml(
        f'<h:Beat xmlns:h="urn:obs-health"><h:n>{n}</h:n></h:Beat>'
    )


def run_health_scenario() -> HealthRun:
    """One scripted, deterministic minute of degraded broker traffic."""
    from repro.delivery import BatchingPolicy, DeliveryPolicy, drain_message_box_wse
    from repro.messenger.broker import WsMessenger
    from repro.mesh import MeshCluster
    from repro.obs.exporters import reset_cache_stats
    from repro.store.core import BrokerStore
    from repro.store.log import MemoryEventLog
    from repro.transport import MessageLost, SimulatedNetwork, VirtualClock
    from repro.wsa.headers import reset_message_counter
    from repro.wse.sink import EventSink
    from repro.wse.subscriber import WseSubscriber
    from repro.wsn.consumer import NotificationConsumer
    from repro.wsn.subscriber import WsnSubscriber

    reset_message_counter()
    reset_cache_stats()
    network = SimulatedNetwork(VirtualClock())
    instrumentation = Instrumentation.attach(network)
    instrumentation.enable_flight(capacity=128)
    instrumentation.enable_phase_timers()
    network.add_zone(ZONE, blocks_inbound=True)

    # -- the two-shard mesh: cross-shard traffic, then a rebalance ----------
    cluster = MeshCluster(network, shards=2, base_address="http://health-mesh")
    mesh_consumer = NotificationConsumer(network, "http://health-mesh-consumer")
    owner = cluster.owner_node_of_topic(MESH_TOPIC).name
    other = next(name for name in cluster.nodes if name != owner)
    cluster.subscribe_wsn(mesh_consumer.address, topic=MESH_TOPIC, home=other)
    cluster.publish(_event(101), topic=MESH_TOPIC)  # at the owner: local route
    cluster.publish(_event(102), topic=MESH_TOPIC, via=other)  # forwarded hop
    cluster.quiesce()
    cluster.join()  # a live rebalance: flight "rebalance" + mesh.moved_keys
    cluster.publish(_event(103), topic=MESH_TOPIC)
    cluster.quiesce()

    # -- the store-backed core broker and its consumer population ----------
    policy = DeliveryPolicy(
        max_attempts=8,
        base_backoff=2.0,
        jitter=0.0,
        breaker_failure_threshold=2,
        breaker_reset_after=5.0,
    )
    broker = WsMessenger(
        network,
        "http://health-broker",
        store=BrokerStore(MemoryEventLog()),
        delivery=policy,
        batching=BatchingPolicy(window=2.0, max_batch=10),
    )
    wsn = WsnSubscriber(network)
    steady = NotificationConsumer(network, "http://health-steady")
    wsn.subscribe(broker.epr(), steady.epr(), topic=HEALTH_TOPIC)
    dozing = NotificationConsumer(network, "http://health-paused")
    wsn.pause(wsn.subscribe(broker.epr(), dozing.epr(), topic=HEALTH_TOPIC))
    warded = EventSink(network, "http://health-warded", zone=ZONE)
    WseSubscriber(network, zone=ZONE).subscribe(
        broker.epr(), notify_to=warded.epr()
    )
    flaky = NotificationConsumer(network, "http://health-flaky")
    wsn.subscribe(broker.epr(), flaky.epr(), topic=HEALTH_TOPIC)
    drops = {"remaining": 5}

    def _drop_flaky_pushes(address: str, request: bytes) -> None:
        if address == flaky.address and drops["remaining"] > 0:
            drops["remaining"] -= 1
            raise MessageLost(address)

    network.observers.append(_drop_flaky_pushes)

    # -- the sampled window: publishes and sweeps interleaved on one clock --
    probes = GaugeProbes(instrumentation)
    probes.watch_broker(broker, site="core")
    probes.watch_cluster(cluster)
    scheduler = broker.delivery_manager.scheduler
    base = network.clock.now()
    tick = 0
    for i in range(1, SAMPLE_COUNT + 1):
        for _ in range(2 if i == 3 else 1):  # tick 3 doubles up: a real batch
            tick += 1
            scheduler.call_at(
                base + i * SAMPLE_INTERVAL - 5.0,
                lambda n=tick: broker.publish(_event(n), topic=HEALTH_TOPIC),
            )
    probes.schedule(scheduler, interval=SAMPLE_INTERVAL, count=SAMPLE_COUNT)
    broker.run_deliveries_until_idle()

    # the window is over: the warded sink finally drains its parked box by
    # pull (so the conservation books balance at report time)
    box = broker.message_boxes.get(warded.address)
    if box is not None and len(box):
        drain_message_box_wse(network, box.epr(), zone=ZONE)

    # one last publish whose batch window deadline is never pumped: the
    # stale-batch-timer anomaly, manufactured deliberately
    broker.publish(_event(tick + 1), topic=HEALTH_TOPIC)
    network.clock.advance(3.0)

    return HealthRun(
        network=network,
        instrumentation=instrumentation,
        probes=probes,
        broker=broker,
        cluster=cluster,
    )


# --- reporting --------------------------------------------------------------


def build_health_report(run: HealthRun) -> dict:
    """The deterministic health document (anomalies + evidence)."""
    instrumentation = run.instrumentation
    growth = queue_growth_anomalies(run.probes)
    flaps = breaker_flaps(instrumentation)
    stale = stale_batch_timers(run.brokers)
    drift = conservation_drift(instrumentation, run.brokers)
    anomalies = len(growth) + len(flaps) + len(stale) + (1 if drift["drift"] else 0)
    flight = instrumentation.flight
    phases = instrumentation.phases
    return {
        "clock": round(instrumentation.clock.now(), 9),
        "samples": run.probes.samples,
        "gauge_series": len(run.probes.history),
        "anomalies": anomalies,
        "queue_growth": growth,
        "breaker_flaps": flaps,
        "stale_batches": stale,
        "conservation": drift,
        "gauges": run.probes.last_values(),
        "phases": phases.snapshot(include_wall=False) if phases else {},
        "flight": {
            "recorded": flight.snapshot()["recorded"],
            "dropped": flight.snapshot().get("dropped", 0),
            "by_kind": flight.by_kind() if flight.enabled else {},
        },
    }


def render_health_text(run: HealthRun) -> str:
    report = build_health_report(run)
    title = "repro.obs health — store-backed broker + 2-shard mesh, one scripted minute"
    lines = [title, "=" * len(title), ""]
    lines.append(
        f"virtual clock {report['clock']:.4f}s | {report['samples']} gauge sweeps"
        f" over {report['gauge_series']} series"
        f" | flight: {report['flight']['recorded']} records"
        f" ({report['flight']['dropped']} dropped)"
        f" | anomalies: {report['anomalies']}"
    )
    lines.append("")

    lines.append("Queue growth (monotonic across the sampled window)")
    lines.append("--------------------------------------------------")
    for anomaly in report["queue_growth"]:
        lines.append(
            f"  ANOMALY {anomaly['gauge']}: {anomaly['first']:g} ->"
            f" {anomaly['last']:g} over {anomaly['samples']} samples,"
            " never draining"
        )
    if not report["queue_growth"]:
        lines.append("  every backlog drained at least once (ok)")
    lines.append("")

    lines.append("Breaker health")
    lines.append("--------------")
    for flap in report["breaker_flaps"]:
        states = ", ".join(
            f"{state}={count}" for state, count in sorted(flap["by_state"].items())
        )
        lines.append(
            f"  ANOMALY {flap['sink']}: {flap['transitions']} transitions"
            f" ({states}) — flapping"
        )
    if not report["breaker_flaps"]:
        lines.append("  no breaker moved more than twice (ok)")
    lines.append("")

    lines.append("Batch timers")
    lines.append("------------")
    for finding in report["stale_batches"]:
        lines.append(
            f"  ANOMALY {finding['broker']} [{finding['family']}]:"
            f" {finding['stale_groups']} group(s) past their window deadline,"
            f" {finding['held_entries']} notification(s) held"
        )
    if not report["stale_batches"]:
        lines.append("  every armed window flushed (ok)")
    lines.append("")

    drift = report["conservation"]
    lines.append("Conservation")
    lines.append("------------")
    verdict = "ok" if drift["drift"] == 0 else "ANOMALY — messages unaccounted for"
    lines.append(
        f"  ledger pending={drift['ledger_pending']}"
        f" live parked={drift['live_parked']}"
        f" drift={drift['drift']} ({verdict})"
    )
    lines.append("")

    if report["phases"]:
        counts = report["phases"]["counts"]
        lines.append("Phase counts")
        lines.append("------------")
        lines.append(
            "  " + " -> ".join(f"{phase}={counts[phase]}" for phase in PHASES)
        )
        lines.append("")

    lines.append("Gauges (last sample)")
    lines.append("--------------------")
    for key, value in report["gauges"].items():
        lines.append(f"  {key:<60s} {value:g}")
    return "\n".join(lines)


def render_top_text(run: HealthRun, *, timings: bool = False) -> str:
    """The ``obs-top`` snapshot: flight tail + live backlog at a glance."""
    instrumentation = run.instrumentation
    flight = instrumentation.flight
    snapshot = flight.snapshot()
    title = "repro.obs top — live snapshot"
    lines = [title, "=" * len(title), ""]
    lines.append(
        f"virtual clock {instrumentation.clock.now():.4f}s"
        f" | flight ring {len(flight)}/{flight.capacity}"
        f" ({snapshot['recorded']} recorded, {snapshot.get('dropped', 0)} dropped)"
    )
    by_kind = snapshot.get("by_kind", {})
    if by_kind:
        lines.append(
            "kinds: " + ", ".join(f"{k}={v}" for k, v in by_kind.items())
        )
    phases = instrumentation.phases
    if phases is not None:
        counts = phases.snapshot(include_wall=timings)
        lines.append(
            "phases: "
            + " -> ".join(f"{phase}={counts['counts'][phase]}" for phase in PHASES)
        )
        if timings:
            lines.append(
                "phase mean us: "
                + ", ".join(
                    f"{phase}={counts['mean_us'][phase]}" for phase in PHASES
                )
            )
    lines.append("")

    lines.append("Backlogs (last sample)")
    lines.append("----------------------")
    for key, value in run.probes.last_values().items():
        if value:
            lines.append(f"  {key:<60s} {value:g}")
    lines.append("")

    lines.append("Flight tail")
    lines.append("-----------")
    for record in flight.tail(20):
        lines.append(f"  {record.render()}")
    return "\n".join(lines)


def obs_health_main(argv: "list[str] | None" = None) -> int:
    """CLI: run the scripted scenario and print the health report.

    ``--json`` prints the report document instead of the text rendering.
    Always exits 0: the scripted anomalies are the demonstration, not a
    failure of this process.
    """
    import json

    argv = list(argv or [])
    run = run_health_scenario()
    try:
        if "--json" in argv:
            print(json.dumps(build_health_report(run), indent=2, sort_keys=True))
        else:
            print(render_health_text(run))
    except BrokenPipeError:
        pass
    return 0


def obs_top_main(argv: "list[str] | None" = None) -> int:
    """CLI: run the scripted scenario and print the ``top``-style snapshot
    (``--timings`` adds wall-clock phase means — excluded from goldens)."""
    argv = list(argv or [])
    run = run_health_scenario()
    try:
        print(render_top_text(run, timings="--timings" in argv))
    except BrokenPipeError:
        pass
    return 0
