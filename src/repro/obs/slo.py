"""Delivery-latency SLOs: fixed-bucket histograms and deterministic percentiles.

Latency here is *publish-to-delivery* on the virtual clock: the gap between
a lineage's ``published`` event and each obligation's ``delivered`` event,
as recorded by :meth:`Instrumentation.lineage_delivered`.  One histogram
series per (family, hops) pair::

    slo.delivery_latency_seconds{family=wsn,hops=2}

Buckets span the simulation's dynamic range — single wire hops are a few
virtual milliseconds, retry backoff stretches into tens of virtual seconds —
and are identical across series, so per-family and per-hop summaries merge
bucket counts directly.

Percentiles are computed from bucket counts the same way Prometheus'
``histogram_quantile`` conservatively could: the **smallest bucket upper
bound** whose cumulative count reaches ``ceil(q * count)``.  With a fixed
virtual clock that makes every reported percentile bit-for-bit reproducible
— no interpolation, no float accumulation order dependence.
"""

from __future__ import annotations

from math import ceil
from typing import Optional

from repro.obs.metrics import Histogram, MetricsRegistry

#: metric name every delivery-latency observation lands under
DELIVERY_LATENCY_METRIC = "slo.delivery_latency_seconds"

#: upper bounds in virtual seconds (+Inf implied): ms-scale hops through
#: backoff-scale retries
SLO_BUCKETS: tuple[float, ...] = (
    0.005,
    0.01,
    0.02,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.0,
    5.0,
    10.0,
    30.0,
    60.0,
)

#: quantiles every summary reports
SLO_QUANTILES: tuple[tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p95", 0.95),
    ("p99", 0.99),
)


def observe_delivery_latency(
    metrics: MetricsRegistry, latency: float, *, family: str, hops: int
) -> None:
    """Record one publish-to-delivery latency under its (family, hops) series."""
    metrics.histogram(
        DELIVERY_LATENCY_METRIC,
        buckets=SLO_BUCKETS,
        family=family,
        hops=str(hops),
    ).observe(latency)


def bucket_percentile(
    buckets: tuple[float, ...], counts: list[int], q: float, maximum: Optional[float]
) -> Optional[float]:
    """The smallest bucket upper bound covering quantile ``q``.

    ``counts`` has one extra trailing slot for +Inf, whose representative
    value is the observed ``maximum``.  ``None`` when the series is empty.
    """
    total = sum(counts)
    if total == 0:
        return None
    rank = max(1, ceil(q * total))
    cumulative = 0
    for bound, count in zip(buckets, counts):
        cumulative += count
        if cumulative >= rank:
            return bound
    return maximum


def _latency_series(metrics: MetricsRegistry) -> list[tuple[str, int, Histogram]]:
    """Every (family, hops, histogram) recorded under the latency metric."""
    return [
        (labels["family"], int(labels["hops"]), histogram)
        for labels, histogram in metrics.histogram_series(DELIVERY_LATENCY_METRIC)
    ]


def _merged_summary(group: list[Histogram]) -> dict:
    counts = [0] * (len(SLO_BUCKETS) + 1)
    maximum: Optional[float] = None
    total_sum = 0.0
    for histogram in group:
        for i, n in enumerate(histogram.counts):
            counts[i] += n
        if histogram.maximum is not None:
            maximum = (
                histogram.maximum
                if maximum is None
                else max(maximum, histogram.maximum)
            )
        total_sum += histogram.total
    count = sum(counts)
    summary = {
        "count": count,
        "sum": round(total_sum, 9),
    }
    for label, q in SLO_QUANTILES:
        value = bucket_percentile(SLO_BUCKETS, counts, q, maximum)
        summary[label] = round(value, 9) if value is not None else None
    return summary


def slo_summary(metrics: MetricsRegistry) -> dict:
    """Per-family and per-hop percentile summaries of delivery latency.

    Returns ``{}`` when nothing was observed, so reports can omit the
    section entirely on scenarios without deliveries.
    """
    series = _latency_series(metrics)
    if not series:
        return {}
    by_family: dict[str, list[Histogram]] = {}
    by_hops: dict[int, list[Histogram]] = {}
    for family, hops, histogram in series:
        by_family.setdefault(family, []).append(histogram)
        by_hops.setdefault(hops, []).append(histogram)
    return {
        "per_family": {
            family: _merged_summary(group)
            for family, group in sorted(by_family.items())
        },
        "per_hops": {
            str(hops): _merged_summary(group)
            for hops, group in sorted(by_hops.items())
        },
    }
