"""Message lineage: a ledger of every notification's life, keyed by lineage id.

Spans (:mod:`repro.obs.tracing`) answer *where time went*; the ledger
answers *where the messages went*.  Every state transition a notification
makes on its way from publish to a terminal state is recorded as an event
under its lineage id::

    published → mediated → enqueued → attempted(n) → delivered
                                                   | dead_lettered
                                                   | failed
                                                   | shed
                                                   | pending_pull → delivered(via=pull)

Accounting is in units of **delivery obligations** — one per (lineage,
sink) pair the fan-out decides to serve.  ``enqueued`` (or a DLQ
``replayed``) opens an obligation; ``delivered``, ``dead_lettered``,
``failed`` and ``shed`` close one; ``pending_pull`` marks one as parked
behind a firewall awaiting a pull drain.  ``shed`` is the adaptive-QoS
terminal state: the broker *chose* to drop the message (bounded-queue
overflow, message-box overflow) — an accounted decision, not a silent
loss.  The conservation auditor (:mod:`repro.obs.audit`) checks that
these books balance.

``queued`` and ``mediated`` are informational (no obligation): ``mediated``
marks a broker translating the message between spec families, ``queued``
marks payloads buffered inside a pull/wrapped-mode subscription queue that
does not carry per-item lineage.
"""

from __future__ import annotations

from dataclasses import dataclass

#: states that open a delivery obligation for (lineage, sink)
OPENING_STATES = frozenset({"enqueued", "replayed"})
#: terminal states that close an obligation (``shed`` = the broker's own
#: QoS decision to drop, distinct from give-up-after-retries dead-letters)
CLOSING_STATES = frozenset({"delivered", "dead_lettered", "failed", "shed"})

#: every state the ledger accepts (guards against typo'd call sites)
KNOWN_STATES = frozenset(
    {
        "published",
        "mediated",
        "queued",
        "attempted",
        "pending_pull",
    }
    | OPENING_STATES
    | CLOSING_STATES
)


class LineageEvent:
    """One state transition, stamped on the virtual clock.

    A ``__slots__`` record: several events are appended per notification
    (enqueued / attempted / delivered, per sink), so construction cost is
    part of the instrumented hot path.
    """

    __slots__ = ("at", "state", "detail")

    def __init__(self, at: float, state: str, detail: dict) -> None:
        self.at = at
        self.state = state
        self.detail = detail

    def __repr__(self) -> str:
        return f"LineageEvent(at={self.at!r}, state={self.state!r}, detail={self.detail!r})"

    def to_dict(self) -> dict:
        record = {"at": round(self.at, 9), "state": self.state}
        record.update({k: self.detail[k] for k in sorted(self.detail)})
        return record


@dataclass
class LineageAccount:
    """The obligation books of one lineage, derived from its events."""

    opened: int = 0
    delivered: int = 0
    dead_lettered: int = 0
    failed: int = 0
    shed: int = 0
    parked: int = 0
    pulled: int = 0
    attempts: int = 0

    @property
    def closed(self) -> int:
        return self.delivered + self.dead_lettered + self.failed + self.shed

    @property
    def pending(self) -> int:
        """Obligations opened but not yet closed (queued, parked or retrying)."""
        return self.opened - self.closed

    @property
    def parked_outstanding(self) -> int:
        """Parked obligations not yet drained by pull."""
        return self.parked - self.pulled

    def to_dict(self) -> dict:
        return {
            "opened": self.opened,
            "delivered": self.delivered,
            "dead_lettered": self.dead_lettered,
            "failed": self.failed,
            "shed": self.shed,
            "pending": self.pending,
            "parked_outstanding": self.parked_outstanding,
            "attempts": self.attempts,
        }


class LineageLedger:
    """Append-only event log per lineage id, on the virtual clock."""

    def __init__(self, clock) -> None:
        self._clock = clock
        self._now = clock.now  # pre-bound: read once per recorded event
        self.events: dict[str, list[LineageEvent]] = {}
        # publish-time index: read once per delivered obligation for the
        # latency SLO, so keep it O(1) instead of scanning the event list
        self._published_at: dict[str, float] = {}

    def record(self, lineage_id: str, state: str, **detail) -> None:
        if state not in KNOWN_STATES:
            raise ValueError(f"unknown lineage state: {state!r}")
        event = LineageEvent(self._now(), state, detail)
        events = self.events.get(lineage_id)
        if events is None:
            events = self.events[lineage_id] = []
        events.append(event)
        if state == "published" and lineage_id not in self._published_at:
            self._published_at[lineage_id] = event.at

    def lineages(self) -> list[str]:
        return sorted(self.events)

    def events_of(self, lineage_id: str) -> list[LineageEvent]:
        return list(self.events.get(lineage_id, ()))

    def published_at(self, lineage_id: str) -> float | None:
        return self._published_at.get(lineage_id)

    def account_of(self, lineage_id: str) -> LineageAccount:
        account = LineageAccount()
        for event in self.events.get(lineage_id, ()):
            if event.state in OPENING_STATES:
                account.opened += 1
            elif event.state == "delivered":
                account.delivered += 1
                if event.detail.get("via") == "pull":
                    account.pulled += 1
            elif event.state == "dead_lettered":
                account.dead_lettered += 1
            elif event.state == "failed":
                account.failed += 1
            elif event.state == "shed":
                account.shed += 1
            elif event.state == "pending_pull":
                account.parked += 1
            elif event.state == "attempted":
                account.attempts += 1
        return account

    def totals(self) -> LineageAccount:
        total = LineageAccount()
        for lineage_id in self.events:
            account = self.account_of(lineage_id)
            total.opened += account.opened
            total.delivered += account.delivered
            total.dead_lettered += account.dead_lettered
            total.failed += account.failed
            total.shed += account.shed
            total.parked += account.parked
            total.pulled += account.pulled
            total.attempts += account.attempts
        return total

    def snapshot(self) -> dict:
        """Deterministic dict: per-lineage event lists + accounting."""
        return {
            lineage_id: {
                "events": [e.to_dict() for e in events],
                "account": self.account_of(lineage_id).to_dict(),
            }
            for lineage_id, events in sorted(self.events.items())
        }

    def reset(self) -> None:
        self.events = {}
        self._published_at = {}

    def __len__(self) -> int:
        return len(self.events)
