"""Wire-level trace propagation: the lineage header.

In-process tracing (:mod:`repro.obs.tracing`) connects spans through a
synchronous call stack, which breaks at every point where a message's life
continues *outside* the stack that produced it: a retry fired later by the
delivery scheduler, a message parked in a broker-side box and drained by
pull, or simply the logical process boundary between two endpoints.  This
module carries the causal chain across those gaps the way W3C Trace Context
carries it across HTTP services: as a header on the message itself.

The context rides as a WS-Addressing-style extension header block::

    <lin:Lineage xmlns:lin="http://repro.invalid/obs/lineage">
      01-lin-00000007-0000002a-02
    </lin:Lineage>

``01`` is the format version, then the lineage id (one per published
notification, minted at the root publish), the parent span id (hex), and the
hop count (hex) — the number of wire hops the message has crossed when the
receiver sees it.  Injection happens in :class:`~repro.transport.endpoint.
SoapClient` just before serialization (instrumented runs only, so
uninstrumented wire bytes are untouched); extraction happens in
:class:`~repro.transport.endpoint.SoapEndpoint` before dispatch.  A missing
or malformed header never faults a message: extraction degrades to ``None``
and the dispatch starts a fresh root span, exactly as before this module
existed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.soap.envelope import SoapEnvelope
from repro.xmlkit.names import QName

#: namespace + qualified name of the lineage extension header block
LINEAGE_NS = "http://repro.invalid/obs/lineage"
LINEAGE_HEADER = QName(LINEAGE_NS, "Lineage")

#: wire-format version field (bump on any encoding change)
FORMAT_VERSION = "01"


@dataclass(frozen=True)
class LineageContext:
    """One message's position in its trace: lineage, parent span, hop.

    ``hop`` counts wire hops crossed since the root publish.  A context held
    by the *sender* (a continuation context, e.g. stored on a queued delivery
    task) carries the sender's own hop; :meth:`step` derives the receiver's
    context, one hop further.
    """

    lineage_id: str
    parent_span: int
    hop: int

    def step(self) -> "LineageContext":
        """The context as seen one wire hop downstream."""
        return replace(self, hop=self.hop + 1)

    def encode(self) -> str:
        # fields are fixed-width on the wire; saturate rather than overflow
        parent = min(self.parent_span, 0xFFFFFFFF)
        hop = min(self.hop, 0xFF)
        return f"{FORMAT_VERSION}-{self.lineage_id}-{parent:08x}-{hop:02x}"

    @classmethod
    def decode(cls, text: str) -> Optional["LineageContext"]:
        """Parse the header text; ``None`` on anything malformed."""
        parts = text.strip().rsplit("-", 2)
        if len(parts) != 3:
            return None
        head, parent_hex, hop_hex = parts
        version, sep, lineage_id = head.partition("-")
        if not sep or version != FORMAT_VERSION or not lineage_id:
            return None
        # fixed-width fields: a short tail would otherwise mis-split a
        # truncated header into a plausible-looking context
        if len(parent_hex) != 8 or len(hop_hex) != 2:
            return None
        try:
            parent_span = int(parent_hex, 16)
            hop = int(hop_hex, 16)
        except ValueError:
            return None
        if parent_span < 0 or hop < 0:
            return None
        return cls(lineage_id=lineage_id, parent_span=parent_span, hop=hop)


def inject(envelope: SoapEnvelope, context: LineageContext) -> SoapEnvelope:
    """Stamp the sender's context onto an outgoing envelope (stepped one
    hop, so the receiver reads its own position).  Replaces any stale
    lineage header already present (e.g. a re-sent envelope)."""
    from repro.xmlkit.element import text_element

    envelope.remove_headers(LINEAGE_HEADER)
    envelope.add_header(text_element(LINEAGE_HEADER, context.step().encode()))
    return envelope


def extract(envelope: SoapEnvelope) -> Optional[LineageContext]:
    """Recover the lineage context; ``None`` when absent or malformed."""
    try:
        text = envelope.header_text(LINEAGE_HEADER)
    except Exception:
        return None
    if not text:
        return None
    return LineageContext.decode(text)
