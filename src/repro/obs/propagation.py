"""Wire-level trace propagation: the lineage header.

In-process tracing (:mod:`repro.obs.tracing`) connects spans through a
synchronous call stack, which breaks at every point where a message's life
continues *outside* the stack that produced it: a retry fired later by the
delivery scheduler, a message parked in a broker-side box and drained by
pull, or simply the logical process boundary between two endpoints.  This
module carries the causal chain across those gaps the way W3C Trace Context
carries it across HTTP services: as a header on the message itself.

The context rides the HTTP binding as a request header — exactly where
W3C ``traceparent`` lives::

    X-Lineage: 01-lin-00000007-0000002a-02

``01`` is the format version, then the lineage id (one per published
notification, minted at the root publish), the parent span id (hex), and the
hop count (hex) — the number of wire hops the message has crossed when the
receiver sees it.  Injection happens in :class:`~repro.transport.endpoint.
SoapClient` at request framing (instrumented runs only, so the SOAP
envelope bytes are *identical* with and without instrumentation — the
observability fast path never pays an extra XML element through the
serializer and parser); extraction happens in :class:`~repro.transport.
endpoint.SoapEndpoint` as a dict probe on the parsed request head.  A
missing or malformed header never faults a message: extraction degrades to
``None`` and the dispatch starts a fresh root span, exactly as before this
module existed.

The envelope-level form (:func:`inject` / :func:`extract`, a
``lin:Lineage`` SOAP header block) is kept for transports that cannot
carry HTTP headers (stored envelopes, alternative bindings): extraction
falls back to it when the HTTP header is absent.
"""

from __future__ import annotations

from typing import Optional

from repro.soap.envelope import SoapEnvelope
from repro.xmlkit.names import QName

#: namespace + qualified name of the lineage extension header block
LINEAGE_NS = "http://repro.invalid/obs/lineage"
LINEAGE_HEADER = QName(LINEAGE_NS, "Lineage")

#: wire-format version field (bump on any encoding change)
FORMAT_VERSION = "01"


class LineageContext:
    """One message's position in its trace: lineage, parent span, hop.

    ``hop`` counts wire hops crossed since the root publish.  A context held
    by the *sender* (a continuation context, e.g. stored on a queued delivery
    task) carries the sender's own hop; :meth:`step` derives the receiver's
    context, one hop further.

    A plain ``__slots__`` class rather than a dataclass: one is built per
    traced send and per queued delivery task, so construction cost shows up
    in the instrumentation-overhead benchmark.  Value semantics (eq/hash)
    are kept — contexts are still treated as immutable records.
    """

    __slots__ = ("lineage_id", "parent_span", "hop", "_wire_text")

    def __init__(self, lineage_id: str, parent_span: int, hop: int) -> None:
        self.lineage_id = lineage_id
        self.parent_span = parent_span
        self.hop = hop
        #: memoized stepped wire form (a context is immutable, and batched
        #: fan-out injects the same context into many outgoing requests)
        self._wire_text: Optional[str] = None

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, LineageContext)
            and self.lineage_id == other.lineage_id
            and self.parent_span == other.parent_span
            and self.hop == other.hop
        )

    def __hash__(self) -> int:
        return hash((self.lineage_id, self.parent_span, self.hop))

    def __repr__(self) -> str:
        return (
            f"LineageContext(lineage_id={self.lineage_id!r}, "
            f"parent_span={self.parent_span}, hop={self.hop})"
        )

    def step(self) -> "LineageContext":
        """The context as seen one wire hop downstream."""
        return LineageContext(self.lineage_id, self.parent_span, self.hop + 1)

    def wire_text(self) -> str:
        """``step().encode()`` without the intermediate context, memoized."""
        text = self._wire_text
        if text is None:
            parent = min(self.parent_span, 0xFFFFFFFF)
            hop = min(self.hop + 1, 0xFF)
            text = self._wire_text = (
                f"{FORMAT_VERSION}-{self.lineage_id}-{parent:08x}-{hop:02x}"
            )
        return text

    def encode(self) -> str:
        # fields are fixed-width on the wire; saturate rather than overflow
        parent = min(self.parent_span, 0xFFFFFFFF)
        hop = min(self.hop, 0xFF)
        return f"{FORMAT_VERSION}-{self.lineage_id}-{parent:08x}-{hop:02x}"

    @classmethod
    def decode(cls, text: str) -> Optional["LineageContext"]:
        """Parse the header text; ``None`` on anything malformed."""
        parts = text.strip().rsplit("-", 2)
        if len(parts) != 3:
            return None
        head, parent_hex, hop_hex = parts
        version, sep, lineage_id = head.partition("-")
        if not sep or version != FORMAT_VERSION or not lineage_id:
            return None
        # fixed-width fields: a short tail would otherwise mis-split a
        # truncated header into a plausible-looking context
        if len(parent_hex) != 8 or len(hop_hex) != 2:
            return None
        try:
            parent_span = int(parent_hex, 16)
            hop = int(hop_hex, 16)
        except ValueError:
            return None
        if parent_span < 0 or hop < 0:
            return None
        return cls(lineage_id=lineage_id, parent_span=parent_span, hop=hop)


def inject(envelope: SoapEnvelope, context: LineageContext) -> SoapEnvelope:
    """Stamp the sender's context onto an outgoing envelope (stepped one
    hop, so the receiver reads its own position).  Replaces any stale
    lineage header already present (e.g. a re-sent envelope)."""
    from repro.xmlkit.element import text_element

    envelope.remove_headers(LINEAGE_HEADER)
    envelope.add_header(text_element(LINEAGE_HEADER, context.wire_text()))
    return envelope


def extract(envelope: SoapEnvelope) -> Optional[LineageContext]:
    """Recover the lineage context; ``None`` when absent or malformed.

    Open-coded header scan: this runs on every instrumented dispatch, and
    the generic ``envelope.header_text`` path (``name`` property per block,
    dataclass ``QName.__eq__``, a parts-list ``full_text``) measured ~4x
    the cost of comparing the two name strings directly.  The ``local``
    comparison runs first — it rejects every other header on a one-length
    string check without ever touching the namespace URI.
    """
    for block in envelope.headers:
        name = block.content.name
        if name.local == "Lineage" and name.namespace == LINEAGE_NS:
            children = block.content.children
            if len(children) == 1 and type(children[0]) is str:
                text = children[0]
            else:  # mixed/nested content: fall back to the string-value
                text = block.content.full_text()
            return LineageContext.decode(text)
    return None
