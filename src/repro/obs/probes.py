"""Backlog probes: gauges sampled on the virtual clock, plus phase timers.

Counters say how much work *happened*; the health of a running broker lives
in how much work is *waiting*.  A :class:`GaugeProbes` holds a catalogue of
backlog sources — callables returning a depth, lag or age — and every
:meth:`~GaugeProbes.sample` sweep reads them all, publishes each value as a
gauge and keeps a short bounded history per series, which is what the
``obs-health`` anomaly probes (queue growth) and the benchmark gauge series
are computed from.

The standard catalogue (see the ``watch_*`` registrars) covers every
backlog in the system:

* delivery: per-sink retry queues, DLQ depth, parked message boxes,
  batcher pending sets, open breakers, scheduled retry wake-ups, and the
  age of the oldest queued task (lag);
* broker internals: WSN paused-subscription queues and WSE pull-mode
  queues (messages buffered awaiting resume/drain);
* mesh: federation links per node and tracked-key ownership per node;
* store: event-log length and settled/parked projection sizes.

Sampling runs on the :class:`~repro.transport.clock.ClockScheduler`, so
sample times are virtual, deterministic and golden-testable — no
wall-clock ever leaks into a sample (asserted by tests).

:class:`PhaseTimers` is the opposite kind of probe: optional wall-clock
(``perf_counter_ns``) totals over the four hot-path phases
``publish → route → serialize → deliver``.  Deterministic *counts* may
appear in reports; wall-time means are only rendered behind explicit
flags (benchmark artifacts, ``obs-top --timings``) so golden outputs stay
byte-stable.
"""

from __future__ import annotations

from collections import deque
from time import perf_counter_ns
from typing import Callable, Optional

from repro.obs.metrics import metric_key

#: the hot-path phases a broker publish traverses, in pipeline order
PHASES: tuple[str, ...] = ("publish", "route", "serialize", "deliver")


class PhaseTimers:
    """Wall-clock totals per hot-path phase (opt-in, see module docstring).

    Call sites pair ``t0 = timers.begin()`` with ``timers.end(phase, t0)``;
    a ``None`` timers handle (the default) costs one attribute load and an
    ``is not None`` branch.
    """

    __slots__ = ("counts", "totals_ns")

    def __init__(self) -> None:
        self.counts: dict[str, int] = {phase: 0 for phase in PHASES}
        self.totals_ns: dict[str, int] = {phase: 0 for phase in PHASES}

    def begin(self) -> int:
        return perf_counter_ns()

    def end(self, phase: str, started_ns: int) -> None:
        self.counts[phase] += 1
        self.totals_ns[phase] += perf_counter_ns() - started_ns

    def mean_us(self, phase: str) -> float:
        count = self.counts[phase]
        return (self.totals_ns[phase] / count / 1000.0) if count else 0.0

    def snapshot(self, *, include_wall: bool = False) -> dict:
        """Deterministic counts; wall-time means only when asked for."""
        out: dict = {"counts": {phase: self.counts[phase] for phase in PHASES}}
        if include_wall:
            out["mean_us"] = {
                phase: round(self.mean_us(phase), 3) for phase in PHASES
            }
        return out

    def reset(self) -> None:
        for phase in PHASES:
            self.counts[phase] = 0
            self.totals_ns[phase] = 0


class GaugeProbes:
    """A catalogue of backlog sources, swept into gauges on demand."""

    def __init__(self, instrumentation, *, history: int = 32) -> None:
        self.instrumentation = instrumentation
        self.history_limit = history
        #: (gauge name, labels, source) in registration order
        self._sources: list[tuple[str, dict[str, str], Callable[[], float]]] = []
        #: bounded per-series history of (virtual time, value) pairs
        self.history: dict[str, deque] = {}
        self.samples = 0

    # --- catalogue ---------------------------------------------------------

    def add_source(
        self, name: str, source: Callable[[], float], **labels: str
    ) -> None:
        """Register one backlog source; swept by every :meth:`sample`."""
        self._sources.append((name, labels, source))

    def watch_delivery_manager(self, manager, **labels: str) -> None:
        """Retry queues, DLQ, breakers, wake-ups and queue age of one
        :class:`~repro.delivery.manager.DeliveryManager`."""
        clock = manager.clock
        self.add_source("delivery.pending", manager.pending, **labels)
        self.add_source("delivery.dlq_depth", lambda: len(manager.dlq), **labels)
        self.add_source(
            "delivery.breakers_open",
            lambda: len(manager.open_breakers()),
            **labels,
        )
        self.add_source(
            "delivery.retry_wakeups", lambda: len(manager._wakeups), **labels
        )

        def oldest_age() -> float:
            oldest: Optional[float] = None
            for queue in manager._queues.values():
                for task in queue:
                    if oldest is None or task.enqueued_at < oldest:
                        oldest = task.enqueued_at
            return 0.0 if oldest is None else clock.now() - oldest

        self.add_source("delivery.oldest_queued_age_seconds", oldest_age, **labels)
        boxes = manager.message_boxes
        if boxes is not None:
            self.add_source(
                "delivery.parked_pending",
                lambda: sum(len(box) for box in boxes._boxes.values()),
                **labels,
            )

    def watch_qos(self, manager, **labels: str) -> None:
        """Adaptive-QoS counters of one delivery manager: messages shed by
        the bounded queues and attempts held back by the token buckets, plus
        the controller's rejected-profile count when one is attached."""
        stats = manager.stats
        self.add_source("qos.shed_messages", lambda: stats.shed, **labels)
        self.add_source("qos.throttled_attempts", lambda: stats.throttled, **labels)
        controller = manager.qos
        if controller is not None:
            self.add_source(
                "qos.profile_rejections",
                lambda: controller.profile_rejections,
                **labels,
            )

    def watch_batcher(self, batcher, *, family: str, **labels: str) -> None:
        self.add_source("delivery.batch_pending", batcher.pending, family=family, **labels)

    def watch_broker(self, broker, **labels: str) -> None:
        """Everything one :class:`~repro.messenger.WsMessenger` queues."""
        if broker.delivery_manager is not None:
            self.watch_delivery_manager(broker.delivery_manager, **labels)
            if broker.delivery_manager.qos is not None:
                self.watch_qos(broker.delivery_manager, **labels)
        # WSE sources batch via wrapped-mode subscription queues, which the
        # broker.sub_queue_depth{family=wse} source below already covers;
        # only WSN producers own a DeliveryBatcher
        for version, producer in sorted(
            broker.wsn_producers.items(), key=lambda kv: kv[0].name
        ):
            if producer.batcher is not None:
                self.watch_batcher(
                    producer.batcher,
                    family="wsn",
                    tag=version.name.lower(),
                    **labels,
                )

        def wse_queued() -> int:
            return sum(
                len(subscription.queue)
                for source in broker.wse_sources.values()
                for subscription in source.store._subscriptions.values()
            )

        def wsn_queued() -> int:
            return sum(
                len(subscription.paused_queue)
                for producer in broker.wsn_producers.values()
                for subscription in producer._subscriptions.values()
            )

        self.add_source("broker.sub_queue_depth", wse_queued, family="wse", **labels)
        self.add_source("broker.sub_queue_depth", wsn_queued, family="wsn", **labels)
        if broker.store is not None:
            self.watch_store(broker.store, **labels)

    def watch_store(self, store, **labels: str) -> None:
        """Event-log length and projection sizes of one broker store."""
        self.add_source("store.log_records", lambda: len(store.log), **labels)
        self.add_source(
            "store.settled_outcomes", lambda: len(store._settled), **labels
        )
        self.add_source(
            "store.parked_open", lambda: len(store._parked), **labels
        )

    def watch_node(self, node) -> None:
        """Federation link count of one mesh node (labelled by node name)."""
        self.add_source(
            "mesh.links_active",
            lambda: len(node.links.links()),
            node=node.name,
        )

    def watch_cluster(self, cluster) -> None:
        """Per-node ownership counts + link traffic of a whole mesh."""
        for node in cluster:
            self.watch_node(node)

            def owned(node=node) -> int:
                current = cluster.registry.current
                return sum(
                    1
                    for key in sorted(cluster.tracked_keys())
                    if current.owner(key) == node.name
                )

            self.add_source("mesh.owned_keys", owned, node=node.name)

            def pending(node=node) -> int:
                return node.pending_deliveries()

            self.add_source("mesh.pending_deliveries", pending, node=node.name)

    # --- sweeping ----------------------------------------------------------

    def sample(self) -> dict[str, float]:
        """Sweep every source once: set gauges, extend histories.

        Returns the swept values keyed by rendered series name (cold path —
        rendering here is fine).
        """
        instr = self.instrumentation
        now = instr.clock.now()
        swept: dict[str, float] = {}
        for name, labels, source in self._sources:
            value = float(source())
            instr.gauge(name, value, **labels)
            key = metric_key(name, labels)
            series = self.history.get(key)
            if series is None:
                series = self.history[key] = deque(maxlen=self.history_limit)
            series.append((now, value))
            swept[key] = value
        self.samples += 1
        instr.count("obs.samples_total")
        instr.gauge("obs.last_sample_at", now)
        flight = instr.flight
        if flight.enabled:
            flight.record("sample", sweep=self.samples, series=len(swept))
        return swept

    def schedule(self, scheduler, *, interval: float, count: int) -> None:
        """Arm ``count`` sweeps, ``interval`` apart, starting one interval
        from now — all on the virtual scheduler, so sample times are exact
        multiples and runs are deterministic."""
        base = self.instrumentation.clock.now()
        for i in range(1, count + 1):
            scheduler.call_at(base + i * interval, self.sample)

    # --- reading -----------------------------------------------------------

    def series(self, key: str) -> list[tuple[float, float]]:
        return list(self.history.get(key, ()))

    def last_values(self) -> dict[str, float]:
        return {
            key: series[-1][1] for key, series in sorted(self.history.items())
        }

    def growth_anomalies(self, *, min_samples: int = 4) -> list[dict]:
        """Series that grew monotonically across the whole retained window.

        A backlog that rises on *every* sample of the window — never once
        draining — is the unbounded-growth signature; transient spikes that
        drain in between samples do not trip this.
        """
        anomalies = []
        for key, series in sorted(self.history.items()):
            if len(series) < min_samples:
                continue
            values = [value for _, value in series]
            if all(b > a for a, b in zip(values, values[1:])):
                anomalies.append(
                    {
                        "gauge": key,
                        "first": values[0],
                        "last": values[-1],
                        "samples": len(values),
                    }
                )
        return anomalies
