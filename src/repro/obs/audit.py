"""The conservation auditor: every published message must be accounted for.

Operational studies of notification middleware found that aggregate
counters hide broker misbehaviour; what exposes it is *message accounting*
— the books must balance.  This module audits one instrumented run's
lineage ledger (:mod:`repro.obs.lineage`) and trace store against four
invariant groups:

1. **conservation** — per lineage and globally, in delivery-obligation
   units: ``opened == delivered + dead_lettered + failed + shed +
   pending``, and
   every pending obligation is parked in a message box awaiting pull (at
   quiescence nothing may be silently in flight);
2. **event order** — each lineage's first event is its ``published``
   record and timestamps never run backwards;
3. **no orphan spans** — every span carrying a lineage refers to a ledger
   entry, and every span's parent id resolves;
4. **no dangling lineage** — every ledger lineage has a ``published``
   event and at least one span (the trace and the ledger tell one story).

When the run is a broker **mesh** (:mod:`repro.mesh`), pass the cluster's
``federation_sinks()`` and two more invariant groups apply:

5. **per-sink conservation** — within one lineage, no sink (consumer or
   federation hop) closes more obligations than were opened toward it: a
   duplicated delivery is caught even when the global books still balance
   (one lost + one doubled would otherwise cancel out);
6. **federation continuity** — a lineage delivered across a federation hop
   must also carry a ``mediated`` event: the receiving shard re-published
   it.  A hop that lands but never fans out is a black hole the global
   conservation sum cannot see (the hop's own obligation closed cleanly).

Run it over the bundled scenarios with ``python -m repro obs-audit``; the
output is virtual-clock deterministic and diffed in CI against a golden
snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.instrument import Instrumentation
from repro.obs.lineage import CLOSING_STATES, OPENING_STATES


@dataclass(frozen=True)
class AuditFinding:
    """One violated invariant."""

    invariant: str
    lineage_id: str  # "" for global findings
    message: str

    def render(self) -> str:
        where = f" [{self.lineage_id}]" if self.lineage_id else ""
        return f"FAIL {self.invariant}{where}: {self.message}"


@dataclass
class AuditResult:
    """The outcome of auditing one instrumented run."""

    scenario: str
    lineages: int = 0
    spans: int = 0
    events: int = 0
    opened: int = 0
    delivered: int = 0
    dead_lettered: int = 0
    failed: int = 0
    shed: int = 0
    pending: int = 0
    parked_outstanding: int = 0
    #: mesh runs only: deliveries that were federation hops (forwarded
    #: publishes and exchange->ingest link pushes) vs consumer-facing ones
    federation_delivered: int = 0
    consumer_delivered: int = 0
    mesh_audited: bool = False
    findings: list[AuditFinding] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        record = {
            "scenario": self.scenario,
            "lineages": self.lineages,
            "spans": self.spans,
            "events": self.events,
            "obligations": {
                "opened": self.opened,
                "delivered": self.delivered,
                "dead_lettered": self.dead_lettered,
                "failed": self.failed,
                "shed": self.shed,
                "pending": self.pending,
                "parked_outstanding": self.parked_outstanding,
            },
            "findings": [f.render() for f in self.findings],
            "passed": self.passed,
        }
        if self.mesh_audited:
            record["federation"] = {
                "federation_delivered": self.federation_delivered,
                "consumer_delivered": self.consumer_delivered,
            }
        return record

    def render(self) -> str:
        lines = [
            f"obs-audit: {self.scenario}",
            f"  lineages={self.lineages} spans={self.spans} events={self.events}",
            (
                f"  obligations: opened={self.opened} delivered={self.delivered}"
                f" dead_lettered={self.dead_lettered} failed={self.failed}"
                f" shed={self.shed} pending={self.pending} (parked awaiting"
                f" pull={self.parked_outstanding})"
            ),
            (
                "  conservation: opened == delivered + dead_lettered + failed"
                " + shed + pending"
            ),
        ]
        if self.mesh_audited:
            lines.append(
                f"  mesh: federation_hops={self.federation_delivered}"
                f" consumer_deliveries={self.consumer_delivered}"
                " (per-sink conservation + federation continuity checked)"
            )
        for finding in self.findings:
            lines.append(f"  {finding.render()}")
        lines.append(f"  {'PASS' if self.passed else 'FAIL'}")
        return "\n".join(lines)


def audit(
    instrumentation: Instrumentation,
    *,
    scenario: str = "run",
    federation_sinks: "frozenset[str]" = frozenset(),
) -> AuditResult:
    """Audit one instrumented run; the result lists every violation.

    ``federation_sinks`` (a mesh cluster's ``federation_sinks()``) switches
    on the mesh invariants: deliveries to those addresses are classified as
    federation hops, per-sink books must balance, and every hop-crossing
    lineage must have been re-published (``mediated``) on the far side.
    """
    ledger = instrumentation.ledger
    tracer = instrumentation.tracer
    result = AuditResult(scenario=scenario, mesh_audited=bool(federation_sinks))
    result.lineages = len(ledger)
    result.spans = len(tracer.spans)
    result.events = sum(len(events) for events in ledger.events.values())

    span_ids = {span.span_id for span in tracer.spans}
    span_lineages = {span.lineage for span in tracer.spans if span.lineage}

    for lineage_id in ledger.lineages():
        events = ledger.events_of(lineage_id)
        account = ledger.account_of(lineage_id)
        result.opened += account.opened
        result.delivered += account.delivered
        result.dead_lettered += account.dead_lettered
        result.failed += account.failed
        result.shed += account.shed
        result.pending += account.pending
        result.parked_outstanding += account.parked_outstanding

        # -- event order ----------------------------------------------------
        if events[0].state != "published":
            result.findings.append(
                AuditFinding(
                    "first-event-published",
                    lineage_id,
                    f"first event is {events[0].state!r}",
                )
            )
        for earlier, later in zip(events, events[1:]):
            if later.at < earlier.at:
                result.findings.append(
                    AuditFinding(
                        "monotonic-timestamps",
                        lineage_id,
                        f"{later.state} at {later.at} after {earlier.state}"
                        f" at {earlier.at}",
                    )
                )
                break
        if not any(event.state in OPENING_STATES for event in events):
            # purely informational lineage (e.g. queued-only): nothing to
            # conserve, but it must still have a trace (checked below)
            pass

        # -- conservation ---------------------------------------------------
        if account.closed > account.opened:
            result.findings.append(
                AuditFinding(
                    "conservation",
                    lineage_id,
                    f"closed {account.closed} obligations but only"
                    f" {account.opened} were opened",
                )
            )
        elif account.pending != account.parked_outstanding:
            result.findings.append(
                AuditFinding(
                    "conservation",
                    lineage_id,
                    f"{account.pending} obligations pending but"
                    f" {account.parked_outstanding} parked awaiting pull —"
                    " messages are unaccounted for at quiescence",
                )
            )

        # -- mesh invariants ------------------------------------------------
        if federation_sinks:
            opened_at: dict[str, int] = {}
            closed_at: dict[str, int] = {}
            mediated = False
            federation_hops = 0
            for event in events:
                if event.state == "mediated":
                    mediated = True
                sink = event.detail.get("sink")
                if sink is None:
                    continue
                if event.state in OPENING_STATES:
                    opened_at[sink] = opened_at.get(sink, 0) + 1
                elif event.state in CLOSING_STATES:
                    closed_at[sink] = closed_at.get(sink, 0) + 1
                    if event.state == "delivered":
                        if sink in federation_sinks:
                            result.federation_delivered += 1
                            federation_hops += 1
                        else:
                            result.consumer_delivered += 1
            for sink, closed in sorted(closed_at.items()):
                if closed > opened_at.get(sink, 0):
                    result.findings.append(
                        AuditFinding(
                            "per-sink-conservation",
                            lineage_id,
                            f"sink {sink} closed {closed} obligations but"
                            f" only {opened_at.get(sink, 0)} were opened —"
                            " a delivery was duplicated",
                        )
                    )
            if federation_hops and not mediated:
                result.findings.append(
                    AuditFinding(
                        "federation-continuity",
                        lineage_id,
                        f"{federation_hops} federation hop(s) delivered but"
                        " no shard ever re-published (mediated) the message",
                    )
                )

        # -- no dangling lineage --------------------------------------------
        if lineage_id not in span_lineages:
            result.findings.append(
                AuditFinding(
                    "no-dangling-lineage",
                    lineage_id,
                    "ledger entry has no trace spans",
                )
            )

    # -- no orphan spans ----------------------------------------------------
    for span in tracer.spans:
        if span.lineage is not None and span.lineage not in ledger.events:
            result.findings.append(
                AuditFinding(
                    "no-orphan-spans",
                    span.lineage,
                    f"span #{span.span_id} ({span.name}) has no ledger entry",
                )
            )
        if span.parent_id is not None and span.parent_id not in span_ids:
            result.findings.append(
                AuditFinding(
                    "no-orphan-spans",
                    span.lineage or "",
                    f"span #{span.span_id} ({span.name}) parent"
                    f" #{span.parent_id} is unknown",
                )
            )
    return result


# --- the CLI: audit the bundled scenarios ----------------------------------


def obs_audit_main(argv: "list[str] | None" = None) -> int:
    """CLI: run every bundled scenario under instrumentation and audit it."""
    import contextlib
    import io

    from repro.obs.report import run_demo_scenario
    from repro.obs.scenarios import example_scenarios

    argv = list(argv or [])
    results: list[AuditResult] = []

    demo_instr = run_demo_scenario()
    results.append(audit(demo_instr, scenario="obs-report demo"))

    for name, runner in example_scenarios():
        from repro.transport import SimulatedNetwork, VirtualClock
        from repro.wsa.headers import reset_message_counter

        reset_message_counter()
        network = SimulatedNetwork(VirtualClock())
        instrumentation = Instrumentation.attach(network)
        with contextlib.redirect_stdout(io.StringIO()):
            outcome = runner(network)
        # a mesh example hands back its federation sinks, switching on the
        # cross-shard invariants for its audit
        sinks = (
            frozenset(outcome) if isinstance(outcome, (set, frozenset)) else frozenset()
        )
        results.append(audit(instrumentation, scenario=name, federation_sinks=sinks))

    failed = [r for r in results if not r.passed]
    try:
        for result in results:
            print(result.render())
            print()
        print(
            f"obs-audit: {len(results) - len(failed)}/{len(results)}"
            " scenarios conserve every message"
        )
    except BrokenPipeError:
        pass
    return 1 if failed else 0
