"""Tracing: spans on the virtual clock with automatic parentage.

The whole simulation is synchronous, so span context is a plain stack: a
span opened while another is active becomes its child, which makes a
mediated publish come out as one connected tree

    deliver → dispatch → detect_spec / mediate → notify → deliver → ...

with no explicit context passing anywhere in the instrumented code.
Timestamps come from the :class:`VirtualClock`, so traces are bit-for-bit
deterministic across runs.

The stack alone breaks wherever a message's life continues outside the call
stack that produced it — a delivery retry fired later by the scheduler, a
parked message drained by pull, a logical process boundary.  For those,
spans carry a **lineage**: an id minted at the root publish (``mint=True``)
that is inherited down the stack, carried across the wire in a SOAP header
(:mod:`repro.obs.propagation`), and re-established on the far side via
``remote=``, which links the new span under its wire-carried parent instead
of starting a disconnected root.  ``hop`` counts wire hops crossed since
the root publish.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.propagation import LineageContext


class Span:
    """One timed operation: name, attributes, start/end, parent linkage.

    A span is its own context manager — :meth:`Tracer.span` resolves
    parentage, pushes the span and returns it, and ``__exit__`` pops the
    tracer stack and stamps the end time.  That keeps the per-span cost to
    one object allocation plus two list operations (the previous
    ``contextlib`` generator added a helper object, a generator frame and
    two extra calls per span — measurable at notification rates).
    """

    __slots__ = (
        "span_id", "parent_id", "name", "attrs", "start", "end",
        "status", "error", "lineage", "hop", "_tracer", "_context",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        attrs: dict[str, str],
        start: float,
        lineage: Optional[str] = None,
        hop: int = 0,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self.start = start
        self.end: Optional[float] = None
        self.status = "ok"
        self.error: Optional[str] = None
        #: lineage id of the notification this span serves (None = untraced)
        self.lineage = lineage
        #: wire hops crossed between the root publish and this span
        self.hop = hop
        #: owning tracer while the span is live on a stack (None otherwise)
        self._tracer: Optional["Tracer"] = None
        #: memoized continuation context (lineage/span_id/hop never change)
        self._context: Optional["LineageContext"] = None

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is not None:
            self.fail(f"{exc_type.__name__}: {exc}")
        tracer = self._tracer
        if tracer is not None:
            self.end = tracer._now()
            tracer._stack.pop()
            self._tracer = None
        return False

    def set(self, key: str, value: str) -> None:
        """Attach an attribute discovered mid-span (e.g. the detected spec)."""
        self.attrs[key] = value

    def fail(self, reason: str) -> None:
        self.status = "error"
        self.error = reason

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    def to_dict(self) -> dict:
        record = {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "attrs": {k: self.attrs[k] for k in sorted(self.attrs)},
            "start": round(self.start, 9),
            "end": round(self.end, 9) if self.end is not None else None,
            "status": self.status,
        }
        if self.lineage is not None:
            record["lineage"] = self.lineage
            record["hop"] = self.hop
        if self.error is not None:
            record["error"] = self.error
        return record

    def __repr__(self) -> str:
        return f"Span(#{self.span_id} {self.name!r} parent={self.parent_id})"


class Tracer:
    """Produces spans and stores every finished one in memory.

    ``sample_every`` trades span *retention* for memory and time: with a
    value N > 1 only every Nth span is kept in :attr:`spans` (the first of
    each stride survives, so small scenarios still trace).  The live stack —
    and with it lineage inheritance, parent ids and wire propagation — is
    always maintained, so sampling never changes wire bytes or ledger
    accounting, only which span records remain for the report.
    """

    def __init__(self, clock, *, sample_every: int = 1) -> None:
        self._clock = clock
        self._now = clock.now  # pre-bound: read 2x per span
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 1
        self._next_lineage = 1
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.sample_every = sample_every

    def mint_lineage(self) -> str:
        """A fresh, deterministic lineage id (one per root publish)."""
        lineage = f"lin-{self._next_lineage:08d}"
        self._next_lineage += 1
        return lineage

    def span(
        self,
        name: str,
        *,
        remote: Optional["LineageContext"] = None,
        mint: bool = False,
        **attrs: str,
    ) -> Span:
        """Open a span under the current stack top (use as ``with tracer.
        span(...) as span:`` — the span pushes here and pops on exit).

        ``remote`` re-establishes a wire-carried context: when the live
        stack does not already carry that lineage (a retry, a drain, a
        fresh dispatch), the span parents under the remote parent span and
        adopts its lineage and hop instead of starting a disconnected root.
        ``mint`` marks a root-publish site: if no lineage is inherited, a
        fresh one is minted there (hop 0).
        """
        stack = self._stack
        if stack:
            top = stack[-1]
            parent = top.span_id
            lineage = top.lineage
            hop = top.hop
        else:
            parent = None
            lineage = None
            hop = 0
        if remote is not None:
            if lineage is None or lineage != remote.lineage_id:
                # the stack is not carrying this message's chain: link across
                parent = remote.parent_span
                lineage = remote.lineage_id
            # either way the wire-carried hop count is authoritative — on a
            # synchronous send the sender's frames are still on the stack,
            # but this dispatch is one wire hop further along
            hop = remote.hop
        if mint and lineage is None:
            # inlined mint_lineage(): this runs once per root publish
            lineage = f"lin-{self._next_lineage:08d}"
            self._next_lineage += 1
            hop = 0
        span_id = self._next_id
        self._next_id = span_id + 1
        # inlined Span() construction: this is the only allocation site, and
        # skipping the __init__ frame is measurable at notification rates
        record = Span.__new__(Span)
        record.span_id = span_id
        record.parent_id = parent
        record.name = name
        record.attrs = attrs
        record.start = self._now()
        record.end = None
        record.status = "ok"
        record.error = None
        record.lineage = lineage
        record.hop = hop
        record._tracer = self
        record._context = None
        if self.sample_every == 1 or span_id % self.sample_every == 1:
            self.spans.append(record)
        stack.append(record)
        return record

    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def continuation(self) -> Optional["LineageContext"]:
        """The current span's context, for same-process resumption (same
        hop).  ``None`` when no traced span is active.

        Memoized per span: a span's lineage/id/hop never change, and hot
        paths ask several times per notification (client inject, task
        stamping, ledger events)."""
        stack = self._stack
        if not stack:
            return None
        top = stack[-1]
        if top.lineage is None:
            return None
        context = top._context
        if context is None:
            from repro.obs.propagation import LineageContext

            context = top._context = LineageContext(
                top.lineage, top.span_id, top.hop
            )
        return context

    def children_of(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def roots(self) -> list[Span]:
        return [s for s in self.spans if s.parent_id is None]

    def spans_of_lineage(self, lineage_id: str) -> list[Span]:
        return [s for s in self.spans if s.lineage == lineage_id]

    def depth_of(self, span: Span) -> int:
        """Nesting depth (roots are 0) — connectivity check for tests."""
        by_id = {s.span_id: s for s in self.spans}
        depth = 0
        while span.parent_id is not None and span.parent_id in by_id:
            span = by_id[span.parent_id]
            depth += 1
        return depth

    def reset(self) -> None:
        """Drop finished spans (open spans keep their stack for nesting)."""
        self.spans = list(self._stack)

    def render_tree(self) -> str:
        """Indented text rendering of every span tree, in id order.

        A span whose parent closed in an earlier window (or lives across a
        wire/retry gap) renders as a root here; the lineage annotation keeps
        the chain readable.
        """
        lines: list[str] = []
        known = {s.span_id for s in self.spans}

        def walk(span: Span, indent: int) -> None:
            attrs = " ".join(
                f"{k}={span.attrs[k]}" for k in sorted(span.attrs)
            )
            lineage = (
                f" ~{span.lineage}@h{span.hop}" if span.lineage is not None else ""
            )
            flag = "" if span.status == "ok" else f" !{span.status}"
            lines.append(
                f"{'  ' * indent}{span.name}"
                f" [{span.start:.4f}s +{span.duration * 1000:.3f}ms]"
                f"{(' ' + attrs) if attrs else ''}{lineage}{flag}"
            )
            for child in self.children_of(span):
                walk(child, indent + 1)

        for span in self.spans:
            if span.parent_id is None or span.parent_id not in known:
                walk(span, 0)
        return "\n".join(lines)
