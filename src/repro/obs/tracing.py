"""Tracing: spans on the virtual clock with automatic parentage.

The whole simulation is synchronous, so span context is a plain stack: a
span opened while another is active becomes its child, which makes a
mediated publish come out as one connected tree

    deliver → dispatch → detect_spec / mediate → notify → deliver → ...

with no explicit context passing anywhere in the instrumented code.
Timestamps come from the :class:`VirtualClock`, so traces are bit-for-bit
deterministic across runs.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional


class Span:
    """One timed operation: name, attributes, start/end, parent linkage."""

    __slots__ = ("span_id", "parent_id", "name", "attrs", "start", "end", "status", "error")

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        attrs: dict[str, str],
        start: float,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self.start = start
        self.end: Optional[float] = None
        self.status = "ok"
        self.error: Optional[str] = None

    def set(self, key: str, value: str) -> None:
        """Attach an attribute discovered mid-span (e.g. the detected spec)."""
        self.attrs[key] = value

    def fail(self, reason: str) -> None:
        self.status = "error"
        self.error = reason

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    def to_dict(self) -> dict:
        record = {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "attrs": {k: self.attrs[k] for k in sorted(self.attrs)},
            "start": round(self.start, 9),
            "end": round(self.end, 9) if self.end is not None else None,
            "status": self.status,
        }
        if self.error is not None:
            record["error"] = self.error
        return record

    def __repr__(self) -> str:
        return f"Span(#{self.span_id} {self.name!r} parent={self.parent_id})"


class Tracer:
    """Produces spans and stores every finished one in memory."""

    def __init__(self, clock) -> None:
        self._clock = clock
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 1

    @contextmanager
    def span(self, name: str, **attrs: str) -> Iterator[Span]:
        parent = self._stack[-1].span_id if self._stack else None
        record = Span(self._next_id, parent, name, dict(attrs), self._clock.now())
        self._next_id += 1
        self.spans.append(record)
        self._stack.append(record)
        try:
            yield record
        except BaseException as exc:
            record.fail(f"{type(exc).__name__}: {exc}")
            raise
        finally:
            record.end = self._clock.now()
            self._stack.pop()

    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def children_of(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def roots(self) -> list[Span]:
        return [s for s in self.spans if s.parent_id is None]

    def depth_of(self, span: Span) -> int:
        """Nesting depth (roots are 0) — connectivity check for tests."""
        by_id = {s.span_id: s for s in self.spans}
        depth = 0
        while span.parent_id is not None:
            span = by_id[span.parent_id]
            depth += 1
        return depth

    def reset(self) -> None:
        """Drop finished spans (open spans keep their stack for nesting)."""
        self.spans = list(self._stack)

    def render_tree(self) -> str:
        """Indented text rendering of every span tree, in id order."""
        lines: list[str] = []

        def walk(span: Span, indent: int) -> None:
            attrs = " ".join(
                f"{k}={span.attrs[k]}" for k in sorted(span.attrs)
            )
            flag = "" if span.status == "ok" else f" !{span.status}"
            lines.append(
                f"{'  ' * indent}{span.name}"
                f" [{span.start:.4f}s +{span.duration * 1000:.3f}ms]"
                f"{(' ' + attrs) if attrs else ''}{flag}"
            )
            for child in self.children_of(span):
                walk(child, indent + 1)

        for root in self.roots():
            walk(root, 0)
        return "\n".join(lines)
