"""Flight recorder: a bounded ring buffer of typed broker events.

Reports and benchmark artifacts answer "what happened overall"; the flight
recorder answers "what happened *just now*" — the last N interesting events
on the virtual clock, cheap enough to leave armed in every long-running
scenario and free when dormant.  It is the continuous-telemetry counterpart
of the span store: spans keep everything and cost accordingly, the recorder
keeps a fixed window and never grows.

Record kinds (the closed vocabulary; guards against typo'd call sites):

========== ==========================================================
kind        emitted when
========== ==========================================================
publish     a broker accepts a publication
route       a mesh node routes a publish (owned or forwarded)
serialize   a Notify body is rendered (template hit or tree fallback)
batch_flush a per-sink delivery batch flushes (size/window/manual)
delivery    a delivery obligation closes (delivered/parked/dead/failed)
breaker     a circuit breaker changes state
rebalance   mesh membership changes move key ownership
log_append  the durable store appends an event-log record
sample      a gauge probe sweep ran
anomaly     a health probe flagged a condition
========== ==========================================================

Dormant mode is the default: a disarmed recorder (or the shared
:data:`NULL_FLIGHT`) has ``enabled = False`` and call sites are written as

    flight = instr.flight
    if flight.enabled:
        flight.record("publish", topic=topic)

so a dormant run pays one attribute load and a falsy branch — no tuple, no
kwargs dict, no allocation at all (asserted by a tracemalloc test).

The ring is preallocated: ``record`` writes slots in place modulo capacity,
so a wrapped recorder allocates only the per-record field dicts, never
grows the buffer, and :meth:`tail` / :meth:`snapshot` rebuild insertion
order from the write cursor.
"""

from __future__ import annotations

from typing import Optional

#: every record kind the recorder accepts
FLIGHT_KINDS = frozenset(
    {
        "publish",
        "route",
        "serialize",
        "batch_flush",
        "delivery",
        "breaker",
        "rebalance",
        "log_append",
        "sample",
        "anomaly",
    }
)

#: default ring capacity when arming without an explicit one
DEFAULT_CAPACITY = 256


class FlightRecord:
    """One recorded event: sequence number, virtual time, kind, fields."""

    __slots__ = ("seq", "at", "kind", "fields")

    def __init__(self, seq: int, at: float, kind: str, fields: dict) -> None:
        self.seq = seq
        self.at = at
        self.kind = kind
        self.fields = fields

    def to_dict(self) -> dict:
        record = {"seq": self.seq, "at": round(self.at, 9), "kind": self.kind}
        record.update({k: self.fields[k] for k in sorted(self.fields)})
        return record

    def render(self) -> str:
        """One deterministic text line (obs-top's tail format)."""
        fields = " ".join(f"{k}={self.fields[k]}" for k in sorted(self.fields))
        return f"[{self.at:9.4f}s #{self.seq:05d}] {self.kind:<11s} {fields}".rstrip()

    def __repr__(self) -> str:
        return f"FlightRecord(#{self.seq} {self.kind!r} @{self.at})"


class NullFlightRecorder:
    """The dormant stand-in: same surface, every operation inert."""

    enabled = False
    capacity = 0

    __slots__ = ()

    def record(self, kind: str, **fields) -> None:
        pass

    def tail(self, count: int = 16) -> list:
        return []

    def snapshot(self) -> dict:
        return {"enabled": False, "capacity": 0, "recorded": 0, "records": []}

    def reset(self) -> None:
        pass

    def __len__(self) -> int:
        return 0


#: shared dormant instance; ``Instrumentation.flight`` starts out as this
NULL_FLIGHT = NullFlightRecorder()


class FlightRecorder:
    """An armed recorder: fixed-capacity ring on one virtual clock."""

    enabled = True

    __slots__ = ("_clock", "capacity", "_ring", "_next_seq")

    def __init__(self, clock, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self._clock = clock
        self.capacity = capacity
        # preallocated ring: record() overwrites in place, never appends
        self._ring: list[Optional[FlightRecord]] = [None] * capacity
        self._next_seq = 0

    def record(self, kind: str, **fields) -> None:
        """Write one record, overwriting the oldest once the ring is full."""
        if kind not in FLIGHT_KINDS:
            raise ValueError(f"unknown flight record kind: {kind!r}")
        seq = self._next_seq
        self._next_seq = seq + 1
        self._ring[seq % self.capacity] = FlightRecord(
            seq, self._clock.now(), kind, fields
        )

    # --- reading -----------------------------------------------------------

    def records(self) -> list[FlightRecord]:
        """Retained records, oldest first."""
        if self._next_seq <= self.capacity:
            return [r for r in self._ring[: self._next_seq] if r is not None]
        cursor = self._next_seq % self.capacity
        out = self._ring[cursor:] + self._ring[:cursor]
        return [r for r in out if r is not None]

    def tail(self, count: int = 16) -> list[FlightRecord]:
        """The newest ``count`` records, oldest of them first."""
        return self.records()[-count:]

    @property
    def dropped(self) -> int:
        """Records overwritten because the ring wrapped."""
        return max(0, self._next_seq - self.capacity)

    def by_kind(self) -> dict[str, int]:
        tally: dict[str, int] = {}
        for record in self.records():
            tally[record.kind] = tally.get(record.kind, 0) + 1
        return {k: tally[k] for k in sorted(tally)}

    def snapshot(self) -> dict:
        return {
            "enabled": True,
            "capacity": self.capacity,
            "recorded": self._next_seq,
            "dropped": self.dropped,
            "by_kind": self.by_kind(),
            "records": [record.to_dict() for record in self.records()],
        }

    def reset(self) -> None:
        self._ring = [None] * self.capacity
        self._next_seq = 0

    def __len__(self) -> int:
        return min(self._next_seq, self.capacity)
