"""Wire capture: a frame per request/response exchange, outcome included.

Subscribes to :attr:`SimulatedNetwork.wire_observers` (the response/outcome
hook), so nothing here monkey-patches ``send_request``.  Unlike the byte
totals in ``NetworkStats``, frames keep the per-exchange shape — who talked
to whom across which zones, how big each direction was, how long the
round trip took on the virtual clock, and whether the exchange succeeded
or died as ``lost`` / ``firewall_blocked`` / ``unreachable``.
"""

from __future__ import annotations

from typing import Optional


class CapturedFrame:
    """One recorded exchange (sizes only; payload bytes are not retained).

    A plain ``__slots__`` record: one frame is allocated per wire exchange,
    so the frozen-dataclass ``object.__setattr__`` construction path showed
    up in the instrumentation-overhead benchmark.
    """

    __slots__ = (
        "index", "address", "from_zone", "to_zone",
        "request_size", "response_size", "outcome", "started", "finished",
    )

    def __init__(
        self,
        index: int,
        address: str,
        from_zone: str,
        to_zone: Optional[str],
        request_size: int,
        response_size: Optional[int],
        outcome: str,
        started: float,
        finished: float,
    ) -> None:
        self.index = index
        self.address = address
        self.from_zone = from_zone
        self.to_zone = to_zone
        self.request_size = request_size
        self.response_size = response_size
        self.outcome = outcome
        self.started = started
        self.finished = finished

    @property
    def latency(self) -> float:
        return self.finished - self.started

    @property
    def ok(self) -> bool:
        return self.outcome == "ok"

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "address": self.address,
            "from_zone": self.from_zone,
            "to_zone": self.to_zone,
            "request_size": self.request_size,
            "response_size": self.response_size,
            "outcome": self.outcome,
            "started": round(self.started, 9),
            "latency": round(self.latency, 9),
        }


class WireCapture:
    """In-memory store of every frame seen since the last reset."""

    def __init__(self, max_frames: Optional[int] = None) -> None:
        #: oldest frames are dropped past this bound (None = unbounded)
        self.max_frames = max_frames
        self.frames: list[CapturedFrame] = []
        self._dropped = 0
        self._next_index = 0

    def record(self, observation) -> None:
        """Wire-observer callback (receives a network ``WireObservation``)."""
        frame = CapturedFrame(
            self._next_index,
            observation.address,
            observation.from_zone,
            observation.to_zone,
            len(observation.request),
            len(observation.response) if observation.response is not None else None,
            observation.outcome,
            observation.started,
            observation.finished,
        )
        self._next_index += 1
        self.frames.append(frame)
        if self.max_frames is not None and len(self.frames) > self.max_frames:
            overflow = len(self.frames) - self.max_frames
            del self.frames[:overflow]
            self._dropped += overflow

    # --- aggregation -------------------------------------------------------

    def by_outcome(self) -> dict[str, int]:
        tally: dict[str, int] = {}
        for frame in self.frames:
            tally[frame.outcome] = tally.get(frame.outcome, 0) + 1
        return {k: tally[k] for k in sorted(tally)}

    def total_request_bytes(self) -> int:
        return sum(frame.request_size for frame in self.frames)

    def total_response_bytes(self) -> int:
        return sum(frame.response_size or 0 for frame in self.frames)

    def reset(self) -> None:
        self.frames.clear()
        self._dropped = 0
        self._next_index = 0

    def snapshot(self) -> dict:
        return {
            "frames": [frame.to_dict() for frame in self.frames],
            "dropped": self._dropped,
            "totals": {
                "count": len(self.frames),
                "by_outcome": self.by_outcome(),
                "request_bytes": self.total_request_bytes(),
                "response_bytes": self.total_response_bytes(),
            },
        }

    def __len__(self) -> int:
        return len(self.frames)
