"""Metrics: labelled counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` hands out instruments keyed by ``(name, labels)``;
asking twice for the same key returns the same instrument, so hot paths can
simply call ``registry.counter("broker.requests", family="wse").inc()``.

Instruments are stored under a **structural key** — ``(name, sorted label
items)`` — and the human-readable ``name{k=v,...}`` string is only rendered
when a snapshot or aggregation asks for it (lazy label formatting).  The hot
path therefore never builds strings; it hashes a small tuple, and call sites
that run per-notification can go one step further and hold the
:class:`Counter` itself (a *pre-bound handle*, see
:meth:`Instrumentation.counter_handle`), paying one attribute increment per
event.

Snapshots are plain dicts with deterministically ordered rendered keys, and
:meth:`MetricsRegistry.reset` zeroes every instrument between benchmark
phases without invalidating references already handed out.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterator, Optional

#: default histogram buckets, in virtual seconds (upper bounds; +Inf implied)
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
)

#: structural registry key: (name, tuple(sorted(labels.items())))
MetricKey = tuple


def metric_key(name: str, labels: dict[str, str]) -> str:
    """Render ``name{k=v,...}`` with labels sorted — the canonical key."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def structural_key(name: str, labels: dict[str, str]) -> MetricKey:
    """The hot-path registry key: no string building, just a small tuple."""
    if not labels:
        return (name, ())
    return (name, tuple(sorted(labels.items())))


def render_key(key: MetricKey) -> str:
    """Render a structural key into the canonical ``name{k=v,...}`` form."""
    name, items = key
    if not items:
        return name
    inner = ",".join(f"{k}={v}" for k, v in items)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """A point-in-time value (e.g. live subscriptions)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += delta

    def reset(self) -> None:
        self.value = 0.0


class Histogram:
    """A fixed-bucket histogram (cumulative counts plus sum/count/min/max)."""

    __slots__ = ("buckets", "counts", "count", "total", "minimum", "maximum")

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.buckets = tuple(sorted(buckets))
        self.reset()

    def reset(self) -> None:
        self.counts = [0] * (len(self.buckets) + 1)  # last slot is +Inf
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        buckets = {f"le={bound:g}": n for bound, n in zip(self.buckets, self.counts)}
        buckets["le=+Inf"] = self.counts[-1]
        return {
            "count": self.count,
            "sum": round(self.total, 9),
            "min": self.minimum,
            "max": self.maximum,
            "buckets": buckets,
        }


class _NullCounter(Counter):
    """Pre-bound handle handed out by ``NullInstrumentation``: inert."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


#: shared inert instruments (safe to share: every operation is a no-op)
NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """All instruments of one instrumented run, keyed deterministically."""

    def __init__(self) -> None:
        self._counters: dict[MetricKey, Counter] = {}
        self._gauges: dict[MetricKey, Gauge] = {}
        self._histograms: dict[MetricKey, Histogram] = {}

    # --- instrument access -------------------------------------------------

    def counter(self, name: str, **labels: str) -> Counter:
        key = (name, tuple(sorted(labels.items()))) if labels else (name, ())
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = (name, tuple(sorted(labels.items()))) if labels else (name, ())
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(
        self,
        name: str,
        *,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        key = (name, tuple(sorted(labels.items()))) if labels else (name, ())
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(buckets)
        return instrument

    # --- aggregation -------------------------------------------------------

    def counter_values(self, name: str) -> dict[str, int]:
        """All counter series of one metric name, keyed by rendered key."""
        values = {
            render_key(key): c.value
            for key, c in self._counters.items()
            if key[0] == name
        }
        return {k: values[k] for k in sorted(values)}

    def gauge_values(self, name: str) -> dict[str, float]:
        """All gauge series of one metric name, keyed by rendered key."""
        values = {
            render_key(key): g.value
            for key, g in self._gauges.items()
            if key[0] == name
        }
        return {k: values[k] for k in sorted(values)}

    def histogram_series(
        self, name: str
    ) -> Iterator[tuple[dict[str, str], Histogram]]:
        """Every ``(labels, histogram)`` recorded under ``name``, in
        deterministic label order."""
        for key in sorted(k for k in self._histograms if k[0] == name):
            yield dict(key[1]), self._histograms[key]

    def snapshot(self) -> dict:
        """A plain, deterministic dict of every instrument's state.

        Keys are rendered here — and only here — so the hot path never pays
        for label formatting (lazy label formatting).
        """
        counters = {render_key(k): c.value for k, c in self._counters.items()}
        gauges = {render_key(k): g.value for k, g in self._gauges.items()}
        histograms = {
            render_key(k): h.snapshot() for k, h in self._histograms.items()
        }
        return {
            "counters": {k: counters[k] for k in sorted(counters)},
            "gauges": {k: gauges[k] for k in sorted(gauges)},
            "histograms": {k: histograms[k] for k in sorted(histograms)},
        }

    def reset(self) -> None:
        """Zero everything; handed-out instrument references stay valid."""
        for counter in self._counters.values():
            counter.reset()
        for gauge in self._gauges.values():
            gauge.reset()
        for histogram in self._histograms.values():
            histogram.reset()

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)
