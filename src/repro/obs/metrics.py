"""Metrics: labelled counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` hands out instruments keyed by ``(name, labels)``;
asking twice for the same key returns the same instrument, so hot paths can
simply call ``registry.counter("broker.requests", family="wse").inc()``.
Snapshots are plain dicts with deterministically ordered keys, and
:meth:`MetricsRegistry.reset` zeroes every instrument between benchmark
phases without invalidating references already handed out.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Optional

#: default histogram buckets, in virtual seconds (upper bounds; +Inf implied)
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
)


def metric_key(name: str, labels: dict[str, str]) -> str:
    """Render ``name{k=v,...}`` with labels sorted — the canonical key."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """A point-in-time value (e.g. live subscriptions)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += delta

    def reset(self) -> None:
        self.value = 0.0


class Histogram:
    """A fixed-bucket histogram (cumulative counts plus sum/count/min/max)."""

    __slots__ = ("buckets", "counts", "count", "total", "minimum", "maximum")

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.buckets = tuple(sorted(buckets))
        self.reset()

    def reset(self) -> None:
        self.counts = [0] * (len(self.buckets) + 1)  # last slot is +Inf
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        buckets = {f"le={bound:g}": n for bound, n in zip(self.buckets, self.counts)}
        buckets["le=+Inf"] = self.counts[-1]
        return {
            "count": self.count,
            "sum": round(self.total, 9),
            "min": self.minimum,
            "max": self.maximum,
            "buckets": buckets,
        }


class MetricsRegistry:
    """All instruments of one instrumented run, keyed deterministically."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # --- instrument access -------------------------------------------------

    def counter(self, name: str, **labels: str) -> Counter:
        key = metric_key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = metric_key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(
        self,
        name: str,
        *,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        key = metric_key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(buckets)
        return instrument

    # --- aggregation -------------------------------------------------------

    def counter_values(self, name: str) -> dict[str, int]:
        """All counter series of one metric name, keyed by full key."""
        prefix = name + "{"
        return {
            key: c.value
            for key, c in sorted(self._counters.items())
            if key == name or key.startswith(prefix)
        }

    def snapshot(self) -> dict:
        """A plain, deterministic dict of every instrument's state."""
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "histograms": {
                k: h.snapshot() for k, h in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        """Zero everything; handed-out instrument references stay valid."""
        for counter in self._counters.values():
            counter.reset()
        for gauge in self._gauges.values():
            gauge.reset()
        for histogram in self._histograms.values():
            histogram.reset()

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)
