"""Bundled scenarios for ``obs-audit``: the repo's examples, instrumented.

Every ``examples/*.py`` whose ``main`` builds a :class:`SimulatedNetwork`
accepts an injected one, which lets the auditor re-run the exact documented
scenario under full instrumentation and check the conservation invariants
over it.  The examples live outside the package (they are documentation
first), so they are loaded by file path relative to the repo root; an
installed-without-examples tree simply audits the demo scenario alone.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path
from typing import Callable, Iterator

#: audited examples, in a fixed order (deterministic CLI output).
#: spec_evolution_report is omitted: it builds no network.
EXAMPLE_NAMES: tuple[str, ...] = (
    "quickstart",
    "mediation_demo",
    "legacy_bridge",
    "firewall_pullpoint",
    "grid_monitoring",
    "converged_prototype",
    "reliable_firewall_drain",
    "mesh_federation",
)


def _examples_dir() -> Path:
    # src/repro/obs/scenarios.py -> repo root is three levels above src/
    return Path(__file__).resolve().parents[3] / "examples"


def _load_runner(name: str) -> Callable:
    path = _examples_dir() / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"repro_example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.main


def example_scenarios() -> Iterator[tuple[str, Callable]]:
    """Yield ``(name, runner)`` pairs; ``runner(network)`` runs the example
    on the given (instrumented) network.

    A runner may return a set of addresses: the example's federation sinks
    (see :mod:`repro.mesh`), which the auditor passes through to enable the
    mesh-wide conservation invariants for that scenario."""
    directory = _examples_dir()
    if not directory.is_dir():
        return
    for name in EXAMPLE_NAMES:
        if not (directory / f"{name}.py").is_file():
            continue
        runner = _load_runner(name)
        yield f"examples/{name}.py", (
            lambda network, _runner=runner: _runner(network=network)
        )
