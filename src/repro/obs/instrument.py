"""The single handle instrumented code talks to.

Hot paths hold a :class:`SimulatedNetwork` and read its ``instrumentation``
attribute, which is either a live :class:`Instrumentation` (metrics +
tracer + wire capture on the network's virtual clock) or the module-level
:data:`NULL_INSTRUMENTATION` — a null object whose every operation is a
no-op, so uninstrumented runs pay only an attribute read and an empty
context-manager enter/exit on the hottest paths.

Usage::

    network = SimulatedNetwork(VirtualClock())
    instr = Instrumentation.attach(network)     # flips the network live
    ... run a scenario ...
    print(render_text_report(instr))            # repro.obs.exporters
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.obs.capture import WireCapture
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer

if TYPE_CHECKING:  # avoid a runtime cycle with repro.transport.network
    from repro.transport.network import SimulatedNetwork


class _NullSpan:
    """Context manager + span stand-in; every operation is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, key: str, value: str) -> None:
        pass

    def fail(self, reason: str) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullInstrumentation:
    """The default: the same surface as :class:`Instrumentation`, inert."""

    enabled = False

    def span(self, name: str, **attrs: str) -> _NullSpan:
        return _NULL_SPAN

    def count(self, name: str, value: int = 1, **labels: str) -> None:
        pass

    def gauge(self, name: str, value: float, **labels: str) -> None:
        pass

    def observe(self, name: str, value: float, **labels: str) -> None:
        pass

    def record_wire(self, observation) -> None:
        pass


#: shared inert instance; ``SimulatedNetwork`` starts out pointing at it
NULL_INSTRUMENTATION = NullInstrumentation()


class Instrumentation:
    """Live metrics registry + tracer + wire capture on one virtual clock."""

    enabled = True

    def __init__(self, clock, *, max_frames: Optional[int] = None) -> None:
        self.clock = clock
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(clock)
        self.capture = WireCapture(max_frames=max_frames)

    @classmethod
    def attach(
        cls, network: "SimulatedNetwork", *, max_frames: Optional[int] = None
    ) -> "Instrumentation":
        """Create on the network's clock and install in one step."""
        return cls(network.clock, max_frames=max_frames).install(network)

    def install(self, network: "SimulatedNetwork") -> "Instrumentation":
        """Point the network (and everything holding it) at this handle."""
        network.instrumentation = self
        network.wire_observers.append(self.capture.record)
        return self

    def uninstall(self, network: "SimulatedNetwork") -> None:
        network.instrumentation = NULL_INSTRUMENTATION
        if self.capture.record in network.wire_observers:
            network.wire_observers.remove(self.capture.record)

    # --- the hot-path surface ---------------------------------------------

    def span(self, name: str, **attrs: str):
        return self.tracer.span(name, **attrs)

    def count(self, name: str, value: int = 1, **labels: str) -> None:
        self.metrics.counter(name, **labels).inc(value)

    def gauge(self, name: str, value: float, **labels: str) -> None:
        self.metrics.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float, **labels: str) -> None:
        self.metrics.histogram(name, **labels).observe(value)

    def record_wire(self, observation) -> None:
        self.capture.record(observation)

    # --- lifecycle ---------------------------------------------------------

    def snapshot(self) -> dict:
        """Deterministic state of all three layers (see also exporters)."""
        return {
            "clock": round(self.clock.now(), 9),
            "metrics": self.metrics.snapshot(),
            "spans": [span.to_dict() for span in self.tracer.spans],
            "wire": self.capture.snapshot(),
        }

    def reset(self) -> None:
        """Zero everything between benchmark phases."""
        self.metrics.reset()
        self.tracer.reset()
        self.capture.reset()
