"""The single handle instrumented code talks to.

Hot paths hold a :class:`SimulatedNetwork` and read its ``instrumentation``
attribute, which is either a live :class:`Instrumentation` (metrics +
tracer + wire capture on the network's virtual clock) or the module-level
:data:`NULL_INSTRUMENTATION` — a null object whose every operation is a
no-op, so uninstrumented runs pay only an attribute read and an empty
context-manager enter/exit on the hottest paths.

Usage::

    network = SimulatedNetwork(VirtualClock())
    instr = Instrumentation.attach(network)     # flips the network live
    ... run a scenario ...
    print(render_text_report(instr))            # repro.obs.exporters
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.obs.capture import WireCapture
from repro.obs.lineage import LineageLedger
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import observe_delivery_latency
from repro.obs.tracing import Tracer

if TYPE_CHECKING:  # avoid a runtime cycle with repro.transport.network
    from repro.obs.propagation import LineageContext
    from repro.transport.network import SimulatedNetwork


class _NullSpan:
    """Context manager + span stand-in; every operation is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, key: str, value: str) -> None:
        pass

    def fail(self, reason: str) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullInstrumentation:
    """The default: the same surface as :class:`Instrumentation`, inert."""

    enabled = False

    def span(self, name: str, *, remote=None, mint: bool = False, **attrs: str) -> _NullSpan:
        return _NULL_SPAN

    def count(self, name: str, value: int = 1, **labels: str) -> None:
        pass

    def gauge(self, name: str, value: float, **labels: str) -> None:
        pass

    def observe(self, name: str, value: float, **labels: str) -> None:
        pass

    def record_wire(self, observation) -> None:
        pass

    def trace_context(self) -> None:
        return None

    def lineage_event(self, lineage_id, state: str, **detail) -> None:
        pass

    def lineage_delivered(
        self, lineage_id, *, family: str, hops: int, sink: str, via: str = "push"
    ) -> None:
        pass


#: shared inert instance; ``SimulatedNetwork`` starts out pointing at it
NULL_INSTRUMENTATION = NullInstrumentation()


class Instrumentation:
    """Live metrics registry + tracer + wire capture on one virtual clock."""

    enabled = True

    def __init__(self, clock, *, max_frames: Optional[int] = None) -> None:
        self.clock = clock
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(clock)
        self.capture = WireCapture(max_frames=max_frames)
        self.ledger = LineageLedger(clock)

    @classmethod
    def attach(
        cls, network: "SimulatedNetwork", *, max_frames: Optional[int] = None
    ) -> "Instrumentation":
        """Create on the network's clock and install in one step."""
        return cls(network.clock, max_frames=max_frames).install(network)

    def install(self, network: "SimulatedNetwork") -> "Instrumentation":
        """Point the network (and everything holding it) at this handle."""
        network.instrumentation = self
        network.wire_observers.append(self.capture.record)
        return self

    def uninstall(self, network: "SimulatedNetwork") -> None:
        network.instrumentation = NULL_INSTRUMENTATION
        if self.capture.record in network.wire_observers:
            network.wire_observers.remove(self.capture.record)

    # --- the hot-path surface ---------------------------------------------

    def span(
        self,
        name: str,
        *,
        remote: Optional["LineageContext"] = None,
        mint: bool = False,
        **attrs: str,
    ):
        return self.tracer.span(name, remote=remote, mint=mint, **attrs)

    def count(self, name: str, value: int = 1, **labels: str) -> None:
        self.metrics.counter(name, **labels).inc(value)

    def gauge(self, name: str, value: float, **labels: str) -> None:
        self.metrics.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float, **labels: str) -> None:
        self.metrics.histogram(name, **labels).observe(value)

    def record_wire(self, observation) -> None:
        self.capture.record(observation)

    # --- lineage -----------------------------------------------------------

    def trace_context(self) -> Optional["LineageContext"]:
        """The current span's lineage context (sender hop), or ``None``.

        ``None`` exactly when no lineage-bearing span is active — which is
        also when wire injection must not happen, so call sites can gate on
        the return value alone.
        """
        return self.tracer.continuation()

    def lineage_event(self, lineage_id: Optional[str], state: str, **detail) -> None:
        """Record one ledger transition; a ``None`` lineage id is ignored
        (untraced traffic, e.g. management calls)."""
        if lineage_id is not None:
            self.ledger.record(lineage_id, state, **detail)

    def lineage_delivered(
        self,
        lineage_id: Optional[str],
        *,
        family: str,
        hops: int,
        sink: str,
        via: str = "push",
    ) -> None:
        """Close one obligation as delivered and observe its end-to-end
        latency into the SLO histograms."""
        if lineage_id is None:
            return
        published = self.ledger.published_at(lineage_id)
        self.ledger.record(
            lineage_id, "delivered", sink=sink, via=via, hops=hops
        )
        if published is not None:
            observe_delivery_latency(
                self.metrics,
                self.clock.now() - published,
                family=family,
                hops=hops,
            )

    # --- lifecycle ---------------------------------------------------------

    def snapshot(self) -> dict:
        """Deterministic state of all three layers (see also exporters)."""
        return {
            "clock": round(self.clock.now(), 9),
            "metrics": self.metrics.snapshot(),
            "spans": [span.to_dict() for span in self.tracer.spans],
            "wire": self.capture.snapshot(),
            "lineage": self.ledger.snapshot(),
        }

    def reset(self) -> None:
        """Zero everything between benchmark phases."""
        self.metrics.reset()
        self.tracer.reset()
        self.capture.reset()
        self.ledger.reset()
