"""The single handle instrumented code talks to.

Hot paths hold a :class:`SimulatedNetwork` and read its ``instrumentation``
attribute, which is either a live :class:`Instrumentation` (metrics +
tracer + wire capture on the network's virtual clock) or the module-level
:data:`NULL_INSTRUMENTATION` — a null object whose every operation is a
no-op, so uninstrumented runs pay only an attribute read and an empty
context-manager enter/exit on the hottest paths.

The live handle is built for continuous use, not just one-shot reports, so
its hot surface is deliberately cheap (see ``BENCH_observability.json``):

* ``count``/``gauge`` hash a small structural tuple — label strings are
  only rendered at snapshot time (lazy label formatting);
* per-notification call sites can pre-bind a :class:`Counter` handle once
  (:meth:`counter_handle`) and pay a single attribute increment per event;
  the null handle hands out an inert shared counter, so binding code needs
  no ``enabled`` branches;
* spans are their own context managers (no ``contextlib`` generator), and
  :class:`~repro.obs.tracing.Tracer` retention can be sampled for
  always-on runs;
* the flight recorder (:attr:`flight`) and phase timers (:attr:`phases`)
  are dormant by default — one attribute load and a falsy check.

Usage::

    network = SimulatedNetwork(VirtualClock())
    instr = Instrumentation.attach(network)     # flips the network live
    instr.enable_flight()                        # optional: ring recorder
    ... run a scenario ...
    print(render_text_report(instr))            # repro.obs.exporters
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.obs.capture import WireCapture
from repro.obs.flight import NULL_FLIGHT, DEFAULT_CAPACITY, FlightRecorder
from repro.obs.lineage import LineageLedger
from repro.obs.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Counter,
    Gauge,
    MetricsRegistry,
)
from repro.obs.tracing import Tracer

if TYPE_CHECKING:  # avoid a runtime cycle with repro.transport.network
    from repro.obs.probes import PhaseTimers
    from repro.obs.propagation import LineageContext
    from repro.transport.network import SimulatedNetwork


class _NullSpan:
    """Context manager + span stand-in; every operation is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, key: str, value: str) -> None:
        pass

    def fail(self, reason: str) -> None:
        pass


_NULL_SPAN = _NullSpan()


class BoundCounters:
    """A per-component cache of pre-bound counters, keyed on the *identity*
    of the network's instrumentation handle.

    Components that count per notification hold one of these and call
    :meth:`get` with a short site-local key; the first call per (handle,
    key) resolves the counter through the registry, every later call is an
    identity check plus one dict probe.  Swapping the network's
    instrumentation (attach/uninstall, or a fresh handle between benchmark
    phases) invalidates the cache automatically.  Works against the null
    handle too — it binds inert counters, so call sites stay branch-free.
    """

    __slots__ = ("_instr", "_by_key")

    def __init__(self) -> None:
        self._instr = None
        self._by_key: dict[str, Counter] = {}

    def get(self, instr, key: str, name: str, **labels: str) -> Counter:
        if instr is not self._instr:
            self._instr = instr
            self._by_key = {}
        counter = self._by_key.get(key)
        if counter is None:
            counter = self._by_key[key] = instr.counter_handle(name, **labels)
        return counter

    def probe(self, instr, key: str) -> Optional[Counter]:
        """Steady-state half of :meth:`get`: no label kwargs are built.

        Returns ``None`` on the first call per (handle, key) — the caller
        then binds once via :meth:`get`, which does build the labels."""
        if instr is not self._instr:
            self._instr = instr
            self._by_key = {}
            return None
        return self._by_key.get(key)


class NullInstrumentation:
    """The default: the same surface as :class:`Instrumentation`, inert."""

    enabled = False
    #: dormant flight recorder (``enabled`` False, records nothing)
    flight = NULL_FLIGHT
    #: phase timers are off (call sites check ``is not None``)
    phases = None

    def span(self, name: str, *, remote=None, mint: bool = False, **attrs: str) -> _NullSpan:
        return _NULL_SPAN

    def count(self, name: str, value: int = 1, **labels: str) -> None:
        pass

    def gauge(self, name: str, value: float, **labels: str) -> None:
        pass

    def observe(self, name: str, value: float, **labels: str) -> None:
        pass

    def counter_handle(self, name: str, **labels: str):
        """An inert pre-bound counter — binding sites need no branches."""
        return NULL_COUNTER

    def gauge_handle(self, name: str, **labels: str):
        return NULL_GAUGE

    def histogram_handle(self, name: str, **labels: str):
        return NULL_HISTOGRAM

    def record_wire(self, observation) -> None:
        pass

    def trace_context(self) -> None:
        return None

    def lineage_event(self, lineage_id, state: str, **detail) -> None:
        pass

    def lineage_delivered(
        self, lineage_id, *, family: str, hops: int, sink: str, via: str = "push"
    ) -> None:
        pass


#: shared inert instance; ``SimulatedNetwork`` starts out pointing at it
NULL_INSTRUMENTATION = NullInstrumentation()


class Instrumentation:
    """Live metrics registry + tracer + wire capture on one virtual clock."""

    enabled = True

    def __init__(
        self,
        clock,
        *,
        max_frames: Optional[int] = None,
        span_sample_every: int = 1,
    ) -> None:
        self.clock = clock
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(clock, sample_every=span_sample_every)
        self.capture = WireCapture(max_frames=max_frames)
        self.ledger = LineageLedger(clock)
        # instance-attribute fast path: span() and trace_context() are pure
        # delegations, so bind the tracer methods directly and skip a frame
        # on the two hottest obs entry points
        self.span = self.tracer.span
        self.trace_context = self.tracer.continuation
        self._ledger_record = self.ledger.record
        #: flight recorder: dormant until :meth:`enable_flight`
        self.flight = NULL_FLIGHT
        #: phase timers: off until :meth:`enable_phase_timers`
        self.phases: Optional["PhaseTimers"] = None
        # hot-path aliases: count()/gauge() write through these directly
        self._counters = self.metrics._counters
        self._gauges = self.metrics._gauges
        # pre-bound latency histograms, one per (family, hops) pair
        self._latency_histograms: dict[tuple[str, int], object] = {}

    @classmethod
    def attach(
        cls,
        network: "SimulatedNetwork",
        *,
        max_frames: Optional[int] = None,
        span_sample_every: int = 1,
    ) -> "Instrumentation":
        """Create on the network's clock and install in one step."""
        return cls(
            network.clock,
            max_frames=max_frames,
            span_sample_every=span_sample_every,
        ).install(network)

    def install(self, network: "SimulatedNetwork") -> "Instrumentation":
        """Point the network (and everything holding it) at this handle."""
        network.instrumentation = self
        network.wire_observers.append(self.capture.record)
        return self

    def uninstall(self, network: "SimulatedNetwork") -> None:
        network.instrumentation = NULL_INSTRUMENTATION
        if self.capture.record in network.wire_observers:
            network.wire_observers.remove(self.capture.record)

    # --- continuous-telemetry attachments -----------------------------------

    def enable_flight(self, capacity: int = DEFAULT_CAPACITY) -> FlightRecorder:
        """Arm the flight recorder (idempotent for a matching capacity)."""
        if not (self.flight.enabled and self.flight.capacity == capacity):
            self.flight = FlightRecorder(self.clock, capacity)
        return self.flight

    def enable_phase_timers(self) -> "PhaseTimers":
        """Arm the publish→route→serialize→deliver wall-clock timers."""
        if self.phases is None:
            from repro.obs.probes import PhaseTimers

            self.phases = PhaseTimers()
        return self.phases

    # --- the hot-path surface ---------------------------------------------

    def span(
        self,
        name: str,
        *,
        remote: Optional["LineageContext"] = None,
        mint: bool = False,
        **attrs: str,
    ):
        return self.tracer.span(name, remote=remote, mint=mint, **attrs)

    def count(self, name: str, value: int = 1, **labels: str) -> None:
        # inlined registry access: one tuple, one dict probe, no strings
        key = (name, tuple(sorted(labels.items()))) if labels else (name, ())
        counter = self._counters.get(key)
        if counter is None:
            counter = self._counters[key] = Counter()
        counter.value += value

    def gauge(self, name: str, value: float, **labels: str) -> None:
        key = (name, tuple(sorted(labels.items()))) if labels else (name, ())
        gauge = self._gauges.get(key)
        if gauge is None:
            gauge = self._gauges[key] = Gauge()
        gauge.value = float(value)

    def observe(self, name: str, value: float, **labels: str) -> None:
        self.metrics.histogram(name, **labels).observe(value)

    def counter_handle(self, name: str, **labels: str) -> Counter:
        """A pre-bound counter for per-notification sites.

        The returned handle stays valid across :meth:`reset` (reset zeroes
        in place).  Binding sites cache it keyed on the instrumentation
        *identity*, so swapping the network's handle rebinds naturally.
        """
        return self.metrics.counter(name, **labels)

    def gauge_handle(self, name: str, **labels: str) -> Gauge:
        return self.metrics.gauge(name, **labels)

    def histogram_handle(self, name: str, **labels: str):
        return self.metrics.histogram(name, **labels)

    def record_wire(self, observation) -> None:
        self.capture.record(observation)

    # --- lineage -----------------------------------------------------------

    def trace_context(self) -> Optional["LineageContext"]:
        """The current span's lineage context (sender hop), or ``None``.

        ``None`` exactly when no lineage-bearing span is active — which is
        also when wire injection must not happen, so call sites can gate on
        the return value alone.
        """
        return self.tracer.continuation()

    def lineage_event(self, lineage_id: Optional[str], state: str, **detail) -> None:
        """Record one ledger transition; a ``None`` lineage id is ignored
        (untraced traffic, e.g. management calls)."""
        if lineage_id is not None:
            self._ledger_record(lineage_id, state, **detail)

    def lineage_delivered(
        self,
        lineage_id: Optional[str],
        *,
        family: str,
        hops: int,
        sink: str,
        via: str = "push",
    ) -> None:
        """Close one obligation as delivered and observe its end-to-end
        latency into the SLO histograms."""
        if lineage_id is None:
            return
        published = self.ledger.published_at(lineage_id)
        self.ledger.record(
            lineage_id, "delivered", sink=sink, via=via, hops=hops
        )
        if published is not None:
            histogram = self._latency_histograms.get((family, hops))
            if histogram is None:
                from repro.obs.slo import DELIVERY_LATENCY_METRIC, SLO_BUCKETS

                histogram = self._latency_histograms[(family, hops)] = (
                    self.metrics.histogram(
                        DELIVERY_LATENCY_METRIC,
                        buckets=SLO_BUCKETS,
                        family=family,
                        hops=str(hops),
                    )
                )
            histogram.observe(self.clock.now() - published)

    # --- lifecycle ---------------------------------------------------------

    def snapshot(self) -> dict:
        """Deterministic state of all layers (see also exporters)."""
        snap = {
            "clock": round(self.clock.now(), 9),
            "metrics": self.metrics.snapshot(),
            "spans": [span.to_dict() for span in self.tracer.spans],
            "wire": self.capture.snapshot(),
            "lineage": self.ledger.snapshot(),
        }
        if self.flight.enabled:
            snap["flight"] = self.flight.snapshot()
        if self.phases is not None:
            snap["phases"] = self.phases.snapshot(include_wall=False)
        return snap

    def reset(self) -> None:
        """Zero everything between benchmark phases."""
        self.metrics.reset()
        self.tracer.reset()
        self.capture.reset()
        self.ledger.reset()
        self.flight.reset()
        if self.phases is not None:
            self.phases.reset()
