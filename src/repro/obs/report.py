"""``python -m repro obs-report`` — the observability subsystem, demonstrated.

Runs a small canonical mediation scenario with full instrumentation — an
external WS-Eventing source bridged into the WS-Messenger broker, fanned
out to a WSE sink and a WSN consumer, plus one doomed delivery into a
firewalled zone — and renders the text and JSON reports.  Everything runs
on the virtual clock, so the output is byte-identical across invocations.
"""

from __future__ import annotations

from repro.obs.exporters import (
    render_json_report,
    render_text_report,
    reset_cache_stats,
)
from repro.obs.instrument import Instrumentation

DEMO_TOPIC = "obs/demo"


def run_demo_scenario() -> Instrumentation:
    """The instrumented mediated-publish lifecycle; returns the handle.

    Exercises the full lineage story on one publish: a WSE-origin message
    mediated by the broker, pushed to a WSE sink and a WSN consumer, and —
    for the consumer behind the firewall — retried, parked in a message box
    and finally drained by pull from inside the zone.  Every hop carries
    the same lineage id, so the trace tree, ledger and latency histograms
    all reconstruct from SOAP headers alone.
    """
    from repro.delivery import DeliveryPolicy
    from repro.messenger import WsMessenger, mediation
    from repro.transport import MessageLost, SimulatedNetwork, VirtualClock
    from repro.wsa.headers import reset_message_counter
    from repro.wse import EventSink, EventSource, WseSubscriber
    from repro.wsn import NotificationConsumer, PullPointClient, WsnSubscriber
    from repro.xmlkit import parse_xml

    reset_message_counter()
    reset_cache_stats()
    network = SimulatedNetwork(VirtualClock())
    instrumentation = Instrumentation.attach(network)

    # an external WSE source bridged into the broker (publisher side)
    source = EventSource(
        network, "http://obs-wse-source", topic_header=mediation.WSE_TOPIC_HEADER
    )
    broker = WsMessenger(
        network,
        "http://obs-broker",
        delivery=DeliveryPolicy(max_attempts=3, breaker_failure_threshold=3),
    )
    broker.bridge_from_wse_source(source.epr())

    # consumers of both families behind the broker front door
    sink = EventSink(network, "http://obs-wse-sink")
    WseSubscriber(network).subscribe(broker.epr(), notify_to=sink.epr())
    consumer = NotificationConsumer(network, "http://obs-wsn-consumer")
    WsnSubscriber(network).subscribe(broker.epr(), consumer.epr(), topic=DEMO_TOPIC)

    # one consumer behind a stateful firewall: its push delivery must fail,
    # park in a broker-side message box, and be drained by pull from inside
    network.add_zone("intranet", blocks_inbound=True)
    doomed = NotificationConsumer(network, "http://obs-doomed", zone="intranet")
    WsnSubscriber(network, zone="intranet").subscribe(
        broker.epr(), doomed.epr(), topic=DEMO_TOPIC
    )

    # one flaky consumer: its first two pushes are lost in flight, so the
    # scheduler-fired retries (which rejoin the trace through the task's
    # carried lineage context) appear in the span tree and the ledger
    flaky = NotificationConsumer(network, "http://obs-flaky")
    WsnSubscriber(network).subscribe(broker.epr(), flaky.epr(), topic=DEMO_TOPIC)
    drops = {"remaining": 2}

    def _drop_first_pushes(address: str, request: bytes) -> None:
        if address == flaky.address and drops["remaining"] > 0:
            drops["remaining"] -= 1
            raise MessageLost(address)

    network.observers.append(_drop_first_pushes)

    event = parse_xml(
        '<obs:Reading xmlns:obs="urn:obs-demo"><obs:value>42</obs:value></obs:Reading>'
    )
    source.publish(event, topic=DEMO_TOPIC)
    broker.run_deliveries_until_idle()

    # the firewalled consumer drains its parked message from inside the zone
    # (client-initiated GetMessages passes the firewall; the box handler
    # closes the parked obligation as delivered-via-pull)
    box = broker.message_boxes.get(doomed.address)
    if box is not None and len(box):
        PullPointClient(network, zone="intranet").get_messages(box.epr())

    # one unreachable push for the third failure outcome
    try:
        network.send_request("http://obs-nowhere", b"probe")
    except Exception:
        pass
    return instrumentation


def obs_report_main(argv: list[str] | None = None) -> int:
    """CLI: print the text report, then the JSON document (``--json`` for
    JSON only, ``--text`` for text only)."""
    argv = list(argv or [])
    want_json = "--text" not in argv or "--json" in argv
    want_text = "--json" not in argv or "--text" in argv
    instrumentation = run_demo_scenario()
    title = "repro.obs report — mediated publish (WSE source -> broker -> WSE/WSN consumers)"
    try:
        if want_text:
            print(render_text_report(instrumentation, title=title))
        if want_text and want_json:
            print()
        if want_json:
            print(render_json_report(instrumentation, title=title))
    except BrokenPipeError:  # e.g. piped into `head`
        pass
    return 0
