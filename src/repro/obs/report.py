"""``python -m repro obs-report`` — the observability subsystem, demonstrated.

Runs a small canonical mediation scenario with full instrumentation — an
external WS-Eventing source bridged into the WS-Messenger broker, fanned
out to a WSE sink and a WSN consumer, plus one doomed delivery into a
firewalled zone — and renders the text and JSON reports.  Everything runs
on the virtual clock, so the output is byte-identical across invocations.
"""

from __future__ import annotations

from repro.obs.exporters import render_json_report, render_text_report
from repro.obs.instrument import Instrumentation

DEMO_TOPIC = "obs/demo"


def run_demo_scenario() -> Instrumentation:
    """The instrumented mediated-publish lifecycle; returns the handle."""
    from repro.messenger import WsMessenger, mediation
    from repro.transport import SimulatedNetwork, VirtualClock
    from repro.wse import EventSink, EventSource, WseSubscriber
    from repro.wsn import NotificationConsumer, WsnSubscriber
    from repro.xmlkit import parse_xml

    network = SimulatedNetwork(VirtualClock())
    instrumentation = Instrumentation.attach(network)

    # an external WSE source bridged into the broker (publisher side)
    source = EventSource(
        network, "http://obs-wse-source", topic_header=mediation.WSE_TOPIC_HEADER
    )
    broker = WsMessenger(network, "http://obs-broker")
    broker.bridge_from_wse_source(source.epr())

    # consumers of both families behind the broker front door
    sink = EventSink(network, "http://obs-wse-sink")
    WseSubscriber(network).subscribe(broker.epr(), notify_to=sink.epr())
    consumer = NotificationConsumer(network, "http://obs-wsn-consumer")
    WsnSubscriber(network).subscribe(broker.epr(), consumer.epr(), topic=DEMO_TOPIC)

    # one consumer behind a stateful firewall: its push delivery must fail,
    # giving the wire capture a firewall_blocked frame to show
    network.add_zone("intranet", blocks_inbound=True)
    doomed = NotificationConsumer(network, "http://obs-doomed", zone="intranet")
    WsnSubscriber(network).subscribe(broker.epr(), doomed.epr(), topic=DEMO_TOPIC)

    event = parse_xml(
        '<obs:Reading xmlns:obs="urn:obs-demo"><obs:value>42</obs:value></obs:Reading>'
    )
    source.publish(event, topic=DEMO_TOPIC)

    # one unreachable push for the third failure outcome
    try:
        network.send_request("http://obs-nowhere", b"probe")
    except Exception:
        pass
    return instrumentation


def obs_report_main(argv: list[str] | None = None) -> int:
    """CLI: print the text report, then the JSON document (``--json`` for
    JSON only, ``--text`` for text only)."""
    argv = list(argv or [])
    want_json = "--text" not in argv or "--json" in argv
    want_text = "--json" not in argv or "--text" in argv
    instrumentation = run_demo_scenario()
    title = "repro.obs report — mediated publish (WSE source -> broker -> WSE/WSN consumers)"
    try:
        if want_text:
            print(render_text_report(instrumentation, title=title))
        if want_text and want_json:
            print()
        if want_json:
            print(render_json_report(instrumentation, title=title))
    except BrokenPipeError:  # e.g. piped into `head`
        pass
    return 0
