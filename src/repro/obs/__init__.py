"""repro.obs — virtual-clock-aware observability for the simulation.

The paper's contribution is *comparative measurement*; this package is the
measurement substrate the reproduction itself runs on.  Four layers:

- :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket histograms
  in a snapshot/reset-able registry (per-spec-family request counters,
  latency distributions between benchmark phases);
- :mod:`repro.obs.tracing` — spans timed on the :class:`VirtualClock`
  with parent/child propagation through nested synchronous calls, so a
  mediated publish renders as ``deliver → dispatch → mediate → notify``;
- :mod:`repro.obs.capture` — per-exchange wire frames (zones, sizes,
  round-trip latency, outcome including lost/blocked/unreachable);
- :mod:`repro.obs.exporters` — a text report and a deterministic JSON
  document, exposed via ``python -m repro obs-report``.

On top of those, message lineage connects the story *across* hops:

- :mod:`repro.obs.propagation` — the W3C-traceparent-style SOAP header
  that carries (lineage id, parent span, hop) over the wire;
- :mod:`repro.obs.lineage` — the per-lineage state ledger
  (published → mediated → enqueued → attempted → delivered/…);
- :mod:`repro.obs.slo` — publish-to-delivery latency histograms with
  deterministic per-family/per-hop percentiles;
- :mod:`repro.obs.audit` — the conservation auditor behind
  ``python -m repro obs-audit``.

Continuous health telemetry rides alongside:

- :mod:`repro.obs.flight` — a bounded ring-buffer flight recorder of
  typed hot-path records (dormant by default, armed per run);
- :mod:`repro.obs.probes` — :class:`GaugeProbes` backlog sweeps on the
  virtual scheduler and the opt-in :class:`PhaseTimers` wall-clock
  phase totals;
- :mod:`repro.obs.health` — the scripted degraded-traffic scenario and
  anomaly probes behind ``python -m repro obs-health`` / ``obs-top``.

Everything hangs off one :class:`~repro.obs.instrument.Instrumentation`
handle installed on a :class:`~repro.transport.network.SimulatedNetwork`;
the default is a null object (:data:`NULL_INSTRUMENTATION`) so
uninstrumented runs pay near-zero cost.
"""

from repro.obs.capture import CapturedFrame, WireCapture
from repro.obs.exporters import build_report, render_json_report, render_text_report
from repro.obs.flight import FLIGHT_KINDS, NULL_FLIGHT, FlightRecord, FlightRecorder
from repro.obs.instrument import (
    NULL_INSTRUMENTATION,
    Instrumentation,
    NullInstrumentation,
)
from repro.obs.lineage import LineageEvent, LineageLedger
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.probes import PHASES, GaugeProbes, PhaseTimers
from repro.obs.propagation import LINEAGE_HEADER, LineageContext
from repro.obs.slo import slo_summary
from repro.obs.tracing import Span, Tracer

__all__ = [
    "CapturedFrame",
    "Counter",
    "FLIGHT_KINDS",
    "FlightRecord",
    "FlightRecorder",
    "Gauge",
    "GaugeProbes",
    "Histogram",
    "Instrumentation",
    "LINEAGE_HEADER",
    "LineageContext",
    "LineageEvent",
    "LineageLedger",
    "MetricsRegistry",
    "NULL_FLIGHT",
    "NULL_INSTRUMENTATION",
    "NullInstrumentation",
    "PHASES",
    "PhaseTimers",
    "Span",
    "Tracer",
    "WireCapture",
    "build_report",
    "render_json_report",
    "render_text_report",
    "slo_summary",
]
