"""A working single-endpoint WS-EventNotification prototype.

One subscription operation carries the union of both parents' power:

- WS-Eventing's ``Delivery`` extension point — push, pull or wrapped chosen
  *in the Subscribe message* (no pre-created pull point needed);
- WS-Notification's three-part ``Filter`` (TopicExpression +
  ProducerProperties + MessageContent, conjoined);
- duration *or* absolute expirations, renewable;
- GetStatus (from WSE) *and* Pause/Resume + GetCurrentMessage (from WSN);
- SubscriptionEnd notices (WSE) with a *defined* wrapped message format
  (which WSE 08/2004 left unspecified — Table 1's "Define Wrapped message
  format" gap, closed here).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.convergence.profile import WSEN_NS
from repro.filters.base import AcceptAllFilter, AndFilter, Filter, FilterContext, FilterError
from repro.filters.content import MessageContentFilter
from repro.filters.producer import ProducerPropertiesFilter
from repro.filters.topics import TopicFilter, TopicNamespace
from repro.soap.envelope import SoapEnvelope, SoapVersion
from repro.soap.fault import FaultCode, SoapFault
from repro.transport.endpoint import SoapClient, SoapEndpoint
from repro.transport.network import NetworkError, PUBLIC_ZONE, SimulatedNetwork
from repro.wsa.epr import EndpointReference
from repro.wsa.headers import MessageHeaders, apply_headers
from repro.wsa.versions import WsaVersion
from repro.wse.messages import decode_filter_namespaces, encode_filter_namespaces
from repro.xmlkit.element import XElem, text_element
from repro.xmlkit.names import Namespaces, QName
from repro.util.xstime import format_datetime, parse_expires

WSA = WsaVersion.V2005_08  # the converged spec binds the W3C recommendation


def _q(local: str) -> QName:
    return QName(WSEN_NS, local)


def _action(local: str) -> str:
    return f"{WSEN_NS}/{local}"


_DIALECT = QName("", "Dialect")
_MODE = QName("", "Mode")

MODE_PUSH = f"{WSEN_NS}/DeliveryModes/Push"
MODE_PULL = f"{WSEN_NS}/DeliveryModes/Pull"
MODE_WRAP = f"{WSEN_NS}/DeliveryModes/Wrap"


@dataclass
class ConvergedSubscription:
    id: str
    consumer: Optional[EndpointReference]
    mode: str
    filter: Filter
    topic_expression: Optional[str]
    expires: Optional[float]
    end_to: Optional[EndpointReference]
    use_raw: bool
    paused: bool = False
    queue: list[tuple[XElem, Optional[str]]] = field(default_factory=list)

    def is_expired(self, now: float) -> bool:
        return self.expires is not None and now >= self.expires


class ConvergedSource:
    """The prototype event source/producer (one endpoint + one manager)."""

    def __init__(
        self,
        network: SimulatedNetwork,
        address: str,
        *,
        topic_namespace: Optional[TopicNamespace] = None,
        default_lifetime: Optional[float] = 3600.0,
        wrapped_batch_size: int = 10,
        producer_properties: Optional[dict[str, str]] = None,
    ) -> None:
        self.network = network
        self.clock = network.clock
        self.default_lifetime = default_lifetime
        self.wrapped_batch_size = wrapped_batch_size
        self.topics = topic_namespace or TopicNamespace()
        self.producer_properties = dict(producer_properties or {})
        self._counter = itertools.count(1)
        self._subscriptions: dict[str, ConvergedSubscription] = {}
        self._current_message: dict[str, XElem] = {}
        self._client = SoapClient(network, wsa_version=WSA, soap_version=SoapVersion.V11)
        self.endpoint = SoapEndpoint(network, address)
        self.endpoint.on_action(_action("Subscribe"), self._handle_subscribe)
        self.endpoint.on_action(_action("GetCurrentMessage"), self._handle_get_current)
        self.manager_address = f"{address}/subscriptions"
        self.manager_endpoint = SoapEndpoint(network, self.manager_address)
        for local, handler in [
            ("Renew", self._handle_renew),
            ("GetStatus", self._handle_get_status),
            ("Unsubscribe", self._handle_unsubscribe),
            ("PauseSubscription", self._handle_pause),
            ("ResumeSubscription", self._handle_resume),
            ("Pull", self._handle_pull),
        ]:
            self.manager_endpoint.on_action(_action(local), handler)

    @property
    def address(self) -> str:
        return self.endpoint.address

    def epr(self) -> EndpointReference:
        return EndpointReference(self.address)

    def wsdl(self) -> str:
        """This prototype's self-description as a WSDL 1.1 document."""
        from repro.wsdl.generator import wsdl_for_converged_source

        return wsdl_for_converged_source(address=self.address).to_xml()

    def close(self) -> None:
        self.endpoint.close()
        self.manager_endpoint.close()

    # --- subscribe -----------------------------------------------------------------

    def _handle_subscribe(self, envelope: SoapEnvelope, headers: MessageHeaders):
        body = envelope.body_element()
        if body.name != _q("Subscribe"):
            raise SoapFault(FaultCode.SENDER, f"expected wsen:Subscribe, got {body.name}")
        delivery = body.find(_q("Delivery"))
        mode = delivery.attrs.get(_MODE, MODE_PUSH) if delivery is not None else MODE_PUSH
        if mode not in (MODE_PUSH, MODE_PULL, MODE_WRAP):
            raise SoapFault(
                FaultCode.SENDER,
                f"unknown delivery mode {mode!r}",
                subcode=_q("DeliveryModeRequestedUnavailable"),
            )
        consumer_elem = body.find(_q("ConsumerReference"))
        consumer = (
            EndpointReference.from_element(consumer_elem, WSA)
            if consumer_elem is not None
            else None
        )
        if mode in (MODE_PUSH, MODE_WRAP) and consumer is None:
            raise SoapFault(
                FaultCode.SENDER, "push/wrapped delivery requires ConsumerReference"
            )
        end_elem = body.find(_q("EndTo"))
        end_to = EndpointReference.from_element(end_elem, WSA) if end_elem is not None else None
        subscription_filter, topic_expression = self._build_filter(body)
        expires_elem = body.find(_q("Expires"))
        expires = self._grant_expiry(
            expires_elem.full_text().strip() if expires_elem is not None else None
        )
        use_raw = body.find(_q("UseRaw")) is not None
        subscription = ConvergedSubscription(
            id=f"wsen-sub-{next(self._counter)}",
            consumer=consumer,
            mode=mode,
            filter=subscription_filter,
            topic_expression=topic_expression,
            expires=expires,
            end_to=end_to,
            use_raw=use_raw,
        )
        self._subscriptions[subscription.id] = subscription
        response = XElem(_q("SubscribeResponse"))
        manager = EndpointReference(self.manager_address)
        manager.with_parameter(text_element(_q("Identifier"), subscription.id))
        response.append(manager.to_element(WSA, _q("SubscriptionManager")))
        response.append(text_element(_q("Expires"), self._expires_text(expires)))
        response.append(text_element(_q("CurrentTime"), format_datetime(self.clock.now())))
        return self._reply(headers, _action("SubscribeResponse"), response)

    def _build_filter(self, body: XElem) -> tuple[Filter, Optional[str]]:
        filter_elem = body.find(_q("Filter"))
        if filter_elem is None:
            return AcceptAllFilter(), None
        parts: list[Filter] = []
        topic_expression: Optional[str] = None
        topic = filter_elem.find(_q("TopicExpression"))
        try:
            if topic is not None:
                topic_expression = topic.full_text().strip()
                dialect = topic.attrs.get(_DIALECT, Namespaces.DIALECT_TOPIC_CONCRETE)
                parts.append(TopicFilter.parse(topic_expression, dialect))
            props = filter_elem.find(_q("ProducerProperties"))
            if props is not None:
                parts.append(
                    ProducerPropertiesFilter(
                        props.full_text().strip(), decode_filter_namespaces(props)
                    )
                )
            content = filter_elem.find(_q("MessageContent"))
            if content is not None:
                parts.append(
                    MessageContentFilter(
                        content.full_text().strip(), decode_filter_namespaces(content)
                    )
                )
        except FilterError as exc:
            raise SoapFault(
                FaultCode.SENDER, str(exc), subcode=_q("InvalidFilterFault")
            ) from exc
        if not parts:
            return AcceptAllFilter(), None
        return (parts[0] if len(parts) == 1 else AndFilter(parts)), topic_expression

    def _grant_expiry(self, text: Optional[str]) -> Optional[float]:
        now = self.clock.now()
        if text is None:
            return None if self.default_lifetime is None else now + self.default_lifetime
        try:
            requested = parse_expires(text, now)
        except ValueError as exc:
            raise SoapFault(
                FaultCode.SENDER, str(exc), subcode=_q("InvalidExpirationTime")
            ) from exc
        if requested is not None and requested <= now:
            raise SoapFault(
                FaultCode.SENDER,
                "expiration in the past",
                subcode=_q("InvalidExpirationTime"),
            )
        return requested

    def _expires_text(self, expires: Optional[float]) -> str:
        if expires is None:
            return format_datetime(self.clock.now() + 10 * 365 * 86400)
        return format_datetime(expires)

    # --- manager operations ----------------------------------------------------------

    def _subscription_for(self, headers: MessageHeaders) -> ConvergedSubscription:
        sub_id = ""
        for echoed in headers.echoed:
            if echoed.name == _q("Identifier"):
                sub_id = echoed.full_text().strip()
        subscription = self._subscriptions.get(sub_id)
        if subscription is None or subscription.is_expired(self.clock.now()):
            raise SoapFault(
                FaultCode.SENDER,
                f"unknown subscription {sub_id!r}",
                subcode=_q("UnknownSubscription"),
            )
        return subscription

    def _handle_renew(self, envelope: SoapEnvelope, headers: MessageHeaders):
        subscription = self._subscription_for(headers)
        expires_elem = envelope.body_element().find(_q("Expires"))
        subscription.expires = self._grant_expiry(
            expires_elem.full_text().strip() if expires_elem is not None else None
        )
        response = XElem(_q("RenewResponse"))
        response.append(text_element(_q("Expires"), self._expires_text(subscription.expires)))
        return self._reply(headers, _action("RenewResponse"), response)

    def _handle_get_status(self, envelope: SoapEnvelope, headers: MessageHeaders):
        subscription = self._subscription_for(headers)
        response = XElem(_q("GetStatusResponse"))
        response.append(text_element(_q("Expires"), self._expires_text(subscription.expires)))
        response.append(
            text_element(_q("Status"), "Paused" if subscription.paused else "Active")
        )
        return self._reply(headers, _action("GetStatusResponse"), response)

    def _handle_unsubscribe(self, envelope: SoapEnvelope, headers: MessageHeaders):
        subscription = self._subscription_for(headers)
        del self._subscriptions[subscription.id]
        return self._reply(
            headers, _action("UnsubscribeResponse"), XElem(_q("UnsubscribeResponse"))
        )

    def _handle_pause(self, envelope: SoapEnvelope, headers: MessageHeaders):
        subscription = self._subscription_for(headers)
        subscription.paused = True
        return self._reply(
            headers,
            _action("PauseSubscriptionResponse"),
            XElem(_q("PauseSubscriptionResponse")),
        )

    def _handle_resume(self, envelope: SoapEnvelope, headers: MessageHeaders):
        subscription = self._subscription_for(headers)
        subscription.paused = False
        if subscription.mode is not None and subscription.mode != MODE_PULL:
            backlog, subscription.queue = subscription.queue, []
            for payload, topic in backlog:
                self._deliver(subscription, payload, topic)
        return self._reply(
            headers,
            _action("ResumeSubscriptionResponse"),
            XElem(_q("ResumeSubscriptionResponse")),
        )

    def _handle_pull(self, envelope: SoapEnvelope, headers: MessageHeaders):
        subscription = self._subscription_for(headers)
        if subscription.mode != MODE_PULL:
            raise SoapFault(FaultCode.SENDER, "subscription is not in pull mode")
        response = XElem(_q("PullResponse"))
        for payload, topic in subscription.queue:
            response.append(self._wrap_one(payload, topic))
        subscription.queue.clear()
        return self._reply(headers, _action("PullResponse"), response)

    def _handle_get_current(self, envelope: SoapEnvelope, headers: MessageHeaders):
        topic_elem = envelope.body_element().find(_q("Topic"))
        topic = topic_elem.full_text().strip() if topic_elem is not None else ""
        payload = self._current_message.get(topic)
        if payload is None:
            raise SoapFault(
                FaultCode.SENDER,
                f"no current message on {topic!r}",
                subcode=_q("NoCurrentMessageOnTopic"),
            )
        response = XElem(_q("GetCurrentMessageResponse"))
        response.append(payload.copy())
        return self._reply(headers, _action("GetCurrentMessageResponse"), response)

    def _reply(self, request_headers: MessageHeaders, action: str, body: XElem) -> SoapEnvelope:
        reply = SoapEnvelope(SoapVersion.V11)
        apply_headers(reply, MessageHeaders.reply(request_headers, action, WSA), WSA)
        reply.add_body(body)
        return reply

    # --- publication -----------------------------------------------------------------

    def publish(self, payload: XElem, *, topic: Optional[str] = None) -> int:
        if topic is not None:
            self.topics.validate_publication(topic)
            self._current_message[topic] = payload.copy()
        now = self.clock.now()
        context = FilterContext(
            payload, topic=topic, producer_properties=self.producer_properties
        )
        matched = 0
        for subscription in list(self._subscriptions.values()):
            if subscription.is_expired(now):
                del self._subscriptions[subscription.id]
                self._send_end(subscription, "SubscriptionExpired")
                continue
            if not subscription.filter.matches(context):
                continue
            matched += 1
            if subscription.paused or subscription.mode == MODE_PULL:
                subscription.queue.append((payload.copy(), topic))
            elif subscription.mode == MODE_WRAP:
                subscription.queue.append((payload.copy(), topic))
                if len(subscription.queue) >= self.wrapped_batch_size:
                    self._flush(subscription)
            else:
                self._deliver(subscription, payload, topic)
        return matched

    def flush(self) -> None:
        for subscription in self._subscriptions.values():
            if subscription.mode == MODE_WRAP and subscription.queue and not subscription.paused:
                self._flush(subscription)

    def _wrap_one(self, payload: XElem, topic: Optional[str]) -> XElem:
        """The *defined* wrapped entry format (closing WSE's gap)."""
        entry = XElem(_q("Notification"))
        if topic is not None:
            entry.append(text_element(_q("Topic"), topic))
        message = XElem(_q("Message"))
        message.append(payload.copy())
        entry.append(message)
        return entry

    def _deliver(self, subscription: ConvergedSubscription, payload: XElem, topic):
        extra = [text_element(_q("Topic"), topic)] if topic is not None else []
        try:
            if subscription.use_raw:
                self._client.call(
                    subscription.consumer,
                    _action("Notify"),
                    [payload.copy()],
                    expect_reply=False,
                    extra_headers=extra,
                )
            else:
                wrapper = XElem(_q("Notifications"))
                wrapper.append(self._wrap_one(payload, topic))
                self._client.call(
                    subscription.consumer, _action("Notify"), [wrapper], expect_reply=False
                )
        except (NetworkError, SoapFault) as exc:
            del self._subscriptions[subscription.id]
            self._send_end(subscription, f"DeliveryFailure: {exc}")

    def _flush(self, subscription: ConvergedSubscription) -> None:
        batch, subscription.queue = subscription.queue, []
        wrapper = XElem(_q("Notifications"))
        for payload, topic in batch:
            wrapper.append(self._wrap_one(payload, topic))
        try:
            self._client.call(
                subscription.consumer, _action("Notify"), [wrapper], expect_reply=False
            )
        except (NetworkError, SoapFault) as exc:
            del self._subscriptions[subscription.id]
            self._send_end(subscription, f"DeliveryFailure: {exc}")

    def _send_end(self, subscription: ConvergedSubscription, reason: str) -> None:
        if subscription.end_to is None:
            return
        body = XElem(_q("SubscriptionEnd"))
        body.append(text_element(_q("Identifier"), subscription.id))
        body.append(text_element(_q("Reason"), reason))
        try:
            self._client.call(
                subscription.end_to, _action("SubscriptionEnd"), [body], expect_reply=False
            )
        except (NetworkError, SoapFault) as exc:
            # the EndTo sink may be the thing that died; record the skip
            self.network.instrumentation.count(
                "obs.swallowed_errors_total",
                site="convergence.send_end",
                kind=type(exc).__name__,
            )

    def live_count(self) -> int:
        now = self.clock.now()
        return sum(1 for s in self._subscriptions.values() if not s.is_expired(now))


@dataclass
class ConvergedHandle:
    manager: EndpointReference
    sub_id: str
    expires_text: str


class ConvergedConsumer:
    """A consumer endpoint for the converged Notify/SubscriptionEnd shapes."""

    def __init__(
        self, network: SimulatedNetwork, address: str, *, zone: str = PUBLIC_ZONE
    ) -> None:
        self.endpoint = SoapEndpoint(network, address, zone=zone)
        self.received: list[tuple[XElem, Optional[str], bool]] = []  # payload/topic/wrapped
        self.ends: list[str] = []
        self.endpoint.on_action(_action("Notify"), self._handle_notify)
        self.endpoint.on_action(_action("SubscriptionEnd"), self._handle_end)

    @property
    def address(self) -> str:
        return self.endpoint.address

    def epr(self) -> EndpointReference:
        return EndpointReference(self.address)

    def close(self) -> None:
        self.endpoint.close()

    def _handle_notify(self, envelope: SoapEnvelope, headers: MessageHeaders):
        body = envelope.body_element()
        if body.name == _q("Notifications"):
            for entry in body.find_all(_q("Notification")):
                topic_elem = entry.find(_q("Topic"))
                topic = topic_elem.full_text().strip() if topic_elem is not None else None
                payload = next(entry.require(_q("Message")).elements())
                self.received.append((payload.copy(), topic, True))
        else:
            topic = envelope.header_text(_q("Topic"))
            self.received.append((body.copy(), topic, False))
        return None

    def _handle_end(self, envelope: SoapEnvelope, headers: MessageHeaders):
        reason = envelope.body_element().find(_q("Reason"))
        self.ends.append(reason.full_text().strip() if reason is not None else "")
        return None


class ConvergedSubscriber:
    """Client API for the converged prototype."""

    def __init__(self, network: SimulatedNetwork, *, zone: str = PUBLIC_ZONE) -> None:
        self._client = SoapClient(
            network, zone=zone, wsa_version=WSA, soap_version=SoapVersion.V11
        )

    def subscribe(
        self,
        source: EndpointReference,
        *,
        consumer: Optional[EndpointReference] = None,
        mode: str = MODE_PUSH,
        topic: Optional[str] = None,
        topic_dialect: str = Namespaces.DIALECT_TOPIC_CONCRETE,
        message_content: Optional[str] = None,
        producer_properties: Optional[str] = None,
        namespaces: Optional[dict[str, str]] = None,
        expires: Optional[str] = None,
        end_to: Optional[EndpointReference] = None,
        use_raw: bool = False,
    ) -> ConvergedHandle:
        body = XElem(_q("Subscribe"))
        if consumer is not None:
            body.append(consumer.to_element(WSA, _q("ConsumerReference")))
        if mode != MODE_PUSH:
            delivery = XElem(_q("Delivery"))
            delivery.attrs[_MODE] = mode
            body.append(delivery)
        if end_to is not None:
            body.append(end_to.to_element(WSA, _q("EndTo")))
        if topic or message_content or producer_properties:
            filter_elem = XElem(_q("Filter"))
            if topic is not None:
                topic_part = text_element(_q("TopicExpression"), topic)
                topic_part.attrs[_DIALECT] = topic_dialect
                filter_elem.append(topic_part)
            if producer_properties is not None:
                props = text_element(_q("ProducerProperties"), producer_properties)
                if namespaces:
                    encode_filter_namespaces(props, namespaces)
                filter_elem.append(props)
            if message_content is not None:
                content = text_element(_q("MessageContent"), message_content)
                if namespaces:
                    encode_filter_namespaces(content, namespaces)
                filter_elem.append(content)
            body.append(filter_elem)
        if expires is not None:
            body.append(text_element(_q("Expires"), expires))
        if use_raw:
            body.append(XElem(_q("UseRaw")))
        reply = self._client.call(source, _action("Subscribe"), [body])
        response = reply.body_element()
        manager = EndpointReference.from_element(
            response.require(_q("SubscriptionManager")), WSA
        )
        expires_elem = response.find(_q("Expires"))
        return ConvergedHandle(
            manager,
            manager.parameter_text(_q("Identifier")) or "",
            expires_elem.full_text().strip() if expires_elem is not None else "",
        )

    def _manager_call(self, handle: ConvergedHandle, local: str, body: XElem) -> XElem:
        reply = self._client.call(handle.manager, _action(local), [body])
        if reply is None:
            raise SoapFault(FaultCode.RECEIVER, f"no response to {local}")
        return reply.body_element()

    def renew(self, handle: ConvergedHandle, expires: Optional[str] = None) -> str:
        body = XElem(_q("Renew"))
        if expires is not None:
            body.append(text_element(_q("Expires"), expires))
        response = self._manager_call(handle, "Renew", body)
        expires_elem = response.find(_q("Expires"))
        return expires_elem.full_text().strip() if expires_elem is not None else ""

    def get_status(self, handle: ConvergedHandle) -> str:
        response = self._manager_call(handle, "GetStatus", XElem(_q("GetStatus")))
        status = response.find(_q("Status"))
        return status.full_text().strip() if status is not None else ""

    def unsubscribe(self, handle: ConvergedHandle) -> None:
        self._manager_call(handle, "Unsubscribe", XElem(_q("Unsubscribe")))

    def pause(self, handle: ConvergedHandle) -> None:
        self._manager_call(handle, "PauseSubscription", XElem(_q("PauseSubscription")))

    def resume(self, handle: ConvergedHandle) -> None:
        self._manager_call(handle, "ResumeSubscription", XElem(_q("ResumeSubscription")))

    def pull(self, handle: ConvergedHandle) -> list[tuple[XElem, Optional[str]]]:
        response = self._manager_call(handle, "Pull", XElem(_q("Pull")))
        results: list[tuple[XElem, Optional[str]]] = []
        for entry in response.find_all(_q("Notification")):
            topic_elem = entry.find(_q("Topic"))
            topic = topic_elem.full_text().strip() if topic_elem is not None else None
            payload = next(entry.require(_q("Message")).elements())
            results.append((payload.copy(), topic))
        return results

    def get_current_message(self, source: EndpointReference, topic: str) -> XElem:
        body = XElem(_q("GetCurrentMessage"))
        body.append(text_element(_q("Topic"), topic))
        reply = self._client.call(source, _action("GetCurrentMessage"), [body])
        return next(reply.body_element().elements()).copy()
