"""A WS-EventNotification prototype: the paper's predicted convergence.

The paper closes: "a white paper [29] from IBM, Microsoft, HP and Intel
proposes creating a new standard, WS-EventNotification, that will integrate
functions from WS-Notification with WS-Eventing".  That standard never
shipped, but its feature set is fully determined by the paper's own Table 1:
the union of what the two families converged toward.  This package builds
that union as a working prototype:

- :mod:`repro.convergence.profile` -- the converged capability profile,
  computed from (not hand-written alongside) the WSE 08/2004 and WSN 1.3
  profiles, plus a Table-1-style column for it;
- :mod:`repro.convergence.service` -- a single-endpoint event source
  implementing the union: WSE's Delivery extension point (push / pull /
  wrapped selected *in the Subscribe message*), GetStatus and
  SubscriptionEnd, duration expirations, **and** WSN's three-part filter
  (topic / producer-properties / message-content), Pause/Resume,
  GetCurrentMessage and a defined wrapped format.

This is an *extension beyond the paper's artifacts* (experiment E9 in
EXPERIMENTS.md): it demonstrates that the converged spec the paper
anticipates is implementable on this stack with no new substrate.
"""

from repro.convergence.profile import ConvergedProfile, converged_table_column
from repro.convergence.service import (
    MODE_PULL,
    MODE_PUSH,
    MODE_WRAP,
    ConvergedConsumer,
    ConvergedSource,
    ConvergedSubscriber,
)

__all__ = [
    "ConvergedProfile",
    "converged_table_column",
    "ConvergedSource",
    "ConvergedConsumer",
    "ConvergedSubscriber",
    "MODE_PUSH",
    "MODE_PULL",
    "MODE_WRAP",
]
