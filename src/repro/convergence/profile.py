"""The converged capability profile, computed from the parents' profiles."""

from __future__ import annotations

from dataclasses import dataclass

from repro.wse.versions import WseVersion
from repro.wsn.versions import WsnVersion

#: namespace of the prototype (clearly marked non-standard)
WSEN_NS = "http://repro.invalid/ws-en/2006/draft"

#: Table-1 capability rows that are *capabilities* (union semantics: the
#: converged spec has the feature if either parent does)
_CAPABILITY_FLAGS = [
    ("separate_subscription_manager", "Separate Subscription Manager & Event Source"),
    ("separate_subscriber", "Separate subscriber & Event Sink"),
    ("has_get_status", "Getstatus operation"),
    ("subscription_id_in_epr", "Return subscriptionId in WSA of Subscription Manager"),
    ("supports_wrapped_delivery", "Support Wrapped delivery mode"),
    ("supports_pull_delivery", "Support Pull delivery mode"),
    ("supports_duration_expiry", "Specify subscription expiration using duration"),
    ("defines_xpath_dialect", "Specify XPath dialect"),
    ("has_filter_element", "Filter element in Subscription message"),
    ("defines_get_current_message", "GetCurrentMessage operation"),
    ("defines_wrapped_format", "Define Wrapped message format"),
    ("separates_producer_and_publisher", "Separate EventProducer & Publisher"),
    ("defines_pull_point_interface", "Define PullPoint interface"),
    ("pull_mode_in_subscription", "Specify pull delivery mode in subscription"),
    ("defines_pause_resume", "Pause/Resume subscriptions defined"),
]

#: rows that are *obligations* (intersection semantics: the converged spec
#: only keeps a requirement both parents agree on — the trend of every
#: convergence step in Table 1 was to relax, not add, obligations)
_OBLIGATION_FLAGS = [
    ("requires_wsrf", "Require WSRF"),
    ("requires_topic", "Require a topic in subscription"),
    ("requires_status_query", "Require Getstatus"),
    ("requires_subscription_end", "Require SubscriptionEnd"),
]


@dataclass(frozen=True)
class ConvergedProfile:
    """Feature profile of the WS-EventNotification prototype."""

    wse_parent: WseVersion = WseVersion.V2004_08
    wsn_parent: WsnVersion = WsnVersion.V1_3

    @property
    def namespace(self) -> str:
        return WSEN_NS

    def capability(self, flag: str) -> bool:
        return bool(
            getattr(self.wse_parent, flag, False) or getattr(self.wsn_parent, flag, False)
        )

    def obligation(self, flag: str) -> bool:
        return bool(
            getattr(self.wse_parent, flag, False) and getattr(self.wsn_parent, flag, False)
        )

    def dominates_parents(self) -> bool:
        """Capability-dominance: every capability of either parent is kept,
        and no obligation beyond what both parents already impose is added."""
        for flag, _label in _CAPABILITY_FLAGS:
            for parent in (self.wse_parent, self.wsn_parent):
                if getattr(parent, flag, False) and not self.capability(flag):
                    return False
        for flag, _label in _OBLIGATION_FLAGS:
            if self.obligation(flag) and not (
                getattr(self.wse_parent, flag, False)
                and getattr(self.wsn_parent, flag, False)
            ):
                return False
        return True

    def feature_rows(self) -> list[tuple[str, bool]]:
        rows = [(label, self.capability(flag)) for flag, label in _CAPABILITY_FLAGS]
        rows.extend((label, self.obligation(flag)) for flag, label in _OBLIGATION_FLAGS)
        return rows


def converged_table_column() -> dict[str, bool]:
    """The WS-EventNotification column, keyed by Table-1-style row label."""
    return dict(ConvergedProfile().feature_rows())
