"""Endpoint references.

An :class:`EndpointReference` is how both specifications address event sinks,
subscription managers, notification consumers and pull points.  The paper
highlights (section V.4, category 1) that WS-Eventing returns the
subscription identifier inside ``ReferenceParameters`` while the
WS-BaseNotification of the day used ``ReferenceProperties`` — both are
modelled here, selected by the WS-Addressing version profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.wsa.versions import WsaVersion
from repro.xmlkit.element import XElem, text_element
from repro.xmlkit.names import QName


@dataclass
class EndpointReference:
    """A WS-Addressing endpoint reference.

    ``reference_parameters`` / ``reference_properties`` are opaque elements
    that the sender must echo as SOAP headers when addressing the endpoint —
    this is the mechanism both specs use to route subscription-manager
    operations to the right subscription resource.
    """

    address: str
    reference_parameters: list[XElem] = field(default_factory=list)
    reference_properties: list[XElem] = field(default_factory=list)

    def with_parameter(self, element: XElem) -> "EndpointReference":
        self.reference_parameters.append(element)
        return self

    def with_property(self, element: XElem) -> "EndpointReference":
        self.reference_properties.append(element)
        return self

    def parameter(self, name: QName) -> Optional[XElem]:
        for elem in self.reference_parameters:
            if elem.name == name:
                return elem
        for elem in self.reference_properties:
            if elem.name == name:
                return elem
        return None

    def parameter_text(self, name: QName) -> Optional[str]:
        elem = self.parameter(name)
        return elem.full_text().strip() if elem is not None else None

    # --- serialization ----------------------------------------------------

    def to_element(self, version: WsaVersion, name: QName | None = None) -> XElem:
        """Serialize under a wrapper name (default ``wsa:EndpointReference``)."""
        wrapper = XElem(name or version.qname("EndpointReference"))
        wrapper.append(text_element(version.qname("Address"), self.address))
        if self.reference_properties:
            if not version.supports_reference_properties:
                # 2005/08 dropped ReferenceProperties; fold into parameters,
                # which is exactly what the WSN 1.3 migration did.
                for elem in self.reference_properties:
                    self.reference_parameters.append(elem)
            else:
                props = XElem(version.qname("ReferenceProperties"))
                for elem in self.reference_properties:
                    props.append(elem.copy())
                wrapper.append(props)
        if self.reference_parameters:
            if not version.supports_reference_parameters:
                # 2003/03 predates ReferenceParameters: carry as properties.
                props = wrapper.find(version.qname("ReferenceProperties"))
                if props is None:
                    props = XElem(version.qname("ReferenceProperties"))
                    wrapper.append(props)
                for elem in self.reference_parameters:
                    props.append(elem.copy())
            else:
                params = XElem(version.qname("ReferenceParameters"))
                for elem in self.reference_parameters:
                    params.append(elem.copy())
                wrapper.append(params)
        return wrapper

    # --- parsing --------------------------------------------------------------

    @classmethod
    def from_element(cls, element: XElem, version: WsaVersion) -> "EndpointReference":
        address_elem = element.find(version.qname("Address"))
        if address_elem is None:
            raise ValueError(f"<{element.name}> has no wsa:Address")
        epr = cls(address_elem.full_text().strip())
        params = element.find(version.qname("ReferenceParameters"))
        if params is not None:
            epr.reference_parameters = [child.copy() for child in params.elements()]
        props = element.find(version.qname("ReferenceProperties"))
        if props is not None:
            epr.reference_properties = [child.copy() for child in props.elements()]
        return epr

    @classmethod
    def anonymous(cls, version: WsaVersion) -> "EndpointReference":
        return cls(version.anonymous_uri)
