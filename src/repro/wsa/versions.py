"""WS-Addressing version profiles."""

from __future__ import annotations

from enum import Enum

from repro.xmlkit.names import Namespaces, QName


class WsaVersion(Enum):
    """One of the three WS-Addressing releases used by WSE/WSN versions."""

    V2003_03 = Namespaces.WSA_2003_03
    V2004_08 = Namespaces.WSA_2004_08
    V2005_08 = Namespaces.WSA_2005_08

    @property
    def namespace(self) -> str:
        return self.value

    def qname(self, local: str) -> QName:
        return QName(self.namespace, local)

    @property
    def anonymous_uri(self) -> str:
        """The 'reply to the transport back-channel' address."""
        if self is WsaVersion.V2005_08:
            return "http://www.w3.org/2005/08/addressing/anonymous"
        return f"{self.namespace}/role/anonymous"

    @property
    def supports_reference_properties(self) -> bool:
        """ReferenceProperties exist in 2003/03 and 2004/08, dropped in 2005/08."""
        return self is not WsaVersion.V2005_08

    @property
    def supports_reference_parameters(self) -> bool:
        """ReferenceParameters were introduced in 2004/08."""
        return self is not WsaVersion.V2003_03

    @property
    def is_reference_parameter_attr(self) -> QName:
        """2005/08 marks echoed headers with wsa:IsReferenceParameter."""
        return self.qname("IsReferenceParameter")

    @classmethod
    def from_namespace(cls, uri: str) -> "WsaVersion":
        for version in cls:
            if version.namespace == uri:
                return version
        raise ValueError(f"not a WS-Addressing namespace: {uri!r}")
