"""WS-Addressing, in the three versions the two spec families bind to.

The paper's Table 1 closes with the row "WS-Addressing version": WSE 01/2004
and WSN 1.0 use the 2003/03 member submission, WSE 08/2004 uses 2004/08, and
WSN 1.3 uses the 2005/08 W3C recommendation.  The versions differ in
namespace, in the anonymous-endpoint URI, and crucially in whether an
endpoint reference carries ``ReferenceProperties`` (2003/03, 2004/08) or
``ReferenceParameters`` (2004/08, 2005/08) — the very element the paper notes
the two specs disagree on when returning subscription identifiers.
"""

from repro.wsa.versions import WsaVersion
from repro.wsa.epr import EndpointReference
from repro.wsa.headers import MessageHeaders, apply_headers, extract_headers

__all__ = [
    "WsaVersion",
    "EndpointReference",
    "MessageHeaders",
    "apply_headers",
    "extract_headers",
]
