"""WS-Addressing message-information headers.

``apply_headers`` stamps To/Action/MessageID/ReplyTo/RelatesTo onto an
outgoing SOAP envelope, echoing the destination EPR's reference
parameters/properties as headers (the routing trick both specifications use
to address individual subscription resources).  ``extract_headers`` recovers
the same information, auto-detecting the WS-Addressing version — which is one
of the signals WS-Messenger's spec detection relies on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.soap.envelope import SoapEnvelope
from repro.wsa.epr import EndpointReference
from repro.wsa.versions import WsaVersion
from repro.xmlkit.element import XElem, text_element

_message_counter = itertools.count(1)


def fresh_message_id() -> str:
    """Deterministic, process-unique message identifiers (no wall clock)."""
    return f"urn:uuid:msg-{next(_message_counter):08d}"


def reset_message_counter() -> None:
    """Restart MessageID allocation from 1 (test/bench hook).

    The differential fan-out tests run the same seeded scenario twice and
    diff the raw wire bytes; the process-global counter has to restart
    between runs or every MessageID differs trivially.
    """
    global _message_counter
    _message_counter = itertools.count(1)


@dataclass
class MessageHeaders:
    """The addressing properties of one message."""

    to: str
    action: str
    message_id: Optional[str] = None
    relates_to: Optional[str] = None
    reply_to: Optional[EndpointReference] = None
    fault_to: Optional[EndpointReference] = None
    #: reference parameters/properties echoed from the target EPR
    echoed: list[XElem] = field(default_factory=list)

    @classmethod
    def request(
        cls,
        target: EndpointReference,
        action: str,
        *,
        reply_to: Optional[EndpointReference] = None,
    ) -> "MessageHeaders":
        headers = cls(to=target.address, action=action, message_id=fresh_message_id())
        headers.reply_to = reply_to
        headers.echoed = [
            elem.copy()
            for elem in (*target.reference_parameters, *target.reference_properties)
        ]
        return headers

    @classmethod
    def reply(cls, request: "MessageHeaders", action: str, version: WsaVersion) -> "MessageHeaders":
        reply_address = (
            request.reply_to.address if request.reply_to else version.anonymous_uri
        )
        return cls(
            to=reply_address,
            action=action,
            message_id=fresh_message_id(),
            relates_to=request.message_id,
        )


def apply_headers(
    envelope: SoapEnvelope, headers: MessageHeaders, version: WsaVersion
) -> SoapEnvelope:
    """Stamp addressing headers onto an envelope (mutates and returns it)."""
    envelope.add_header(text_element(version.qname("To"), headers.to), must_understand=True)
    envelope.add_header(
        text_element(version.qname("Action"), headers.action), must_understand=True
    )
    if headers.message_id:
        envelope.add_header(text_element(version.qname("MessageID"), headers.message_id))
    if headers.relates_to:
        envelope.add_header(text_element(version.qname("RelatesTo"), headers.relates_to))
    if headers.reply_to is not None:
        envelope.add_header(headers.reply_to.to_element(version, version.qname("ReplyTo")))
    if headers.fault_to is not None:
        envelope.add_header(headers.fault_to.to_element(version, version.qname("FaultTo")))
    for echoed in headers.echoed:
        block = echoed.copy()
        if version is WsaVersion.V2005_08:
            block.attrs[version.is_reference_parameter_attr] = "true"
        envelope.add_header(block)
    return envelope


def detect_wsa_version(envelope: SoapEnvelope) -> Optional[WsaVersion]:
    """Find which WS-Addressing namespace the envelope's headers use."""
    for block in envelope.headers:
        try:
            return WsaVersion.from_namespace(block.name.namespace)
        except ValueError:
            continue
    return None


def extract_headers(envelope: SoapEnvelope, version: Optional[WsaVersion] = None) -> MessageHeaders:
    """Recover addressing headers; auto-detects the version when not given."""
    if version is None:
        version = detect_wsa_version(envelope)
        if version is None:
            raise ValueError("envelope carries no WS-Addressing headers")
    to = envelope.header_text(version.qname("To")) or ""
    action = envelope.header_text(version.qname("Action")) or ""
    headers = MessageHeaders(to=to, action=action)
    headers.message_id = envelope.header_text(version.qname("MessageID"))
    headers.relates_to = envelope.header_text(version.qname("RelatesTo"))
    reply_to = envelope.header(version.qname("ReplyTo"))
    if reply_to is not None:
        headers.reply_to = EndpointReference.from_element(reply_to, version)
    fault_to = envelope.header(version.qname("FaultTo"))
    if fault_to is not None:
        headers.fault_to = EndpointReference.from_element(fault_to, version)
    known = {
        version.qname(local)
        for local in ("To", "Action", "MessageID", "RelatesTo", "ReplyTo", "FaultTo", "From")
    }
    headers.echoed = [
        block.content for block in envelope.headers if block.name not in known
    ]
    return headers
