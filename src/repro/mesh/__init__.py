"""`repro.mesh` — the sharded, federated broker mesh.

The single WS-Messenger broker mediates between specifications; the mesh
partitions the topic space across N of them.  Each topic root is owned by
exactly one shard (consistent hashing, :mod:`repro.mesh.hashring`), the
ownership map is versioned and rebalance-able (:mod:`repro.mesh.shardmap`),
and shards exchange traffic over the mediation machinery itself — wrapped
WSN Notify messages on the simulated wire (:mod:`repro.mesh.federation`).
:mod:`repro.mesh.node` and :mod:`repro.mesh.cluster` assemble the pieces.
"""

from repro.mesh.cluster import MeshCluster, MeshSubscription
from repro.mesh.federation import (
    FederationLink,
    FederationLinkManager,
    LINK_VERSION,
    aggregate_coverage,
    link_topic_expression,
)
from repro.mesh.hashring import DEFAULT_VNODES, HashRing
from repro.mesh.node import MeshNode
from repro.mesh.shardmap import (
    ShardMap,
    ShardMapRegistry,
    TOPICLESS_KEY,
    routing_key_of_topic,
    routing_keys_of_expression,
)

__all__ = [
    "DEFAULT_VNODES",
    "FederationLink",
    "FederationLinkManager",
    "HashRing",
    "LINK_VERSION",
    "MeshCluster",
    "MeshNode",
    "MeshSubscription",
    "ShardMap",
    "ShardMapRegistry",
    "TOPICLESS_KEY",
    "aggregate_coverage",
    "link_topic_expression",
    "routing_key_of_topic",
    "routing_keys_of_expression",
]
