"""Consistent hashing: which shard owns a topic.

The mesh partitions the topic space by the *root* of each concrete topic
path (``jobs/status`` → ``jobs``): a root is the coarsest unit a
subscription's topic expression can be pinned to without evaluating
wildcards, so routing at root granularity keeps every expression mappable
to a small, static set of owning shards (see :mod:`repro.mesh.shardmap`).

The ring is classic consistent hashing with virtual nodes: every member is
hashed onto the ring at ``vnodes`` points, and a key is owned by the first
member point at or clockwise-after the key's own hash.  Hashing uses
SHA-256 (stable across processes and Python versions — ``hash()`` is
salted), so ring placement is a pure function of (member names, vnodes),
which the rebalancing tests and the shard-map versioning both rely on.

The property that makes the structure worth its complexity: membership
changes move only the keys whose owning arc the new/departed member's
points cover — on average ``1/n`` of the key space — instead of re-mapping
everything the way ``hash(key) % n`` would.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Iterator

#: ring positions per member; more points → smoother key distribution
DEFAULT_VNODES = 64


def _ring_hash(text: str) -> int:
    """A stable 64-bit ring position for ``text``."""
    return int.from_bytes(hashlib.sha256(text.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """Consistent-hash ring over member names with virtual nodes."""

    def __init__(self, members: Iterable[str] = (), *, vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes <= 0:
            raise ValueError("vnodes must be positive")
        self.vnodes = vnodes
        self._members: set[str] = set()
        #: sorted virtual-node positions and their owners, kept in lockstep
        self._points: list[int] = []
        self._owners: list[str] = []
        for member in members:
            self.add(member)

    # --- membership ---------------------------------------------------------

    def add(self, member: str) -> None:
        if not member:
            raise ValueError("empty member name")
        if member in self._members:
            return
        self._members.add(member)
        for position, owner in self._points_of(member):
            index = bisect.bisect_left(self._points, position)
            self._points.insert(index, position)
            self._owners.insert(index, owner)

    def remove(self, member: str) -> None:
        if member not in self._members:
            raise KeyError(member)
        self._members.discard(member)
        keep = [
            (position, owner)
            for position, owner in zip(self._points, self._owners)
            if owner != member
        ]
        self._points = [position for position, _ in keep]
        self._owners = [owner for _, owner in keep]

    def _points_of(self, member: str) -> Iterator[tuple[int, str]]:
        for replica in range(self.vnodes):
            yield _ring_hash(f"{member}#{replica}"), member

    def members(self) -> list[str]:
        return sorted(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: str) -> bool:
        return member in self._members

    # --- lookup -------------------------------------------------------------

    def owner(self, key: str) -> str:
        """The member owning ``key`` (first point clockwise from its hash)."""
        if not self._points:
            raise LookupError("hash ring has no members")
        index = bisect.bisect_right(self._points, _ring_hash(key))
        if index == len(self._points):
            index = 0  # wrap: the ring is circular
        return self._owners[index]

    def moved_keys(self, other: "HashRing", keys: Iterable[str]) -> dict[str, tuple[str, str]]:
        """Keys whose owner differs between this ring and ``other``, as
        ``{key: (owner_here, owner_there)}`` — the rebalancer's work list."""
        moved: dict[str, tuple[str, str]] = {}
        for key in keys:
            before, after = self.owner(key), other.owner(key)
            if before != after:
                moved[key] = (before, after)
        return moved
