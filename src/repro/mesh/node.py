"""One mesh member: a WS-Messenger broker with a ring view and federation.

A :class:`MeshNode` composes, at one base address:

- the mediation broker itself (``<address>``) — the front door its local
  publishers and consumers talk to, exactly as in the single-node system;
- the federation **exchange** (``<address>/exchange``) — the WSN producer
  peers link to for the traffic this node owns;
- the federation **ingest** (``<address>/fed-ingest``) — where those links
  deliver the traffic this node's consumers need from other owners.

The node inserts itself into the broker via the ``publish_router`` hook:
every publish, however it entered (in-process, front-door Notify, a
bridge), is classified by its topic's routing key.  Owned keys fan out
locally *and* onto the exchange; foreign keys are forwarded — one wrapped
WSN 1.3 Notify over the simulated HTTP transport, WSA-addressed to the
owner's front door, lineage header attached — and local fan-out is
skipped, so every message is processed by exactly one owner.

Federation demand is *derived*, never declared: listeners on every internal
WSE store and WSN producer translate each subscription's filter into the
set of topic roots it pins (:func:`repro.mesh.shardmap
.routing_keys_of_expression`) and re-sync the node's links, so a plain
Subscribe at any front door transparently becomes a cross-shard
subscription when its roots are owned elsewhere.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.delivery.policy import DeliveryPolicy
from repro.filters.topics import TopicNamespace, topic_expression_of
from repro.messenger import mediation
from repro.messenger.broker import WsMessenger
from repro.mesh.federation import LINK_VERSION, FederationLinkManager, aggregate_coverage
from repro.mesh.shardmap import ShardMapRegistry, routing_key_of_topic, routing_keys_of_expression
from repro.soap.envelope import SoapVersion
from repro.transport.endpoint import SoapClient
from repro.transport.network import SimulatedNetwork
from repro.wsa.epr import EndpointReference
from repro.wse.versions import WseVersion
from repro.wsn.producer import NotificationProducer
from repro.wsn.versions import WsnVersion
from repro.xmlkit.element import XElem


class MeshNode:
    """One shard: broker + ring view + exchange + federation links."""

    def __init__(
        self,
        network: SimulatedNetwork,
        name: str,
        registry: ShardMapRegistry,
        *,
        address: Optional[str] = None,
        peer_address_of: Optional[Callable[[str], str]] = None,
        wse_versions: Optional[list[WseVersion]] = None,
        wsn_versions: Optional[list[WsnVersion]] = None,
        delivery: Optional[DeliveryPolicy] = None,
        delivery_seed: int = 0,
        topic_namespace: Optional[TopicNamespace] = None,
        store=None,
    ) -> None:
        self.network = network
        self.name = name
        self.registry = registry
        self.address = address or f"http://mesh/{name}"
        if peer_address_of is None:
            prefix = self.address.rsplit("/", 1)[0]
            peer_address_of = lambda peer: f"{prefix}/{peer}"  # noqa: E731
        self._peer_address_of = peer_address_of
        self.map = registry.fetch()
        self._ring = self.map.ring()
        wsn_versions = (
            list(wsn_versions) if wsn_versions is not None else [WsnVersion.V1_3]
        )
        if LINK_VERSION not in wsn_versions:
            # the federation wire format is WSN 1.3; the owner's front door
            # must accept it even when local consumers use other versions
            wsn_versions.append(LINK_VERSION)
        self.broker = WsMessenger(
            network,
            self.address,
            wse_versions=wse_versions,
            wsn_versions=wsn_versions,
            delivery=delivery,
            delivery_seed=delivery_seed,
            topic_namespace=topic_namespace,
            store=store,
        )
        self.exchange = NotificationProducer(
            network,
            f"{self.address}/exchange",
            version=LINK_VERSION,
            manager_address=f"{self.address}/exchange/subscriptions",
            default_lifetime=None,  # links live until the mesh drops them
            delivery_manager=self.broker.delivery_manager,
        )
        self.links = FederationLinkManager(
            network,
            self.address,
            self._accept_federated,
            exchange_address_of=lambda peer: f"{self._peer_address_of(peer)}/exchange",
        )
        self._forward_client = SoapClient(
            network,
            wsa_version=LINK_VERSION.wsa_version,
            soap_version=SoapVersion.V11,
        )
        #: local subscription key -> pinned topic roots (None = all shards)
        self._needs: dict[str, Optional[set[str]]] = {}
        self._ingesting = False  # reentrancy guard: federated republish
        self.broker.publish_router = self._route_publish
        self._attach_demand_listeners()

    # --- publishing ----------------------------------------------------------

    def publish(self, payload: XElem, *, topic: Optional[str] = None) -> None:
        """Publish at this node; routes to the owning shard transparently."""
        self.broker.publish(payload, topic=topic)

    def owner_of_topic(self, topic: Optional[str]) -> str:
        return self._ring.owner(routing_key_of_topic(topic))

    def _route_publish(self, payload: XElem, topic: Optional[str]) -> bool:
        if self._ingesting:
            # federated ingress: the owner already processed this message;
            # deliver locally only, never re-route or re-export
            return False
        owner = self.owner_of_topic(topic)
        instr = self.network.instrumentation
        phases = instr.phases
        timer = phases.begin() if phases is not None else 0
        if owner == self.name:
            instr.count("mesh.owned_publishes", node=self.name)
            flight = instr.flight
            if flight.enabled:
                flight.record(
                    "route", node=self.name, topic=topic or "", owner=owner,
                    via="owned",
                )
            if phases is not None:
                phases.end("route", timer)
            if self.exchange.has_subscriptions():
                self.exchange.publish(payload, topic=topic)
            return False
        flight = instr.flight
        if flight.enabled:
            flight.record(
                "route", node=self.name, topic=topic or "", owner=owner,
                via="forwarded",
            )
        if phases is not None:
            phases.end("route", timer)
        self._forward(payload, topic, owner)
        return True

    def _forward(self, payload: XElem, topic: Optional[str], owner: str) -> None:
        """One federation hop: wrapped Notify to the owner's front door.

        Runs inside the broker's publish span, so the owner's dispatch
        re-parents under the same lineage (the hop is visible in the trace)
        and the hop itself is a ledgered obligation: ``enqueued`` here,
        ``delivered`` when the owner's 202 comes back, ``failed`` if the
        wire loses it — mesh conservation covers the forward path too.
        """
        instr = self.network.instrumentation
        target = EndpointReference(self._peer_address_of(owner))
        body = mediation.wsn_notify_from_neutral(
            [mediation.MediatedNotification(payload, topic)], LINK_VERSION
        )
        lineage = instr.trace_context()
        if lineage is not None:
            instr.lineage_event(
                lineage.lineage_id, "enqueued", sink=target.address, family="mesh"
            )
            instr.lineage_event(
                lineage.lineage_id, "attempted", n=1, sink=target.address
            )
        try:
            self._forward_client.call(
                target, LINK_VERSION.action("Notify"), [body], expect_reply=False
            )
        except Exception as exc:
            if lineage is not None:
                instr.lineage_event(
                    lineage.lineage_id,
                    "failed",
                    sink=target.address,
                    reason=type(exc).__name__,
                )
            raise
        if lineage is not None:
            instr.lineage_delivered(
                lineage.lineage_id,
                family="mesh",
                hops=lineage.hop + 1,
                sink=target.address,
            )
        instr.count("mesh.forwarded_publishes", origin=self.name, owner=owner)

    def _accept_federated(self, item: mediation.MediatedNotification) -> None:
        self._ingesting = True
        try:
            self.broker.publish(item.payload, topic=item.topic)
        finally:
            self._ingesting = False

    # --- federation demand ----------------------------------------------------

    def _attach_demand_listeners(self) -> None:
        for version, producer in self.broker.wsn_producers.items():
            producer.subscription_listeners.append(
                self._wsn_listener(version.name.lower())
            )
        for version, source in self.broker.wse_sources.items():
            tag = version.name.lower()
            source.store.on_created.append(
                lambda s, tag=tag: self._need_changed(
                    f"wse:{tag}:{s.id}",
                    routing_keys_of_expression(topic_expression_of(s.filter)),
                )
            )
            source.store.on_removed.append(
                lambda s, tag=tag: self._need_changed(f"wse:{tag}:{s.id}", None, gone=True)
            )

    def _wsn_listener(self, tag: str):
        def listener(event: str, subscription) -> None:
            key = f"wsn:{tag}:{subscription.key}"
            if event == "created":
                self._need_changed(
                    key,
                    routing_keys_of_expression(
                        topic_expression_of(subscription.filter)
                    ),
                )
            elif event == "destroyed":
                self._need_changed(key, None, gone=True)

        return listener

    def _need_changed(
        self, key: str, roots: Optional[set[str]], *, gone: bool = False
    ) -> None:
        if gone:
            self._needs.pop(key, None)
        else:
            self._needs[key] = roots
        self.sync_links()

    def sync_links(self) -> None:
        """Re-derive the link set from current needs and the current ring."""
        self.links.sync(
            aggregate_coverage(
                self._needs,
                self._ring.owner,
                self_name=self.name,
                peers=self._ring.members(),
            )
        )

    # --- durable handoff --------------------------------------------------------

    def log_segment(self, start: int = 0) -> list[dict]:
        """Serialized event-log records from ``start`` on (requires a
        store-backed broker).  A departing shard hands this segment to its
        successor, which replays it (``repro.store.recovery``) instead of
        requiring the old owner to drain in-flight work first."""
        if self.broker.store is None:
            return []
        return self.broker.store.log.segment(start)

    # --- membership -----------------------------------------------------------

    def refresh_map(self) -> bool:
        """Fetch the registry's current shard map; re-point links if it moved."""
        snapshot = self.registry.fetch()
        if snapshot.version == self.map.version:
            return False
        self.map = snapshot
        self._ring = snapshot.ring()
        self.sync_links()
        return True

    # --- delivery pump / lifecycle --------------------------------------------

    def run_deliveries_until_idle(self, *, deadline: Optional[float] = None) -> int:
        return self.broker.run_deliveries_until_idle(deadline=deadline)

    def pending_deliveries(self) -> int:
        manager = self.broker.delivery_manager
        return manager.pending() if manager is not None else 0

    def close(self) -> None:
        """Leave the mesh: drop links, then unmount every endpoint."""
        self.links.close()
        self.exchange.close()
        self.broker.close()
