"""``python -m repro mesh-demo``: the federated mesh, narrated and audited.

Self-contained (no dependency on the ``examples/`` tree): builds an
instrumented 3-shard mesh, drives cross-shard traffic, grows the mesh to 4
shards under the same subscriptions, shrinks it back, and finishes with the
mesh-wide conservation audit — the run fails (exit 1) if any obligation is
lost, duplicated, or stranded by the rebalances.
"""

from __future__ import annotations

from repro.mesh.cluster import MeshCluster
from repro.obs.audit import audit
from repro.obs.instrument import Instrumentation
from repro.transport import SimulatedNetwork, VirtualClock
from repro.wse.sink import EventSink
from repro.wsn.consumer import NotificationConsumer
from repro.xmlkit import parse_xml


def mesh_demo_main(argv: "list[str] | None" = None) -> int:
    from repro.wsa.headers import reset_message_counter

    reset_message_counter()
    network = SimulatedNetwork(VirtualClock())
    instrumentation = Instrumentation.attach(network)
    mesh = MeshCluster(network, 3)

    print("mesh-demo: 3 shards on one simulated network")
    for name in mesh.registry.current.members:
        print(f"  shard {name}: {mesh.nodes[name].address}")

    owner = mesh.owner_node_of_topic("jobs/status").name
    other = next(n for n in mesh.registry.current.members if n != owner)
    local = NotificationConsumer(network, "http://demo-local")
    mesh.subscribe_wsn(local.address, topic="jobs/status")
    remote = NotificationConsumer(network, "http://demo-remote")
    mesh.subscribe_wsn(remote.address, topic="jobs/status", home=other)
    sink = EventSink(network, "http://demo-sink")
    mesh.subscribe_wse(sink.address, home=0)
    print(f"  jobs/* owner: {owner}; remote consumer homed on {other}")

    event = parse_xml('<d:Tick xmlns:d="urn:demo">1</d:Tick>')
    for index in range(3):
        mesh.publish(event.copy(), topic="jobs/status", via=index)
    mesh.publish(event.copy(), topic="billing/invoices")

    print("\nfederation links (home: peer -> roots, None=all):")
    for name in mesh.registry.current.members:
        print(f"  {name}: {mesh.nodes[name].links.links()}")

    node, moved = mesh.join()
    print(f"\njoin {node.name}: moved keys {sorted(moved) or '(none)'}")
    mesh.publish(event.copy(), topic="jobs/status", via=node.name)
    moved = mesh.leave(node.name)
    print(f"leave {node.name}: moved keys {sorted(moved) or '(none)'}")
    mesh.publish(event.copy(), topic="jobs/status")

    print(
        f"\ndeliveries: local={len(local.received)} remote={len(remote.received)}"
        f" sink={len(sink.received)}"
    )

    result = audit(
        instrumentation,
        scenario="mesh-demo",
        federation_sinks=mesh.federation_sinks(),
    )
    print()
    print(result.render())
    return 0 if result.passed else 1
