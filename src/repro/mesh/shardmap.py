"""The versioned shard map: who owns which slice of the topic space.

A :class:`ShardMap` is an immutable snapshot — a member list, a vnode
count, and a monotonically increasing version — from which every node
derives the same :class:`~repro.mesh.hashring.HashRing`.  The
:class:`ShardMapRegistry` is the authority the mesh members fetch from:
``join``/``leave`` mint a new version, and the registry reports the
*moved-key set* between any two versions so the cutover can be limited to
the topics whose owner actually changed.

Routing keys
------------

Publishes route by the **root** of their concrete topic path; the topicless
WSE-style publish routes by the reserved :data:`TOPICLESS_KEY`.  A
subscription's filter maps to routing keys through
:func:`routing_keys_of_expression`:

- every ``|``-branch with a literal first segment contributes that root;
- a branch starting ``*`` or ``//`` could match any root — the expression
  then needs traffic from **all** shards (``None``, "broadcast");
- a filter with no topic constraint at all (pure content filter, or WSE's
  topic-free Subscribe) likewise needs all shards.

That asymmetry is deliberate: publishes always map to exactly one owner
(each message is processed by one shard — the at-most-once half of the
mesh's conservation story), while subscriptions may fan *in* from many.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.filters.topics import TopicExpression
from repro.mesh.hashring import DEFAULT_VNODES, HashRing

#: routing key for publishes that carry no topic (legal in WSE and WSN 1.3)
TOPICLESS_KEY = ""


def routing_key_of_topic(topic: Optional[str]) -> str:
    """The ring key a publish on ``topic`` routes by (its root segment)."""
    if topic is None:
        return TOPICLESS_KEY
    head = topic.strip().lstrip("/").split("/", 1)[0]
    return head or TOPICLESS_KEY


def routing_keys_of_expression(
    expression: Optional[TopicExpression],
) -> Optional[set[str]]:
    """The ring keys a subscription filter pins to, or ``None`` for all.

    ``None`` (broadcast) exactly when some branch's first segment is a
    wildcard — then no static root set can bound the shards whose traffic
    the subscription may match.
    """
    if expression is None:
        return None
    roots: set[str] = set()
    for alternative in expression.alternatives:
        head = alternative.segments[0]
        if head == "" or head == "*":  # '//' gap or '*' at the root
            return None
        roots.add(head)
    return roots


@dataclass(frozen=True)
class ShardMap:
    """One immutable shard-map version."""

    version: int
    members: tuple[str, ...]
    vnodes: int = DEFAULT_VNODES

    def ring(self) -> HashRing:
        return HashRing(self.members, vnodes=self.vnodes)

    def owner(self, key: str) -> str:
        return self.ring().owner(key)

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "members": list(self.members),
            "vnodes": self.vnodes,
        }


class ShardMapRegistry:
    """The mesh's membership authority; members fetch, never cache forever.

    The registry keeps every historical version (the mesh is small; the
    history *is* the audit trail), so ``moved_keys`` can diff any two
    versions a slow member might straddle.
    """

    def __init__(self, members: Iterable[str] = (), *, vnodes: int = DEFAULT_VNODES) -> None:
        self.vnodes = vnodes
        self._versions: list[ShardMap] = [
            ShardMap(1, tuple(dict.fromkeys(members)), vnodes)
        ]

    # --- fetch --------------------------------------------------------------

    @property
    def current(self) -> ShardMap:
        return self._versions[-1]

    def fetch(self) -> ShardMap:
        """What a member polling the registry receives."""
        return self.current

    def version_at(self, version: int) -> ShardMap:
        for snapshot in self._versions:
            if snapshot.version == version:
                return snapshot
        raise KeyError(f"no shard map version {version}")

    # --- membership changes --------------------------------------------------

    def join(self, member: str) -> ShardMap:
        current = self.current
        if member in current.members:
            raise ValueError(f"member {member!r} already in the shard map")
        return self._publish(current.members + (member,))

    def leave(self, member: str) -> ShardMap:
        current = self.current
        if member not in current.members:
            raise ValueError(f"member {member!r} not in the shard map")
        return self._publish(tuple(m for m in current.members if m != member))

    def _publish(self, members: tuple[str, ...]) -> ShardMap:
        snapshot = ShardMap(self.current.version + 1, members, self.vnodes)
        self._versions.append(snapshot)
        return snapshot

    # --- rebalancing support --------------------------------------------------

    def moved_keys(
        self, keys: Iterable[str], *, since: Optional[int] = None
    ) -> dict[str, tuple[str, str]]:
        """Keys whose owner changed between version ``since`` (default: the
        previous version) and the current one."""
        if len(self._versions) < 2 and since is None:
            return {}
        before = (
            self.version_at(since) if since is not None else self._versions[-2]
        )
        return before.ring().moved_keys(self.current.ring(), keys)
