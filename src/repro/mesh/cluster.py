"""The mesh assembled: N nodes, one registry, rebalancing, audit hooks.

:class:`MeshCluster` is the harness the demo, the benchmarks and the tests
drive.  It owns the :class:`~repro.mesh.shardmap.ShardMapRegistry`, builds
the nodes on one simulated network, tracks every subscription it placed
(family, filter, home) so a departing node's subscriptions can be
re-registered, and implements the rebalance protocol:

1. **quiesce** — pump every node's delivery pipeline until no obligation is
   pending anywhere (an in-flight message never straddles a cutover);
2. publish the new shard map (``join``/``leave`` on the registry);
3. every surviving node refreshes its map: ring views flip atomically
   between publishes, federation links re-point to the new owners;
4. on leave only: the departed node's subscriptions are re-registered —
   each at the shard now owning its first pinned root (or the first member
   for broadcast filters) — then the node tears down (its own links drop,
   peers' links to it were already dropped in step 3);
5. the moved-key set (``registry.moved_keys``) is returned to the caller,
   which is how the rebalance tests assert the movement was bounded.

Steps happen between publishes on the virtual clock, so the cutover is a
serial point: conservation before + nothing in flight + conservation after
is exactly the mesh-wide invariant ``obs-audit`` checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Union

from repro.delivery.policy import DeliveryPolicy
from repro.mesh.hashring import DEFAULT_VNODES
from repro.mesh.node import MeshNode
from repro.mesh.shardmap import (
    ShardMapRegistry,
    TOPICLESS_KEY,
    routing_key_of_topic,
)
from repro.transport.network import SimulatedNetwork
from repro.wsa.epr import EndpointReference
from repro.wse.model import DeliveryMode
from repro.wse.subscriber import WseSubscriber
from repro.wse.versions import WseVersion
from repro.wsn.subscriber import WsnSubscriber
from repro.wsn.versions import WsnVersion
from repro.xmlkit.element import XElem
from repro.xmlkit.names import Namespaces


@dataclass
class MeshSubscription:
    """One subscription the cluster placed, with enough to replay it."""

    sid: int
    family: str  # "wsn" | "wse"
    version: object
    home: str  # node name
    consumer: str  # consumer endpoint address
    topic: Optional[str] = None
    dialect: Optional[str] = None
    message_content: Optional[str] = None
    wse_filter: Optional[str] = None
    wse_filter_namespaces: Optional[dict[str, str]] = None
    handle: object = None


class MeshCluster:
    """N federated brokers over one registry on one simulated network."""

    def __init__(
        self,
        network: SimulatedNetwork,
        shards: int = 3,
        *,
        base_address: str = "http://mesh",
        vnodes: int = DEFAULT_VNODES,
        wse_versions: Optional[list[WseVersion]] = None,
        wsn_versions: Optional[list[WsnVersion]] = None,
        delivery: Optional[DeliveryPolicy] = None,
        delivery_seed: int = 0,
        store_factory: Optional[Callable[[str], object]] = None,
    ) -> None:
        if shards < 1:
            raise ValueError("a mesh needs at least one shard")
        self.network = network
        self.base_address = base_address
        self._wse_versions = wse_versions
        self._wsn_versions = wsn_versions
        self._delivery = delivery
        self._delivery_seed = delivery_seed
        #: node name -> BrokerStore; gives each shard a durable event log
        self._store_factory = store_factory
        self._node_counter = shards
        self._sub_counter = 0
        names = [f"node-{i}" for i in range(shards)]
        self.registry = ShardMapRegistry(names, vnodes=vnodes)
        self.nodes: dict[str, MeshNode] = {}
        for name in names:
            self.nodes[name] = self._build_node(name)
        self.subscriptions: dict[int, MeshSubscription] = {}
        #: every address that ever served as a federation sink (forward
        #: targets = front doors, link targets = ingest endpoints) — the
        #: audit's key for telling federation hops from consumer deliveries
        self._federation_sinks: set[str] = set()
        self._note_federation_sinks()

    def _build_node(self, name: str) -> MeshNode:
        node = MeshNode(
            self.network,
            name,
            self.registry,
            address=f"{self.base_address}/{name}",
            peer_address_of=lambda peer: f"{self.base_address}/{peer}",
            wse_versions=self._wse_versions,
            wsn_versions=self._wsn_versions,
            delivery=self._delivery,
            delivery_seed=self._delivery_seed,
            store=self._store_factory(name) if self._store_factory else None,
        )
        return node

    def _note_federation_sinks(self) -> None:
        for node in self.nodes.values():
            self._federation_sinks.add(node.address)
            self._federation_sinks.add(node.links.ingest_address)

    # --- lookup ---------------------------------------------------------------

    def node(self, which: Union[int, str]) -> MeshNode:
        if isinstance(which, int):
            return self.nodes[self.registry.current.members[which]]
        return self.nodes[which]

    def __iter__(self) -> Iterator[MeshNode]:
        for name in self.registry.current.members:
            yield self.nodes[name]

    def owner_node_of_topic(self, topic: Optional[str]) -> MeshNode:
        owner = self.registry.current.owner(routing_key_of_topic(topic))
        return self.nodes[owner]

    def federation_sinks(self) -> frozenset[str]:
        return frozenset(self._federation_sinks)

    # --- traffic ---------------------------------------------------------------

    def publish(
        self,
        payload: XElem,
        *,
        topic: Optional[str] = None,
        via: Union[int, str, None] = None,
    ) -> None:
        """Publish at ``via`` (default: the topic's owner — the fast path)."""
        node = self.owner_node_of_topic(topic) if via is None else self.node(via)
        node.publish(payload, topic=topic)

    def flush(self) -> None:
        for node in self.nodes.values():
            node.broker.flush()

    def quiesce(self, *, max_rounds: int = 100) -> None:
        """Drain every delivery pipeline mesh-wide.

        One node's drain can enqueue work on another (a forwarded publish
        fans out at the owner), so drain in rounds until a full pass leaves
        nothing pending anywhere.
        """
        for _ in range(max_rounds):
            for node in self.nodes.values():
                node.run_deliveries_until_idle()
            if all(node.pending_deliveries() == 0 for node in self.nodes.values()):
                return
        raise RuntimeError("mesh failed to quiesce")

    # --- subscriptions ----------------------------------------------------------

    def subscribe_wsn(
        self,
        consumer_address: str,
        *,
        topic: Optional[str] = None,
        dialect: str = Namespaces.DIALECT_TOPIC_CONCRETE,
        message_content: Optional[str] = None,
        home: Union[int, str, None] = None,
        version: WsnVersion = WsnVersion.V1_3,
    ) -> MeshSubscription:
        """Subscribe a WSN consumer at its home shard's front door.

        The default home is the shard owning the topic's root, which makes
        the subscription local; any other home makes it cross-shard and the
        home node federates a link automatically.
        """
        node = self.owner_node_of_topic(topic) if home is None else self.node(home)
        self._sub_counter += 1
        record = MeshSubscription(
            sid=self._sub_counter,
            family="wsn",
            version=version,
            home=node.name,
            consumer=consumer_address,
            topic=topic,
            dialect=dialect,
            message_content=message_content,
        )
        self._place(record, node)
        self.subscriptions[record.sid] = record
        return record

    def subscribe_wse(
        self,
        notify_to: str,
        *,
        filter: Optional[str] = None,
        filter_namespaces: Optional[dict[str, str]] = None,
        home: Union[int, str] = 0,
        version: WseVersion = WseVersion.V2004_08,
    ) -> MeshSubscription:
        """Subscribe a WSE sink at a home shard.

        WSE filters are content (XPath) filters with no topic pinning, so
        the home federates broadcast links — it needs every shard's traffic.
        """
        node = self.node(home)
        self._sub_counter += 1
        record = MeshSubscription(
            sid=self._sub_counter,
            family="wse",
            version=version,
            home=node.name,
            consumer=notify_to,
            wse_filter=filter,
            wse_filter_namespaces=dict(filter_namespaces or {}),
        )
        self._place(record, node)
        self.subscriptions[record.sid] = record
        return record

    def _place(self, record: MeshSubscription, node: MeshNode) -> None:
        """Register ``record`` at ``node``'s front door (initial or re-home)."""
        if record.family == "wsn":
            subscriber = WsnSubscriber(self.network, version=record.version)
            record.handle = subscriber.subscribe(
                node.broker.epr(),
                EndpointReference(record.consumer),
                topic=record.topic,
                topic_dialect=record.dialect or Namespaces.DIALECT_TOPIC_CONCRETE,
                message_content=record.message_content,
            )
        else:
            subscriber = WseSubscriber(self.network, version=record.version)
            record.handle = subscriber.subscribe(
                node.broker.epr(),
                notify_to=EndpointReference(record.consumer),
                mode=DeliveryMode.PUSH,
                filter=record.wse_filter,
                filter_namespaces=record.wse_filter_namespaces or None,
            )
        record.home = node.name

    def unsubscribe(self, record: MeshSubscription) -> None:
        self._retract(record)
        self.subscriptions.pop(record.sid, None)

    def _retract(self, record: MeshSubscription) -> None:
        if record.family == "wsn":
            WsnSubscriber(self.network, version=record.version).unsubscribe(
                record.handle
            )
        else:
            WseSubscriber(self.network, version=record.version).unsubscribe(
                record.handle
            )

    # --- membership / rebalancing -------------------------------------------------

    def tracked_keys(self) -> set[str]:
        """Routing keys the cluster cares about (for moved-set reporting)."""
        keys = {TOPICLESS_KEY}
        for node in self.nodes.values():
            for roots in node._needs.values():
                keys.update(roots or ())
        return keys

    def join(self, name: Optional[str] = None) -> tuple[MeshNode, dict[str, tuple[str, str]]]:
        """Add a shard: quiesce, publish the map, re-point, report movement."""
        if name is None:
            name = f"node-{self._node_counter}"
            self._node_counter += 1
        self.quiesce()
        keys = self.tracked_keys()
        self.registry.join(name)
        node = self._build_node(name)
        self.nodes[name] = node
        self._note_federation_sinks()
        for existing in self.nodes.values():
            existing.refresh_map()
        moved = self.registry.moved_keys(keys)
        self._record_rebalance("join", name, moved)
        return node, moved

    def leave(self, which: Union[int, str]) -> dict[str, tuple[str, str]]:
        """Remove a shard: quiesce, re-own its keys, re-home its subscriptions."""
        departing = self.node(which)
        if len(self.nodes) == 1:
            raise ValueError("cannot remove the last shard")
        self.quiesce()
        keys = self.tracked_keys()
        orphaned = [
            record
            for record in self.subscriptions.values()
            if record.home == departing.name
        ]
        self.registry.leave(departing.name)
        del self.nodes[departing.name]
        for survivor in self.nodes.values():
            survivor.refresh_map()
        # re-register each orphan on the shard now owning its traffic; the
        # old registration dies with the node, so this is a move, not a copy
        for record in orphaned:
            self._retract_from(departing, record)
            self._place(record, self._rehome_target(record))
        departing.close()
        moved = self.registry.moved_keys(keys)
        self._record_rebalance("leave", departing.name, moved)
        return moved

    def _record_rebalance(
        self, change: str, name: str, moved: dict[str, tuple[str, str]]
    ) -> None:
        """Membership changes are rare and load-bearing: count the moved
        keys and drop a flight record so ``obs-top`` shows the rebalance."""
        instr = self.network.instrumentation
        if not instr.enabled:
            return
        instr.count("mesh.rebalances", change=change, node=name)
        if moved:
            instr.count("mesh.moved_keys", len(moved), change=change)
        flight = instr.flight
        if flight.enabled:
            flight.record(
                "rebalance",
                change=change,
                node=name,
                moved_keys=len(moved),
                members=len(self.nodes),
            )

    def _retract_from(self, departing: MeshNode, record: MeshSubscription) -> None:
        # unsubscribing at the departing node keeps its ledger clean (no
        # obligations can arrive anyway: it is already out of the ring)
        self._retract(record)

    def _rehome_target(self, record: MeshSubscription) -> MeshNode:
        # simple/concrete expressions name one concrete path, so the new
        # owner of its root is the subscription's natural home; full-dialect
        # and content filters go to the first member (their links fan in)
        if (
            record.family == "wsn"
            and record.topic is not None
            and record.dialect
            in (Namespaces.DIALECT_TOPIC_SIMPLE, Namespaces.DIALECT_TOPIC_CONCRETE)
        ):
            return self.owner_node_of_topic(record.topic)
        return self.node(0)

    # --- lifecycle ------------------------------------------------------------------

    def close(self) -> None:
        for node in self.nodes.values():
            node.close()
        self.nodes.clear()
