"""Broker-to-broker federation links: the mesh's inter-shard protocol.

The paper's mediation machinery already turns any notification into a
spec-neutral form and back; federation reuses it as the wire protocol
between shards.  Each node mounts two extra endpoints next to its broker:

- an **exchange** (``<node>/exchange``) — a genuine WS-Notification 1.3
  producer that re-publishes every notification the node processes *as
  owner*.  Peers subscribe to it with ordinary WSN Subscribe messages, so
  a federation link is a first-class subscription: filtered, renewable,
  observable, delivered over real HTTP-framed SOAP with the lineage header
  riding each hop;
- a **federation ingest** (``<node>/fed-ingest``) — the consumer endpoint
  those links deliver to.  Incoming Notify traffic is unwrapped through
  :func:`repro.messenger.mediation.neutral_from_wsn_notify` and re-published
  into the node's *local* broker only.

Keeping link traffic on the exchange — never the broker's own subscription
store — is what makes the fan-out exactly-once: the owner's broker serves
local consumers, the owner's exchange serves remote shards, and a federated
ingress republish touches only the local broker, so no message can transit
two links or revisit its origin.

A link's filter is the union of the roots its home shard needs from that
owner (``jobs//.|billing//.`` in the Full dialect), or no filter at all
when some home subscription is root-wildcarded and needs every topic the
owner processes.  One link per (home, owner) pair, always — two overlapping
links would be a duplicate factory.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.messenger import mediation
from repro.soap.envelope import SoapEnvelope
from repro.soap.fault import SoapFault
from repro.transport.endpoint import SoapEndpoint
from repro.transport.network import NetworkError, SimulatedNetwork
from repro.wsa.epr import EndpointReference
from repro.wsa.headers import MessageHeaders
from repro.wsn.subscriber import WsnSubscriber, WsnSubscriptionHandle
from repro.wsn.versions import WsnVersion
from repro.xmlkit.names import Namespaces

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.messenger.mediation import MediatedNotification

#: the one WSN version federation links speak (duration expiry, optional topic)
LINK_VERSION = WsnVersion.V1_3

#: coverage of one link: a frozenset of topic roots, or None for all traffic
LinkCoverage = Optional[frozenset[str]]


def link_topic_expression(coverage: LinkCoverage) -> Optional[str]:
    """The Full-dialect expression subscribing a link with ``coverage``.

    ``root//.`` matches the root topic and its whole subtree; ``None``
    (broadcast) subscribes with no filter, which also admits topicless
    publications — exactly the traffic a root-wildcard subscription needs.
    """
    if coverage is None:
        return None
    return "|".join(f"{root}//." for root in sorted(coverage))


class FederationLink:
    """One live subscribe link from an owner's exchange back to a home."""

    def __init__(self, peer: str, coverage: LinkCoverage, handle: WsnSubscriptionHandle) -> None:
        self.peer = peer
        self.coverage = coverage
        self.handle = handle

    def describe(self) -> str:
        expression = link_topic_expression(self.coverage)
        return f"{self.peer}<-[{expression if expression is not None else '*'}]"


class FederationLinkManager:
    """The home side of federation: ingest endpoint + link lifecycle.

    ``sync`` drives links to a target coverage map; it is idempotent and
    cheap when nothing changed, so nodes call it on every subscription
    change and every shard-map refresh.
    """

    def __init__(
        self,
        network: SimulatedNetwork,
        home_address: str,
        deliver: Callable[["MediatedNotification"], None],
        *,
        exchange_address_of: Callable[[str], str],
    ) -> None:
        self.network = network
        self.home_address = home_address
        self._deliver = deliver
        self._exchange_address_of = exchange_address_of
        self.ingest_address = f"{home_address}/fed-ingest"
        self.ingest = SoapEndpoint(network, self.ingest_address)
        self.ingest.on_action(LINK_VERSION.action("Notify"), self._on_notify)
        self.ingest.on_any(self._on_notify)
        self._subscriber = WsnSubscriber(network, version=LINK_VERSION)
        self._links: dict[str, FederationLink] = {}

    # --- the receiving side --------------------------------------------------

    def _on_notify(self, envelope: SoapEnvelope, headers: MessageHeaders):
        instr = self.network.instrumentation
        body = envelope.body_element()
        items = mediation.neutral_from_wsn_notify(
            body, LINK_VERSION, instrumentation=instr
        )
        instr.count("mesh.federated_ingress", len(items), home=self.home_address)
        for item in items:
            self._deliver(item)
        return None

    # --- link lifecycle -------------------------------------------------------

    def links(self) -> dict[str, LinkCoverage]:
        """Current coverage per peer (deterministic snapshot for tests)."""
        return {peer: link.coverage for peer, link in sorted(self._links.items())}

    def sync(self, needed: dict[str, LinkCoverage]) -> None:
        """Drive the live links to exactly ``needed`` (peer -> coverage)."""
        for peer in sorted(set(self._links) - set(needed)):
            self._drop(peer)
        for peer in sorted(needed):
            coverage = needed[peer]
            existing = self._links.get(peer)
            if existing is not None and existing.coverage == coverage:
                continue
            if existing is not None:
                self._drop(peer)
            self._establish(peer, coverage)

    def _establish(self, peer: str, coverage: LinkCoverage) -> None:
        expression = link_topic_expression(coverage)
        handle = self._subscriber.subscribe(
            EndpointReference(self._exchange_address_of(peer)),
            EndpointReference(self.ingest_address),
            topic=expression,
            topic_dialect=Namespaces.DIALECT_TOPIC_FULL,
        )
        self._links[peer] = FederationLink(peer, coverage, handle)
        self.network.instrumentation.count(
            "mesh.link_subscribes", home=self.home_address, peer=peer
        )

    def _drop(self, peer: str) -> None:
        link = self._links.pop(peer)
        try:
            self._subscriber.unsubscribe(link.handle)
        except (NetworkError, SoapFault) as exc:
            # the peer may already have left the mesh (its endpoints are
            # gone) or have expired the link itself; either way the link is
            # dead — count the swallow, do not strand the teardown
            self.network.instrumentation.count(
                "obs.swallowed_errors_total",
                site="mesh.federation.unsubscribe",
                kind=type(exc).__name__,
            )
        self.network.instrumentation.count(
            "mesh.link_unsubscribes", home=self.home_address, peer=peer
        )

    def close(self) -> None:
        """Tear down every link, then the ingest endpoint."""
        self.sync({})
        self.ingest.close()


def aggregate_coverage(
    needs: "dict[str, Optional[set[str]]]",
    owner_of: Callable[[str], str],
    *,
    self_name: str,
    peers: "list[str]",
) -> dict[str, LinkCoverage]:
    """Fold per-subscription needs into the per-peer link coverage map.

    ``needs`` maps a local subscription key to its root set (``None`` =
    root-wildcard).  Any wildcard need forces a broadcast link to *every*
    peer — and broadcast subsumes root links, so peers never hold two
    overlapping links from the same home.
    """
    if any(roots is None for roots in needs.values()):
        return {peer: None for peer in peers if peer != self_name}
    per_peer: dict[str, set[str]] = {}
    for roots in needs.values():
        for root in roots or ():
            owner = owner_of(root)
            if owner != self_name:
                per_peer.setdefault(owner, set()).add(root)
    return {peer: frozenset(roots) for peer, roots in per_peer.items()}
