"""Pull-drain engine: "at most N" semantics on every pull-style surface.

Each case fills one drainable backlog — a firewall message box (drained
through WSN ``GetMessages`` or WSE ``Pull``), a WSN 1.3 pull point, or a
WSE pull-mode subscription — then replays a generated sequence of drain
requests against it over the simulated network, with a list of markers as
the reference model.  The contract under test is the one
:func:`repro.delivery.limits.parse_drain_limit` centralizes:

- an omitted maximum drains the whole backlog (the historical default);
- an explicit maximum of zero, or any negative maximum, takes **nothing**
  (the seed's ``queue[: limit or len(queue)]`` drained everything on zero
  and sliced from the tail on negatives);
- non-numeric text is a **Sender** fault, never an unhandled server error;
- every successful drain removes exactly what it returned, in FIFO order.
"""

from __future__ import annotations

from typing import Optional

from repro.conformance.gen import pick
from repro.soap.fault import FaultCode, SoapFault
from repro.transport import SimulatedNetwork, VirtualClock
from repro.util.rng import SeededRng
from repro.xmlkit.element import XElem
from repro.xmlkit.names import QName

_SURFACES = ("msgbox_wsn", "msgbox_wse", "pullpoint", "wse_pull")
_GARBAGE = ("x", "1.5", "NaN", "2x")
_MAX_BACKLOG = 50


def _gen_pull(rng: SeededRng) -> dict:
    roll = rng.randrange(100)
    if roll < 25:
        return {"kind": "all"}
    if roll < 80:
        return {"kind": "n", "value": rng.randrange(10) - 3}
    return {"kind": "garbage", "text": pick(rng, _GARBAGE)}


def _valid_pull(spec: object) -> bool:
    if not isinstance(spec, dict):
        return False
    kind = spec.get("kind")
    if kind == "all":
        return True
    if kind == "n":
        return isinstance(spec.get("value"), int) and not isinstance(
            spec.get("value"), bool
        )
    if kind == "garbage":
        return spec.get("text") in _GARBAGE
    return False


class PullDrainEngine:
    name = "pulldrain"

    def generate(self, rng: SeededRng) -> dict:
        return {
            "surface": pick(rng, _SURFACES),
            "backlog": rng.randrange(7),
            "pulls": [_gen_pull(rng) for _ in range(1 + rng.randrange(4))],
        }

    # --- validity (the shrinker mutates blindly) --------------------------

    def _valid(self, case: object) -> bool:
        if not isinstance(case, dict):
            return False
        if case.get("surface") not in _SURFACES:
            return False
        backlog = case.get("backlog")
        if not isinstance(backlog, int) or not 0 <= backlog <= _MAX_BACKLOG:
            return False
        pulls = case.get("pulls")
        return (
            isinstance(pulls, list)
            and bool(pulls)
            and all(_valid_pull(p) for p in pulls)
        )

    # --- execution --------------------------------------------------------

    def check(self, case: object) -> Optional[str]:
        if not self._valid(case):
            return None
        surface = _SURFACE_RUNNERS[case["surface"]](case)
        markers = [f"m{i}" for i in range(case["backlog"])]
        surface.fill(markers)
        remaining = list(markers)
        for step, spec in enumerate(case["pulls"]):
            tag = f"[{case['surface']}] pull {step} ({spec['kind']})"
            if spec["kind"] == "garbage":
                try:
                    got = surface.drain(spec)
                except SoapFault as fault:
                    if fault.code is not FaultCode.SENDER:
                        return f"{tag}: fault code {fault.code!r}, not Sender"
                    continue
                return (
                    f"{tag}: non-numeric maximum {spec['text']!r} was accepted "
                    f"and returned {got}"
                )
            if spec["kind"] == "all":
                expected = remaining
            elif spec["value"] <= 0:
                expected = []
            else:
                expected = remaining[: spec["value"]]
            try:
                got = surface.drain(spec)
            except SoapFault as fault:
                return f"{tag}: unexpected fault: {fault}"
            if got != expected:
                return f"{tag}: drained {got}, model expects {expected}"
            remaining = remaining[len(expected):]
        return None


def _marker_payload(marker: str) -> XElem:
    return XElem(QName("", "pd-evt"), children=[marker])


class _MsgboxRun:
    """A firewall message box, filled by direct park."""

    def __init__(self, case: dict) -> None:
        self.network = SimulatedNetwork(VirtualClock())
        from repro.delivery.messagebox import MessageBox

        self.box = MessageBox(self.network, "http://conf-box", "http://conf-sink")

    def fill(self, markers: list[str]) -> None:
        from repro.delivery.task import DeliveryItem

        for marker in markers:
            self.box.park(DeliveryItem(_marker_payload(marker)))


class _MsgboxWsnRun(_MsgboxRun):
    """Drained with the stock WSN PullPointClient (GetMessages)."""

    def __init__(self, case: dict) -> None:
        super().__init__(case)
        from repro.wsn.pullpoint import PullPointClient

        self.client = PullPointClient(self.network)

    def drain(self, spec: dict) -> list[str]:
        maximum = None if spec["kind"] == "all" else spec.get("value", spec.get("text"))
        batch = self.client.get_messages(self.box.epr(), maximum=maximum)
        return [item.payload.full_text() for item in batch]


class _MsgboxWseRun(_MsgboxRun):
    """Drained with the WSE-side Pull helper."""

    def drain(self, spec: dict) -> list[str]:
        from repro.delivery.messagebox import drain_message_box_wse

        if spec["kind"] == "all":
            maximum = 0  # falsy: the builder omits MaxMessages entirely
        elif spec["kind"] == "garbage":
            maximum = spec["text"]
        else:
            # a literal 0 must go on the wire, so send it as (truthy) text
            maximum = str(spec["value"])
        payloads = drain_message_box_wse(
            self.network, self.box.epr(), max_messages=maximum
        )
        return [payload.full_text() for payload in payloads]


class _PullPointRun:
    """A WSN 1.3 pull point, filled by wire Notify."""

    def __init__(self, case: dict) -> None:
        self.network = SimulatedNetwork(VirtualClock())
        from repro.soap.envelope import SoapVersion
        from repro.transport.endpoint import SoapClient
        from repro.wsn.pullpoint import PullPoint, PullPointClient
        from repro.wsn.versions import WsnVersion

        version = WsnVersion.V1_3
        self.point = PullPoint(self.network, "http://conf-pp", version)
        self.client = PullPointClient(self.network)
        self._notifier = SoapClient(
            self.network,
            wsa_version=version.wsa_version,
            soap_version=SoapVersion.V11,
        )
        self._notify_action = version.action("Notify")

    def fill(self, markers: list[str]) -> None:
        for marker in markers:
            self._notifier.call(
                self.point.epr(),
                self._notify_action,
                [_marker_payload(marker)],
                expect_reply=False,
            )

    def drain(self, spec: dict) -> list[str]:
        maximum = None if spec["kind"] == "all" else spec.get("value", spec.get("text"))
        batch = self.client.get_messages(self.point.epr(), maximum=maximum)
        return [item.payload.full_text() for item in batch]


class _WsePullRun:
    """A WSE 08/2004 pull-mode subscription at a real event source."""

    def __init__(self, case: dict) -> None:
        self.network = SimulatedNetwork(VirtualClock())
        from repro.wse import EventSource, WseSubscriber
        from repro.wse.model import DeliveryMode

        self.source = EventSource(self.network, "http://conf-source")
        self.subscriber = WseSubscriber(self.network)
        self.handle = self.subscriber.subscribe(
            self.source.epr(), mode=DeliveryMode.PULL
        )

    def fill(self, markers: list[str]) -> None:
        for marker in markers:
            self.source.publish(_marker_payload(marker))

    def drain(self, spec: dict) -> list[str]:
        if spec["kind"] == "all":
            maximum = 0  # falsy: the builder omits MaxMessages entirely
        elif spec["kind"] == "garbage":
            maximum = spec["text"]
        else:
            maximum = str(spec["value"])
        payloads = self.subscriber.pull(self.handle, max_messages=maximum)
        return [payload.full_text() for payload in payloads]


_SURFACE_RUNNERS = {
    "msgbox_wsn": _MsgboxWsnRun,
    "msgbox_wse": _MsgboxWseRun,
    "pullpoint": _PullPointRun,
    "wse_pull": _WsePullRun,
}
