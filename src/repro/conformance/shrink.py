"""Greedy structural shrinking of JSON counterexamples.

The shrinker knows nothing about what a case means: it deletes list
elements, truncates strings, and zeroes ints, keeping any mutation under
which the case still fails.  Engines guard themselves by validating cases
and treating invalid ones as passing, so the shrinker simply cannot escape
the case space — an invalid mutant stops failing and is discarded.

Greedy first-improvement is deliberately simple: counterexamples here are
small (a schedule, a tree, a wire blob), and determinism matters more than
minimality.  The candidate order is fixed, so the same failing case always
shrinks to the same result.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.conformance.gen import JsonTree


def _variants(value: JsonTree) -> Iterator[JsonTree]:
    """Strictly-smaller mutants of ``value``, outermost deletions first."""
    if isinstance(value, list):
        for index in range(len(value)):
            yield value[:index] + value[index + 1 :]
        for index in range(len(value)):
            for child in _variants(value[index]):
                yield value[:index] + [child] + value[index + 1 :]
    elif isinstance(value, dict):
        for key in sorted(value):
            for child in _variants(value[key]):
                mutated = dict(value)
                mutated[key] = child
                yield mutated
    elif isinstance(value, str):
        if value:
            yield value[: len(value) // 2]
            yield value[:-1]
    elif isinstance(value, bool):
        return  # bool is an int subclass; don't "zero" flags into nonsense
    elif isinstance(value, int):
        if value != 0:
            yield 0
        if abs(value) > 1:
            yield value // 2


def shrink(
    case: JsonTree,
    is_failing: Callable[[JsonTree], bool],
    *,
    budget: int = 200,
) -> JsonTree:
    """Greedily minimize ``case`` while ``is_failing`` holds.

    ``budget`` bounds the number of ``is_failing`` evaluations — lifecycle
    cases replay a whole simulated network per probe, so shrinking is capped
    rather than exhaustive.
    """
    current = case
    calls = 0
    improved = True
    while improved and calls < budget:
        improved = False
        for candidate in _variants(current):
            calls += 1
            if is_failing(candidate):
                current = candidate
                improved = True
                break
            if calls >= budget:
                break
    return current
