"""Codec round-trip engine: ``parse(serialize(x)) == x`` and fixpoints.

Two case shapes:

- ``tree`` — a generated :class:`XElem` spec.  The tree must survive
  serialize→parse exactly (strict equality, whitespace included), the
  serialized form must be a fixpoint, and the frozen-payload splice cache
  must produce byte-identical output — including after the tree is grafted
  under a wrapper element that forces a different prefix mapping.
- ``raw`` — an adversarial raw XML document (CDATA, prefix shadowing, two
  prefixes on one namespace, default namespaces, entity/character
  references, mixed content).  Raw text is parsed first, so the property is
  on the *parsed* tree: serialize→parse must be the identity from there on.
"""

from __future__ import annotations

from typing import Optional

from repro.conformance.gen import (
    gen_tree_spec,
    pick,
    spec_to_elem,
    strict_diff,
    valid_tree_spec,
)
from repro.util.rng import SeededRng
from repro.xmlkit.element import XElem
from repro.xmlkit.names import QName
from repro.xmlkit.parser import XmlParseError, parse_xml
from repro.xmlkit.writer import serialize_xml

# pre-escaped fragments safe to splice into raw markup text slots
_ESCAPED_POOL = ("t", "a b", "&amp;", "&lt;", "&#9;", "&#10;", "&#13;", "x&gt;y", "é", "")
# raw character data for CDATA sections ("]]>" would close the section;
# "\r" would be eaten by XML line-end normalization before the parser)
_CDATA_POOL = ("x", "a & b < c", "<not><markup>", " two]]brackets ", "line\nbreak", "")


def _gen_raw_xml(rng: SeededRng) -> str:
    kind = rng.randrange(7)
    fill = lambda: pick(rng, _ESCAPED_POOL)  # noqa: E731 — local shorthand
    if kind == 0:  # CDATA round-trip
        return f"<r a=\"{fill()}\"><![CDATA[{pick(rng, _CDATA_POOL)}]]></r>"
    if kind == 1:  # prefix shadowing: p rebinds mid-document
        return (
            f'<p:a xmlns:p="urn:one"><p:b xmlns:p="urn:two">{fill()}</p:b>'
            f'<p:c at="{fill()}"/></p:a>'
        )
    if kind == 2:  # one namespace, two prefixes, prefixed attribute
        return f'<a:x xmlns:a="urn:s" xmlns:b="urn:s" b:k="{fill()}"><b:y/></a:x>'
    if kind == 3:  # default namespace, undeclared again on a child
        return f'<x xmlns="urn:d" a="1"><y xmlns="">{fill()}</y><z/></x>'
    if kind == 4:  # entity and character references, attrs and text
        return f"<r a=\"&#9;{fill()}&#13;\">&amp;&lt;&#13;{fill()}&#10;</r>"
    if kind == 5:  # mixed content with interleaved text
        return f"<r>{fill()}<i>{fill()}</i>{fill()}<i/>{fill()}</r>"
    # comments and PIs are structure the parser deliberately drops; the
    # property holds on the parsed tree, which must stay stable thereafter
    return f"<r><!-- note -->{fill()}<?pi data?><i>{fill()}</i></r>"


class CodecEngine:
    name = "codec"

    def generate(self, rng: SeededRng) -> dict:
        if rng.randrange(3) == 0:
            return {"kind": "raw", "xml": _gen_raw_xml(rng)}
        return {"kind": "tree", "tree": gen_tree_spec(rng)}

    def check(self, case: object) -> Optional[str]:
        if not isinstance(case, dict):
            return None
        if case.get("kind") == "raw" and isinstance(case.get("xml"), str):
            return self._check_raw(case["xml"])
        if case.get("kind") == "tree" and valid_tree_spec(case.get("tree")):
            return self._check_tree(case["tree"])
        return None  # not a case (shrinker wandered): vacuously passing

    # --- properties ------------------------------------------------------

    def _check_raw(self, xml: str) -> Optional[str]:
        try:
            first = parse_xml(xml)
        except XmlParseError:
            return None  # generator emitted well-formed XML; shrunk forms may not be
        return self._roundtrip(first, "raw")

    def _check_tree(self, spec: dict) -> Optional[str]:
        elem = spec_to_elem(spec)
        failure = self._roundtrip(elem, "tree")
        if failure is not None:
            return failure
        return self._check_frozen(spec, serialize_xml(elem))

    def _roundtrip(self, elem: XElem, label: str) -> Optional[str]:
        text = serialize_xml(elem)
        try:
            parsed = parse_xml(text)
        except XmlParseError as exc:
            return f"{label}: serialized form does not re-parse: {exc} in {text!r}"
        diff = strict_diff(elem, parsed)
        if diff is not None:
            return f"{label}: parse(serialize(x)) != x at {diff} (wire: {text!r})"
        again = serialize_xml(parsed)
        if again != text:
            return f"{label}: serialize not a fixpoint: {text!r} -> {again!r}"
        return None

    def _check_frozen(self, spec: dict, expected: str) -> Optional[str]:
        frozen = spec_to_elem(spec).freeze()
        first = serialize_xml(frozen)
        if first != expected:
            return f"frozen: differs from mutable serialization: {first!r} != {expected!r}"
        if serialize_xml(frozen) != expected:
            return f"frozen: splice-cache replay differs from first serialization"
        # graft under a wrapper that claims the first allocated prefix: the
        # cached splice must be re-rendered under the new prefix mapping
        wrapper = XElem(QName("urn:conf:wrap", "Wrap"), children=[frozen])
        wire = serialize_xml(wrapper)
        try:
            reparsed = parse_xml(wire)
        except XmlParseError as exc:
            return f"frozen: wrapped form does not re-parse: {exc} in {wire!r}"
        inner = next(reparsed.elements(), None)
        if inner is None:
            return f"frozen: wrapped payload vanished on re-parse: {wire!r}"
        diff = strict_diff(spec_to_elem(spec), inner)
        if diff is not None:
            return f"frozen: wrapped round-trip mismatch at {diff} (wire: {wire!r})"
        return None
