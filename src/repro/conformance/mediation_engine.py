"""Mediation differential engine: one publish stream, two spec families.

WS-Messenger's whole claim (and the paper's section VI) is that mediation is
*transparent*: a consumer should not be able to tell from the payload which
specification the publisher spoke.  Each case is a short publish stream fed
to the broker once; a WSE sink and a WSN consumer are both subscribed at the
front door, and every notification must be payload-identical — to the other
family's copy and to the original publish — with topics preserved on the
WSN side (WSE has no topic slot in the body; it rides as a SOAP header).
"""

from __future__ import annotations

from typing import Optional

from repro.conformance.gen import (
    gen_tree_spec,
    pick,
    spec_to_elem,
    strict_diff,
    valid_tree_spec,
)
from repro.util.rng import SeededRng

_TOPIC_POOL = ("alpha", "beta", "gamma")


class MediationEngine:
    name = "mediation"

    def generate(self, rng: SeededRng) -> dict:
        stream = [
            {"topic": pick(rng, _TOPIC_POOL), "payload": gen_tree_spec(rng, max_depth=2)}
            for _ in range(1 + rng.randrange(4))
        ]
        return {"stream": stream}

    def _valid(self, case: object) -> bool:
        if not isinstance(case, dict):
            return False
        stream = case.get("stream")
        if not isinstance(stream, list) or not stream:
            return False
        for item in stream:
            if not isinstance(item, dict):
                return False
            topic = item.get("topic")
            if not isinstance(topic, str) or not topic.isalnum():
                return False
            if not valid_tree_spec(item.get("payload")):
                return False
        return True

    def check(self, case: object) -> Optional[str]:
        if not self._valid(case):
            return None
        from repro.messenger import WsMessenger
        from repro.transport import SimulatedNetwork, VirtualClock
        from repro.wse import EventSink, WseSubscriber
        from repro.wse.versions import WseVersion
        from repro.wsn import NotificationConsumer, WsnSubscriber
        from repro.wsn.versions import WsnVersion

        network = SimulatedNetwork(VirtualClock())
        broker = WsMessenger(
            network,
            "http://conf-broker",
            wse_versions=[WseVersion.V2004_08],
            wsn_versions=[WsnVersion.V1_3],
        )
        sink = EventSink(network, "http://conf-wse-sink")
        WseSubscriber(network).subscribe(broker.epr(), notify_to=sink.epr())
        consumer = NotificationConsumer(network, "http://conf-wsn-consumer")
        WsnSubscriber(network).subscribe(broker.epr(), consumer.epr())

        stream = case["stream"]
        originals = [spec_to_elem(item["payload"]) for item in stream]
        for item, payload in zip(stream, originals):
            broker.publish(payload.copy(), topic=item["topic"])

        if len(sink.received) != len(stream):
            return f"WSE path saw {len(sink.received)} of {len(stream)} publishes"
        if len(consumer.received) != len(stream):
            return f"WSN path saw {len(consumer.received)} of {len(stream)} publishes"
        for index, item in enumerate(stream):
            wse_payload = sink.received[index].payload
            wsn_item = consumer.received[index]
            diff = strict_diff(originals[index], wse_payload)
            if diff is not None:
                return f"publish {index}: WSE payload differs from original at {diff}"
            diff = strict_diff(wse_payload, wsn_item.payload)
            if diff is not None:
                return f"publish {index}: WSE and WSN payloads differ at {diff}"
            if wsn_item.topic != item["topic"]:
                return (
                    f"publish {index}: topic {item['topic']!r} arrived as "
                    f"{wsn_item.topic!r} on the WSN path"
                )
        return None
