"""The conformance runner: engines, deterministic reports, corpus replay.

Every case is generated from ``SeededRng(seed).fork(f"{engine}/{index}")``,
so a case's content depends only on the seed and its coordinates — never on
how many cases ran before it, which engines are enabled, or what failed.
That is what makes the report byte-identical across runs and lets a single
``(engine, index)`` pair be re-investigated in isolation.

The corpus is the fuzzer's long-term memory: every shrunk counterexample
that led to a fix is frozen as a JSON file under ``tests/conformance/
corpus/`` and replayed by both the test suite and the CLI (``--corpus``) —
a regression reintroducing any fixed bug fails immediately, without waiting
for the fuzzer to rediscover it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from repro.conformance.codec_engine import CodecEngine
from repro.conformance.durability_engine import DurabilityEngine
from repro.conformance.framing_engine import FramingEngine
from repro.conformance.gen import JsonTree
from repro.conformance.lifecycle_engine import LifecycleEngine
from repro.conformance.mediation_engine import MediationEngine
from repro.conformance.mesh_engine import MeshEngine
from repro.conformance.pulldrain_engine import PullDrainEngine
from repro.conformance.shrink import shrink
from repro.util.rng import SeededRng

ENGINES = {
    engine.name: engine
    for engine in (
        CodecEngine(),
        DurabilityEngine(),
        FramingEngine(),
        LifecycleEngine(),
        MediationEngine(),
        MeshEngine(),
        PullDrainEngine(),
    )
}


def canonical_json(value: JsonTree) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"), ensure_ascii=True)


def check_case(engine, case: JsonTree) -> Optional[str]:
    """Run one case; any exception the engine leaks is itself a failure."""
    try:
        return engine.check(case)
    except Exception as exc:  # noqa: BLE001 — a crash IS the finding
        return f"engine crashed: {type(exc).__name__}: {exc}"


@dataclass
class Failure:
    engine: str
    index: int
    message: str
    case: JsonTree
    shrunk: JsonTree
    shrunk_message: str


@dataclass
class EngineRun:
    engine: str
    cases: int
    failures: list[Failure] = field(default_factory=list)


@dataclass
class ConformanceReport:
    seed: int
    cases: int
    runs: list[EngineRun]

    @property
    def failures(self) -> list[Failure]:
        return [failure for run in self.runs for failure in run.failures]

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = [
            "repro conformance fuzz",
            f"seed={self.seed} cases={self.cases} "
            f"engines={','.join(run.engine for run in self.runs)}",
            "",
            f"{'engine':<12} {'cases':>7} {'failures':>9}",
        ]
        for run in self.runs:
            lines.append(f"{run.engine:<12} {run.cases:>7} {len(run.failures):>9}")
        for failure in self.failures:
            lines += [
                "",
                f"FAIL {failure.engine}[{failure.index}]: {failure.shrunk_message}",
                f"  shrunk: {canonical_json(failure.shrunk)}",
                f"  original: {canonical_json(failure.case)}",
            ]
        lines += ["", f"result: {'PASS' if self.ok else 'FAIL'} ({len(self.failures)} failures)"]
        return "\n".join(lines)

    def to_json(self) -> str:
        return canonical_json(
            {
                "seed": self.seed,
                "cases": self.cases,
                "result": "pass" if self.ok else "fail",
                "engines": {run.engine: {"cases": run.cases, "failures": len(run.failures)} for run in self.runs},
                "failures": [
                    {
                        "engine": failure.engine,
                        "index": failure.index,
                        "message": failure.shrunk_message,
                        "shrunk": failure.shrunk,
                        "case": failure.case,
                    }
                    for failure in self.failures
                ],
            }
        )


def run_conformance(
    seed: int,
    cases: int,
    *,
    engines: Optional[Sequence[str]] = None,
    shrink_budget: int = 200,
) -> ConformanceReport:
    """Fuzz ``cases`` cases split evenly across the selected engines."""
    names = list(engines) if engines else list(ENGINES)
    unknown = [name for name in names if name not in ENGINES]
    if unknown:
        raise ValueError(f"unknown engines {unknown}; have {sorted(ENGINES)}")
    base, extra = divmod(cases, len(names))
    runs: list[EngineRun] = []
    for position, name in enumerate(names):
        engine = ENGINES[name]
        run = EngineRun(name, base + (1 if position < extra else 0))
        for index in range(run.cases):
            case = engine.generate(SeededRng(seed).fork(f"{name}/{index}"))
            message = check_case(engine, case)
            if message is None:
                continue
            shrunk = shrink(
                case,
                lambda candidate: check_case(engine, candidate) is not None,
                budget=shrink_budget,
            )
            run.failures.append(
                Failure(name, index, message, case, shrunk, check_case(engine, shrunk) or message)
            )
        runs.append(run)
    return ConformanceReport(seed, cases, runs)


# --- regression corpus -------------------------------------------------------


@dataclass
class CorpusCase:
    path: Path
    name: str
    engine: str
    case: JsonTree


def load_corpus(directory: Path | str) -> list[CorpusCase]:
    """Load ``*.json`` corpus files (sorted by name, for stable output)."""
    entries: list[CorpusCase] = []
    for path in sorted(Path(directory).glob("*.json")):
        record = json.loads(path.read_text(encoding="utf-8"))
        engine = record["engine"]
        if engine not in ENGINES:
            raise ValueError(f"{path}: unknown engine {engine!r}")
        entries.append(
            CorpusCase(path, record.get("name", path.stem), engine, record["case"])
        )
    return entries


def run_corpus(directory: Path | str) -> list[tuple[CorpusCase, Optional[str]]]:
    """Replay every corpus case; pairs each with its failure message (or None)."""
    return [
        (entry, check_case(ENGINES[entry.engine], entry.case))
        for entry in load_corpus(directory)
    ]
