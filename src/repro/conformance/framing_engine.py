"""HTTP framing engine: parse-or-``HttpFramingError``, never truncate.

The simulated transport hands over whole wire blobs, so the only honest
behaviours for the framing layer are (a) a parsed message whose body is
exactly what the peer framed, or (b) :class:`HttpFramingError`.  Returning a
silently shortened body — or leaking a ``UnicodeEncodeError`` from a
non-ASCII SOAPAction — would let the upper layers account message sizes and
payloads that never matched the wire.

Case kinds:

- ``build_request`` — adversarial path/host/action/body through
  :func:`build_request`; if the builder accepts them, the parsed request must
  round-trip method, path, and body exactly.
- ``response`` — same property for :func:`build_response`/``parse_response``.
- ``tamper_length`` — a hand-framed request whose declared ``Content-Length``
  disagrees with the body must raise; agreement must parse with the body intact.
- ``truncate`` — any proper prefix of a valid request must raise.
- ``embedded_crlf`` — a body containing ``CRLFCRLF`` must survive intact when
  the declared length covers it.
- ``garbage`` / ``response_garbage`` — arbitrary byte soup must either parse
  or raise ``HttpFramingError``; no other exception type may escape.
"""

from __future__ import annotations

from typing import Optional

from repro.conformance.gen import bytes_to_case, case_to_bytes, gen_text, pick
from repro.transport.http import (
    HttpFramingError,
    build_request,
    build_response,
    parse_request,
    parse_response,
)
from repro.util.rng import SeededRng

_PATH_POOL = ("/", "/events", "/a/b", "/s%20p", "/ä", "/tab\there", "/sp ace", "")
_HOST_POOL = ("localhost", "broker.example", "bröker", "a:8080")
_ACTION_POOL = (
    "",
    "http://docs.oasis-open.org/wsn/bw-2/NotificationConsumer/Notify",
    "über-action",
    "with\r\ninjected: header",
    'quo"ted',
)
_BODY_POOL = (b"", b"<e/>", b"<e>\xc3\xa9</e>", b"0123456789" * 3, b"a\nb")
_REASON_POOL = ("OK", "Bad Request", "Accepté", "split\r\nReason", "")
_STATUS_POOL = (200, 202, 400, 500, 599)

_GARBAGE_FRAGMENTS = (
    b"POST / HTTP/1.1",
    b"GET",
    b"HTTP/1.1 200 OK",
    b"HTTP/1.1 abc NotANumber",
    b"\r\n",
    b"\r\n\r\n",
    b"Content-Length: 5",
    b"Content-Length: -1",
    b"Content-Length: xyz",
    b"Content-Length: 0",
    b": valueless",
    b"Host localhost-no-colon",
    b"SOAPAction: \"a\"",
    b"hello body",
    b"\xff\xfe\x80",
    b"",
)


def _gen_garbage(rng: SeededRng) -> bytes:
    return b"".join(
        pick(rng, _GARBAGE_FRAGMENTS) for _ in range(1 + rng.randrange(6))
    )


class FramingEngine:
    name = "framing"

    def generate(self, rng: SeededRng) -> dict:
        kind = rng.randrange(7)
        if kind == 0:
            return {
                "kind": "build_request",
                "path": pick(rng, _PATH_POOL),
                "host": pick(rng, _HOST_POOL),
                "action": pick(rng, _ACTION_POOL),
                "body": bytes_to_case(pick(rng, _BODY_POOL)),
            }
        if kind == 1:
            return {
                "kind": "response",
                "status": pick(rng, _STATUS_POOL),
                "reason": pick(rng, _REASON_POOL),
                "body": bytes_to_case(pick(rng, _BODY_POOL)),
            }
        if kind == 2:
            body = pick(rng, _BODY_POOL)
            declared = len(body) if rng.randrange(3) == 0 else rng.randrange(40)
            return {
                "kind": "tamper_length",
                "declared": declared,
                "body": bytes_to_case(body),
            }
        if kind == 3:
            return {
                "kind": "truncate",
                "body": bytes_to_case(pick(rng, (b"<e/>", b"0123456789", b"x"))),
                "drop": 1 + rng.randrange(16),
            }
        if kind == 4:
            prefix = gen_text(rng, pool=("a", "b", " ")).encode("ascii")
            return {
                "kind": "embedded_crlf",
                "body": bytes_to_case(prefix + b"\r\n\r\n" + b"tail"),
            }
        if kind == 5:
            return {"kind": "garbage", "wire": bytes_to_case(_gen_garbage(rng))}
        return {"kind": "response_garbage", "wire": bytes_to_case(_gen_garbage(rng))}

    # --- checking ---------------------------------------------------------

    def check(self, case: object) -> Optional[str]:
        if not isinstance(case, dict) or not isinstance(case.get("kind"), str):
            return None
        checker = getattr(self, f"_check_{case['kind']}", None)
        if checker is None:
            return None
        try:
            return checker(case)
        except (KeyError, TypeError, AttributeError, UnicodeEncodeError):
            return None  # structurally invalid case (shrinker artifact)

    def _check_build_request(self, case: dict) -> Optional[str]:
        body = case_to_bytes(case["body"])
        url = f"http://{case['host']}{case['path']}"
        try:
            wire = build_request(url, body, soap_action=case["action"])
        except HttpFramingError:
            return None  # rejecting adversarial input is a correct outcome
        except Exception as exc:  # e.g. UnicodeEncodeError pre-hardening
            return f"build_request leaked {type(exc).__name__}: {exc}"
        try:
            parsed = parse_request(wire)
        except HttpFramingError as exc:
            return f"build_request framed an unparsable request: {exc}"
        if parsed.method != "POST":
            return f"method corrupted in transit: {parsed.method!r}"
        expected_path = case["path"] or "/"
        if parsed.path != expected_path:
            return f"path corrupted in transit: {expected_path!r} -> {parsed.path!r}"
        if parsed.body != body:
            return f"body corrupted in transit: {body!r} -> {parsed.body!r}"
        return None

    def _check_response(self, case: dict) -> Optional[str]:
        body = case_to_bytes(case["body"])
        if not isinstance(case["status"], int):
            return None
        try:
            wire = build_response(case["status"], body, reason=case["reason"] or None)
        except HttpFramingError:
            return None
        except Exception as exc:
            return f"build_response leaked {type(exc).__name__}: {exc}"
        try:
            parsed = parse_response(wire)
        except HttpFramingError as exc:
            return f"build_response framed an unparsable response: {exc}"
        if parsed.status != case["status"]:
            return f"status corrupted: {case['status']} -> {parsed.status}"
        if parsed.body != body:
            return f"body corrupted: {body!r} -> {parsed.body!r}"
        return None

    def _check_tamper_length(self, case: dict) -> Optional[str]:
        body = case_to_bytes(case["body"])
        declared = case["declared"]
        if not isinstance(declared, int) or declared < 0:
            return None
        wire = (
            b"POST /conf HTTP/1.1\r\nHost: localhost\r\n"
            + f"Content-Length: {declared}\r\n\r\n".encode("ascii")
            + body
        )
        try:
            parsed = parse_request(wire)
        except HttpFramingError:
            if declared == len(body):
                return f"matching Content-Length {declared} was rejected"
            return None
        if declared != len(body):
            return (
                f"Content-Length {declared} accepted for a {len(body)}-byte body "
                f"(silent truncation/padding)"
            )
        if parsed.body != body:
            return f"body corrupted: {body!r} -> {parsed.body!r}"
        return None

    def _check_truncate(self, case: dict) -> Optional[str]:
        body = case_to_bytes(case["body"])
        drop = case["drop"]
        if not isinstance(drop, int) or drop < 1 or b"\r" in body:
            return None
        wire = build_request("http://localhost/conf", body)
        cut = wire[: max(0, len(wire) - drop)]
        try:
            parsed = parse_request(cut)
        except HttpFramingError:
            return None
        return (
            f"truncated wire (dropped {drop} of {len(wire)} bytes) parsed "
            f"silently with body {parsed.body!r}"
        )

    def _check_embedded_crlf(self, case: dict) -> Optional[str]:
        body = case_to_bytes(case["body"])
        wire = build_request("http://localhost/conf", body)
        try:
            parsed = parse_request(wire)
        except HttpFramingError as exc:
            return f"body containing CRLFCRLF rejected: {exc}"
        if parsed.body != body:
            return (
                f"body containing CRLFCRLF truncated at the embedded separator: "
                f"{body!r} -> {parsed.body!r}"
            )
        return None

    def _check_garbage(self, case: dict) -> Optional[str]:
        return self._parse_or_framing_error(case, parse_request)

    def _check_response_garbage(self, case: dict) -> Optional[str]:
        return self._parse_or_framing_error(case, parse_response)

    def _parse_or_framing_error(self, case: dict, parser) -> Optional[str]:
        wire = case_to_bytes(case["wire"])
        try:
            message = parser(wire)
        except HttpFramingError:
            return None
        except Exception as exc:
            return f"{parser.__name__} leaked {type(exc).__name__}: {exc}"
        declared = message.headers.get("Content-Length")
        if declared is not None and int(declared) != len(message.body):
            return (
                f"{parser.__name__} accepted Content-Length {declared} with a "
                f"{len(message.body)}-byte body"
            )
        return None
