"""Lifecycle engine: subscription schedules against both spec families.

Each case is a schedule — initial subscriptions with generated expirations,
then a sequence of clock advances, publishes, renews, unsubscribes, and
status queries — executed against a *real* WSE source or WSN producer over
the simulated network, with a tiny reference model running alongside.  The
invariants are the ones the paper's comparison takes for granted:

- an invalid expiration (``PT0S``, ``-PT5S``, a past dateTime, garbage) is
  faulted at subscribe/renew time with the family's own subcode — never
  silently granted;
- a granted expiration is exact: a requested absolute dateTime is echoed
  verbatim, and a duration (or the default lifetime) is anchored at the
  grant instant — which the model brackets between the virtual-clock reads
  before and after the call, since the simulated network charges per-hop
  latency between client and manager;
- no delivery after expiry or unsubscribe, every delivery before, in order;
- management operations on an expired or unsubscribed subscription fault.

The model is deliberately naive — a dict per subscription with a float
expiry — because its whole value is having *no code in common* with the
stores it checks.
"""

from __future__ import annotations

from typing import Optional

from repro.conformance.gen import pick
from repro.soap.fault import SoapFault
from repro.transport import SimulatedNetwork, VirtualClock
from repro.util.rng import SeededRng
from repro.util.xstime import format_datetime, parse_expires
from repro.xmlkit.element import XElem
from repro.xmlkit.names import QName

_FAMILIES = ("wse", "wsn")
_WSE_VERSIONS = ("V2004_01", "V2004_08")
_DEFAULT_LIFETIME = 3600.0

_INVALID_KINDS = ("zero", "negative", "pastdt", "garbage")


def _gen_expiry(rng: SeededRng, *, allow_invalid: bool = True) -> dict:
    roll = rng.randrange(100)
    if roll < 20:
        return {"kind": "none"}
    if roll < 60 or not allow_invalid:
        return {"kind": "duration", "secs": 1 + rng.randrange(1000)}
    if roll < 75:
        return {"kind": "datetime", "secs": 1 + rng.randrange(1000)}
    invalid = pick(rng, _INVALID_KINDS)
    if invalid in ("negative", "pastdt"):
        return {"kind": invalid, "secs": 1 + rng.randrange(100)}
    return {"kind": invalid}


def _valid_expiry_spec(spec: object) -> bool:
    if not isinstance(spec, dict):
        return False
    kind = spec.get("kind")
    if kind in ("none", "zero", "garbage"):
        return True
    if kind in ("duration", "datetime", "negative", "pastdt"):
        return isinstance(spec.get("secs"), int) and spec["secs"] >= 1
    return False


def _render_expiry(spec: dict, now: float) -> Optional[str]:
    kind = spec["kind"]
    if kind == "none":
        return None
    if kind == "duration":
        return f"PT{spec['secs']}S"
    if kind == "datetime":
        return format_datetime(now + spec["secs"])
    if kind == "zero":
        return "PT0S"
    if kind == "negative":
        return f"-PT{spec['secs']}S"
    if kind == "pastdt":
        return format_datetime(now - spec["secs"])
    return "P!not-a-duration"  # garbage


def _expiry_is_invalid(spec: dict) -> bool:
    return spec["kind"] in _INVALID_KINDS


class LifecycleEngine:
    name = "lifecycle"

    def generate(self, rng: SeededRng) -> dict:
        family = pick(rng, _FAMILIES)
        version = pick(rng, _WSE_VERSIONS) if family == "wse" else "V1_3"
        subs = [_gen_expiry(rng) for _ in range(1 + rng.randrange(3))]
        ops: list[dict] = []
        for _ in range(2 + rng.randrange(7)):
            roll = rng.randrange(100)
            if roll < 30:
                secs = 3000 + rng.randrange(1200) if rng.randrange(5) == 0 else 1 + rng.randrange(400)
                ops.append({"op": "advance", "secs": secs})
            elif roll < 60:
                ops.append({"op": "publish"})
            elif roll < 80:
                ops.append(
                    {
                        "op": "renew",
                        "sub": rng.randrange(len(subs)),
                        "expires": _gen_expiry(rng),
                    }
                )
            elif roll < 92 or version != "V2004_08":
                ops.append({"op": "unsubscribe", "sub": rng.randrange(len(subs))})
            else:
                ops.append({"op": "status", "sub": rng.randrange(len(subs))})
        return {"family": family, "version": version, "subs": subs, "ops": ops}

    # --- validity (the shrinker mutates blindly) --------------------------

    def _valid(self, case: object) -> bool:
        if not isinstance(case, dict):
            return False
        family, version = case.get("family"), case.get("version")
        if family == "wse":
            if version not in _WSE_VERSIONS:
                return False
        elif family == "wsn":
            if version != "V1_3":
                return False
        else:
            return False
        subs = case.get("subs")
        if not isinstance(subs, list) or not subs:
            return False
        if not all(_valid_expiry_spec(s) for s in subs):
            return False
        ops = case.get("ops")
        if not isinstance(ops, list):
            return False
        for op in ops:
            if not isinstance(op, dict):
                return False
            kind = op.get("op")
            if kind == "advance":
                if not (isinstance(op.get("secs"), int) and op["secs"] >= 1):
                    return False
            elif kind == "publish":
                pass
            elif kind == "renew":
                if not (
                    isinstance(op.get("sub"), int)
                    and 0 <= op["sub"] < len(subs)
                    and _valid_expiry_spec(op.get("expires"))
                ):
                    return False
            elif kind in ("unsubscribe", "status"):
                if not (isinstance(op.get("sub"), int) and 0 <= op["sub"] < len(subs)):
                    return False
                if kind == "status" and version != "V2004_08":
                    return False
            else:
                return False
        return True

    # --- execution --------------------------------------------------------

    def check(self, case: object) -> Optional[str]:
        if not self._valid(case):
            return None
        runner = _WseRun(case) if case["family"] == "wse" else _WsnRun(case)
        return runner.run()


class _Run:
    """Shared schedule interpreter; subclasses bind one family's client API."""

    fault_subcode: str

    def __init__(self, case: dict) -> None:
        self.case = case
        self.clock = VirtualClock()
        self.network = SimulatedNetwork(self.clock)
        #: per-sub model: {"handle", "expires": float, "gone": bool, "expected": [markers]}
        self.model: list[dict] = []
        self.published = 0

    # family bindings ------------------------------------------------------

    def subscribe(self, index: int, expires_text: Optional[str]) -> object:
        raise NotImplementedError

    def renew(self, handle: object, expires_text: Optional[str]) -> str:
        raise NotImplementedError

    def unsubscribe(self, handle: object) -> None:
        raise NotImplementedError

    def status(self, handle: object) -> str:
        raise NotImplementedError

    def publish(self, payload: XElem) -> None:
        raise NotImplementedError

    def delivered(self, index: int) -> list[str]:
        raise NotImplementedError

    def granted_text(self, handle: object) -> str:
        raise NotImplementedError

    # model ----------------------------------------------------------------

    def _live(self, sub: dict) -> bool:
        return (
            sub["handle"] is not None
            and not sub["gone"]
            and sub["expires"] > self.clock.now()
        )

    def _grant_failure(
        self, spec: dict, text: Optional[str], before: float, after: float, granted_text: str
    ) -> tuple[Optional[str], float]:
        """Validate a granted expiration; returns (failure, granted_seconds).

        An absolute request must be echoed verbatim.  A duration (or the
        default lifetime) is anchored at the instant the manager granted it,
        which must fall inside the request's round-trip window on the
        virtual clock — any other anchor means the lease is longer or
        shorter than the spec promises.
        """
        try:
            granted = parse_expires(granted_text, now=before)
        except ValueError as exc:
            return f"ungrammatical granted expiration {granted_text!r}: {exc}", 0.0
        if spec["kind"] == "datetime":
            if granted_text != text:
                return f"granted {granted_text!r} != requested absolute {text!r}", granted
            return None, granted
        secs = _DEFAULT_LIFETIME if spec["kind"] == "none" else float(spec["secs"])
        anchor = granted - secs
        if not (before - 1e-9 <= anchor <= after + 1e-9):
            return (
                f"granted {granted_text!r} anchors the {secs}s lease at t={anchor}, "
                f"outside the request window [{before}, {after}]",
                granted,
            )
        return None, granted

    def run(self) -> Optional[str]:
        failure = self._subscribe_all()
        if failure is not None:
            return failure
        for step, op in enumerate(self.case["ops"]):
            failure = self._apply(step, op)
            if failure is not None:
                return f"[{self.case['family']}/{self.case['version']}] op {step} {op['op']}: {failure}"
        return self._check_deliveries("final")

    def _subscribe_all(self) -> Optional[str]:
        for index, spec in enumerate(self.case["subs"]):
            now = self.clock.now()
            text = _render_expiry(spec, now)
            tag = f"[{self.case['family']}/{self.case['version']}] subscribe {index} ({spec['kind']})"
            try:
                handle = self.subscribe(index, text)
            except SoapFault as fault:
                if not _expiry_is_invalid(spec):
                    return f"{tag}: unexpected fault: {fault}"
                if not self._fault_matches(fault):
                    return f"{tag}: fault lacks {self.fault_subcode} subcode: {fault}"
                self.model.append(
                    {"handle": None, "expires": 0.0, "gone": True, "expected": []}
                )
                continue
            if _expiry_is_invalid(spec):
                return f"{tag}: invalid expiration {text!r} was granted"
            failure, granted = self._grant_failure(
                spec, text, now, self.clock.now(), self.granted_text(handle)
            )
            if failure is not None:
                return f"{tag}: {failure}"
            self.model.append(
                {"handle": handle, "expires": granted, "gone": False, "expected": []}
            )
        return None

    def _fault_matches(self, fault: SoapFault) -> bool:
        subcode = getattr(fault, "subcode", None)
        if subcode is not None and self.fault_subcode in subcode.local:
            return True
        return self.fault_subcode in str(fault)

    def _apply(self, step: int, op: dict) -> Optional[str]:
        kind = op["op"]
        if kind == "advance":
            self.clock.advance(float(op["secs"]))
            return None
        if kind == "publish":
            marker = f"m{self.published}"
            self.published += 1
            for sub in self.model:
                if self._live(sub):
                    sub["expected"].append(marker)
            self.publish(XElem(QName("", "conf-evt"), children=[marker]))
            return self._check_deliveries(f"after publish {marker}")
        sub = self.model[op["sub"]]
        if sub["handle"] is None:
            return None  # never created (faulted at subscribe): nothing to manage
        if kind == "renew":
            return self._apply_renew(sub, op)
        if kind == "unsubscribe":
            return self._apply_unsubscribe(sub, op)
        return self._apply_status(sub, op)

    def _apply_renew(self, sub: dict, op: dict) -> Optional[str]:
        spec = op["expires"]
        now = self.clock.now()
        text = _render_expiry(spec, now)
        live = self._live(sub)
        try:
            granted = self.renew(sub["handle"], text)
        except SoapFault as fault:
            if live and not _expiry_is_invalid(spec):
                return f"sub {op['sub']}: unexpected renew fault: {fault}"
            return None  # dead subscription or invalid expiry: fault is the contract
        if not live:
            return f"sub {op['sub']}: renew of a dead subscription succeeded"
        if _expiry_is_invalid(spec):
            return f"sub {op['sub']}: invalid renewal {text!r} was granted"
        failure, granted_at = self._grant_failure(
            spec, text, now, self.clock.now(), granted
        )
        if failure is not None:
            return f"sub {op['sub']}: renew {failure}"
        sub["expires"] = granted_at
        return None

    def _apply_unsubscribe(self, sub: dict, op: dict) -> Optional[str]:
        live = self._live(sub)
        try:
            self.unsubscribe(sub["handle"])
        except SoapFault as fault:
            if live:
                return f"sub {op['sub']}: unexpected unsubscribe fault: {fault}"
            return None
        if not live:
            return f"sub {op['sub']}: unsubscribe of a dead subscription succeeded"
        sub["gone"] = True
        return None

    def _apply_status(self, sub: dict, op: dict) -> Optional[str]:
        live = self._live(sub)
        try:
            reported = self.status(sub["handle"])
        except SoapFault as fault:
            if live:
                return f"sub {op['sub']}: unexpected status fault: {fault}"
            return None
        if not live:
            return f"sub {op['sub']}: status of a dead subscription succeeded"
        if reported != format_datetime(sub["expires"]):
            return (
                f"sub {op['sub']}: status reports {reported!r}, model says "
                f"{format_datetime(sub['expires'])!r}"
            )
        return None

    def _check_deliveries(self, when: str) -> Optional[str]:
        for index, sub in enumerate(self.model):
            if sub["handle"] is None:
                continue
            actual = self.delivered(index)
            if actual != sub["expected"]:
                return (
                    f"[{self.case['family']}/{self.case['version']}] {when}: "
                    f"sub {index} saw {actual}, model expects {sub['expected']}"
                )
        return None


class _WseRun(_Run):
    fault_subcode = "InvalidExpirationTime"

    def __init__(self, case: dict) -> None:
        super().__init__(case)
        from repro.wse import EventSink, EventSource, WseSubscriber
        from repro.wse.versions import WseVersion

        version = WseVersion[case["version"]]
        self.source = EventSource(self.network, "http://conf-source", version=version)
        self.subscriber = WseSubscriber(self.network, version=version)
        self.sinks = [
            EventSink(self.network, f"http://conf-sink-{i}", version=version)
            for i in range(len(case["subs"]))
        ]

    def subscribe(self, index: int, expires_text: Optional[str]) -> object:
        return self.subscriber.subscribe(
            self.source.epr(),
            notify_to=self.sinks[index].epr(),
            expires=expires_text,
        )

    def renew(self, handle: object, expires_text: Optional[str]) -> str:
        return self.subscriber.renew(handle, expires_text)

    def unsubscribe(self, handle: object) -> None:
        self.subscriber.unsubscribe(handle)

    def status(self, handle: object) -> str:
        return self.subscriber.get_status(handle)

    def publish(self, payload: XElem) -> None:
        self.source.publish(payload)

    def delivered(self, index: int) -> list[str]:
        return [payload.full_text() for payload in self.sinks[index].payloads()]

    def granted_text(self, handle: object) -> str:
        return handle.expires_text


class _WsnRun(_Run):
    fault_subcode = "TerminationTimeFault"  # Unacceptable(Initial)TerminationTimeFault

    TOPIC = "conf"

    def __init__(self, case: dict) -> None:
        super().__init__(case)
        from repro.wsn import NotificationConsumer, NotificationProducer, WsnSubscriber
        from repro.wsn.versions import WsnVersion

        version = WsnVersion[case["version"]]
        self.producer = NotificationProducer(
            self.network, "http://conf-producer", version=version
        )
        self.subscriber = WsnSubscriber(self.network, version=version)
        self.consumers = [
            NotificationConsumer(self.network, f"http://conf-consumer-{i}", version=version)
            for i in range(len(case["subs"]))
        ]

    def subscribe(self, index: int, expires_text: Optional[str]) -> object:
        return self.subscriber.subscribe(
            self.producer.epr(),
            self.consumers[index].epr(),
            topic=self.TOPIC,
            initial_termination=expires_text,
        )

    def renew(self, handle: object, expires_text: Optional[str]) -> str:
        return self.subscriber.renew(handle, expires_text)

    def unsubscribe(self, handle: object) -> None:
        self.subscriber.unsubscribe(handle)

    def status(self, handle: object) -> str:  # pragma: no cover - not generated
        raise NotImplementedError("status ops are WSE 08/2004 only")

    def publish(self, payload: XElem) -> None:
        self.producer.publish(payload, topic=self.TOPIC)

    def delivered(self, index: int) -> list[str]:
        return [payload.full_text() for payload in self.consumers[index].payloads()]

    def granted_text(self, handle: object) -> str:
        return handle.termination_time_text or ""
