"""Durability differential engine: a crash-recovered broker is invisible.

The event-sourced store's contract (:mod:`repro.store`): rebuilding a broker
from its log is a *projection fixpoint* — the recovered state equals the
live state — and consumers cannot tell a crash happened apart from latency.
Each case is a short publish stream with a randomized crash point.  The
same stream is fed to an uninterrupted baseline broker and to a store-backed
broker that is killed after ``crash_at`` publishes and rebuilt from its log
(:func:`repro.store.recover_broker`).  Checked:

- the projection rebuilt from the log equals the projection snapshotted
  from the live broker the instant before the crash (replay fixpoint);
- every consumer sees the same notifications as the baseline, in the same
  order, payloads strictly byte-identical, topics preserved — no loss from
  the crash, no duplicates from the replay.
"""

from __future__ import annotations

from typing import Optional

from repro.conformance.gen import (
    gen_tree_spec,
    pick,
    spec_to_elem,
    strict_diff,
    valid_tree_spec,
)
from repro.util.rng import SeededRng

_TOPIC_POOL = ("alpha", "beta", "gamma", "delta")


class DurabilityEngine:
    name = "durability"

    def generate(self, rng: SeededRng) -> dict:
        stream = []
        for _ in range(1 + rng.randrange(5)):
            topic = None if rng.randrange(6) == 0 else pick(rng, _TOPIC_POOL)
            stream.append(
                {"topic": topic, "payload": gen_tree_spec(rng, max_depth=2)}
            )
        return {
            "stream": stream,
            "watch_topic": pick(rng, _TOPIC_POOL),
            "crash_at": rng.randrange(len(stream) + 1),
        }

    def _valid(self, case: object) -> bool:
        if not isinstance(case, dict):
            return False
        stream = case.get("stream")
        if not isinstance(stream, list) or not stream:
            return False
        for item in stream:
            if not isinstance(item, dict):
                return False
            topic = item.get("topic")
            if topic is not None and not (isinstance(topic, str) and topic.isalnum()):
                return False
            if not valid_tree_spec(item.get("payload")):
                return False
        watch = case.get("watch_topic")
        if not isinstance(watch, str) or not watch.isalnum():
            return False
        crash_at = case.get("crash_at")
        if not isinstance(crash_at, int) or not 0 <= crash_at <= len(stream):
            return False
        return True

    def check(self, case: object) -> Optional[str]:
        if not self._valid(case):
            return None
        from repro.delivery import DeliveryPolicy
        from repro.messenger import WsMessenger
        from repro.store import BrokerStore, MemoryEventLog, recover_broker
        from repro.transport import SimulatedNetwork, VirtualClock
        from repro.wse import EventSink, WseSubscriber
        from repro.wse.versions import WseVersion
        from repro.wsn import NotificationConsumer, WsnSubscriber
        from repro.wsn.versions import WsnVersion

        stream = case["stream"]
        watch = case["watch_topic"]
        crash_at = case["crash_at"]
        originals = [spec_to_elem(item["payload"]) for item in stream]
        versions = dict(
            wse_versions=[WseVersion.V2004_08], wsn_versions=[WsnVersion.V1_3]
        )

        # --- the uninterrupted baseline --------------------------------------
        # a store implies a delivery pipeline, so the baseline gets the same
        # policy — the differential must isolate the crash, not the pipeline
        base_net = SimulatedNetwork(VirtualClock())
        baseline = WsMessenger(
            base_net, "http://conf-dur-base", delivery=DeliveryPolicy(), **versions
        )
        base_sink = EventSink(base_net, "http://conf-dur-base-sink")
        WseSubscriber(base_net).subscribe(baseline.epr(), notify_to=base_sink.epr())
        base_consumer = NotificationConsumer(base_net, "http://conf-dur-base-consumer")
        WsnSubscriber(base_net).subscribe(
            baseline.epr(), base_consumer.epr(), topic=watch
        )
        for item, payload in zip(stream, originals):
            baseline.publish(payload.copy(), topic=item["topic"])
        baseline.run_deliveries_until_idle()

        # --- the crash-recovered broker --------------------------------------
        dur_net = SimulatedNetwork(VirtualClock())
        broker = WsMessenger(
            dur_net,
            "http://conf-dur",
            store=BrokerStore(MemoryEventLog()),
            **versions,
        )
        dur_sink = EventSink(dur_net, "http://conf-dur-sink")
        WseSubscriber(dur_net).subscribe(broker.epr(), notify_to=dur_sink.epr())
        dur_consumer = NotificationConsumer(dur_net, "http://conf-dur-consumer")
        WsnSubscriber(dur_net).subscribe(broker.epr(), dur_consumer.epr(), topic=watch)
        for item, payload in zip(stream[:crash_at], originals[:crash_at]):
            broker.publish(payload.copy(), topic=item["topic"])
        broker.run_deliveries_until_idle()
        live = broker.store.projection(broker)
        broker.close()
        broker = recover_broker(dur_net, "http://conf-dur", broker.store.log)
        broker.run_deliveries_until_idle()
        rebuilt = broker.store.projection(broker)
        if rebuilt != live:
            return (
                "projection fixpoint violated: live state before the crash"
                f" {live!r}, rebuilt from the log {rebuilt!r}"
            )
        for item, payload in zip(stream[crash_at:], originals[crash_at:]):
            broker.publish(payload.copy(), topic=item["topic"])
        broker.run_deliveries_until_idle()

        # --- the differential ------------------------------------------------
        if len(dur_sink.received) != len(base_sink.received):
            return (
                f"WSE path: recovered broker delivered {len(dur_sink.received)},"
                f" baseline {len(base_sink.received)}"
                f" (crash after {crash_at} of {len(stream)} publishes)"
            )
        if len(dur_consumer.received) != len(base_consumer.received):
            return (
                f"WSN path: recovered broker delivered"
                f" {len(dur_consumer.received)},"
                f" baseline {len(base_consumer.received)}"
                f" (crash after {crash_at} of {len(stream)} publishes)"
            )
        for index, (base_item, dur_item) in enumerate(
            zip(base_sink.received, dur_sink.received)
        ):
            diff = strict_diff(base_item.payload, dur_item.payload)
            if diff is not None:
                return f"WSE delivery {index}: payload differs at {diff}"
        for index, (base_item, dur_item) in enumerate(
            zip(base_consumer.received, dur_consumer.received)
        ):
            diff = strict_diff(base_item.payload, dur_item.payload)
            if diff is not None:
                return f"WSN delivery {index}: payload differs at {diff}"
            if base_item.topic != dur_item.topic:
                return (
                    f"WSN delivery {index}: topic {base_item.topic!r} arrived"
                    f" as {dur_item.topic!r} after recovery"
                )
        return None
