"""Deterministic wire-fidelity conformance fuzzing.

The paper's comparison rests entirely on what the two spec families put on
the wire, so the codec, the HTTP framing, the subscription-lifecycle
semantics, and the WS-Messenger mediation layer each get a property-based
fuzz engine here.  Everything is a pure function of ``(seed, case index)``:
generators draw from :class:`repro.util.rng.SeededRng`, scenarios run on the
virtual clock, and the report renders byte-identically across runs at the
same seed.

Four engines:

- ``codec`` — generated :class:`XElem` trees and adversarial raw XML must
  satisfy ``parse(serialize(x)) == x`` and serialize to a fixpoint, frozen
  payloads and prefix remapping included;
- ``framing`` — generated HTTP requests/responses with adversarial
  ``Content-Length``, non-ASCII headers, and embedded ``CRLFCRLF`` must
  parse-or-``HttpFramingError``, never silently truncate;
- ``lifecycle`` — generated subscribe/renew/unsubscribe/expiry schedules
  against the WSE source and the WSN producer, asserting the virtual-clock
  invariants (no delivery after expiry, renew extends exactly, invalid
  ``Expires`` faults per spec);
- ``mediation`` — one generated publish stream through the WS-Messenger
  broker must yield payload-identical notifications on the WSE and WSN
  delivery paths;
- ``pulldrain`` — generated drain sequences against every pull-style
  surface (message boxes, WSN pull points, WSE pull-mode subscriptions)
  must honour the "at most N" contract: omitted means all, zero/negative
  means nothing, non-numeric is a Sender fault, order is FIFO.

Every counterexample is shrunk by greedy deletion and can be frozen as a
regression corpus file under ``tests/conformance/corpus/`` — a bug found
once stays found.  Run as ``python -m repro conformance --seed N --cases M``.
"""

from repro.conformance.harness import (
    ENGINES,
    ConformanceReport,
    load_corpus,
    run_conformance,
    run_corpus,
)

__all__ = [
    "ENGINES",
    "ConformanceReport",
    "load_corpus",
    "run_conformance",
    "run_corpus",
]
