"""Mesh differential engine: a 3-shard mesh must be invisible to consumers.

The mesh's contract is the mediation claim one level up: sharding, publish
forwarding and federation links are topology, not semantics.  Each case is
a short publish stream with randomized *entry nodes* (which shard each
publish enters at) and randomized *consumer homes* (which shard each
subscription registers at).  The same stream is fed to a 1-broker baseline
and to a 3-shard :class:`~repro.mesh.MeshCluster`; every consumer must see
the same notifications, in the same order, with payloads strictly
identical byte-for-byte (``strict_diff``) and topics preserved — whatever
path the mesh routed them over.
"""

from __future__ import annotations

from typing import Optional

from repro.conformance.gen import (
    gen_tree_spec,
    pick,
    spec_to_elem,
    strict_diff,
    valid_tree_spec,
)
from repro.util.rng import SeededRng

_TOPIC_POOL = ("alpha", "beta", "gamma", "delta")
_SHARDS = 3


class MeshEngine:
    name = "mesh"

    def generate(self, rng: SeededRng) -> dict:
        stream = []
        for _ in range(1 + rng.randrange(5)):
            # one in six publishes is topicless (legal in WSE and WSN 1.3;
            # routes by the reserved topicless key)
            topic = None if rng.randrange(6) == 0 else pick(rng, _TOPIC_POOL)
            stream.append(
                {
                    "topic": topic,
                    "payload": gen_tree_spec(rng, max_depth=2),
                    "via": rng.randrange(_SHARDS),
                }
            )
        return {
            "stream": stream,
            "watch_topic": pick(rng, _TOPIC_POOL),
            "wsn_home": rng.randrange(_SHARDS),
            "wse_home": rng.randrange(_SHARDS),
        }

    def _valid(self, case: object) -> bool:
        if not isinstance(case, dict):
            return False
        stream = case.get("stream")
        if not isinstance(stream, list) or not stream:
            return False
        for item in stream:
            if not isinstance(item, dict):
                return False
            topic = item.get("topic")
            if topic is not None and not (isinstance(topic, str) and topic.isalnum()):
                return False
            if not valid_tree_spec(item.get("payload")):
                return False
            via = item.get("via")
            if not isinstance(via, int) or not 0 <= via < _SHARDS:
                return False
        watch = case.get("watch_topic")
        if not isinstance(watch, str) or not watch.isalnum():
            return False
        for key in ("wsn_home", "wse_home"):
            home = case.get(key)
            if not isinstance(home, int) or not 0 <= home < _SHARDS:
                return False
        return True

    def check(self, case: object) -> Optional[str]:
        if not self._valid(case):
            return None
        from repro.mesh import MeshCluster
        from repro.messenger import WsMessenger
        from repro.transport import SimulatedNetwork, VirtualClock
        from repro.wse import EventSink, WseSubscriber
        from repro.wse.versions import WseVersion
        from repro.wsn import NotificationConsumer, WsnSubscriber
        from repro.wsn.versions import WsnVersion

        stream = case["stream"]
        watch = case["watch_topic"]
        originals = [spec_to_elem(item["payload"]) for item in stream]

        # --- the 1-broker baseline -------------------------------------------
        base_net = SimulatedNetwork(VirtualClock())
        broker = WsMessenger(
            base_net,
            "http://conf-mesh-baseline",
            wse_versions=[WseVersion.V2004_08],
            wsn_versions=[WsnVersion.V1_3],
        )
        base_sink = EventSink(base_net, "http://conf-base-sink")
        WseSubscriber(base_net).subscribe(broker.epr(), notify_to=base_sink.epr())
        base_consumer = NotificationConsumer(base_net, "http://conf-base-consumer")
        WsnSubscriber(base_net).subscribe(broker.epr(), base_consumer.epr(), topic=watch)
        for item, payload in zip(stream, originals):
            broker.publish(payload.copy(), topic=item["topic"])

        # --- the 3-shard mesh ------------------------------------------------
        mesh_net = SimulatedNetwork(VirtualClock())
        mesh = MeshCluster(
            mesh_net,
            _SHARDS,
            base_address="http://conf-mesh",
            wse_versions=[WseVersion.V2004_08],
            wsn_versions=[WsnVersion.V1_3],
        )
        mesh_sink = EventSink(mesh_net, "http://conf-mesh-sink")
        mesh.subscribe_wse(mesh_sink.address, home=case["wse_home"])
        mesh_consumer = NotificationConsumer(mesh_net, "http://conf-mesh-consumer")
        mesh.subscribe_wsn(mesh_consumer.address, topic=watch, home=case["wsn_home"])
        for item, payload in zip(stream, originals):
            mesh.publish(payload.copy(), topic=item["topic"], via=item["via"])

        # --- the differential ------------------------------------------------
        if len(mesh_sink.received) != len(base_sink.received):
            return (
                f"WSE path: mesh delivered {len(mesh_sink.received)},"
                f" baseline {len(base_sink.received)}"
            )
        if len(mesh_consumer.received) != len(base_consumer.received):
            return (
                f"WSN path: mesh delivered {len(mesh_consumer.received)},"
                f" baseline {len(base_consumer.received)}"
            )
        for index, (base_item, mesh_item) in enumerate(
            zip(base_sink.received, mesh_sink.received)
        ):
            diff = strict_diff(base_item.payload, mesh_item.payload)
            if diff is not None:
                return f"WSE delivery {index}: mesh payload differs at {diff}"
        for index, (base_item, mesh_item) in enumerate(
            zip(base_consumer.received, mesh_consumer.received)
        ):
            diff = strict_diff(base_item.payload, mesh_item.payload)
            if diff is not None:
                return f"WSN delivery {index}: mesh payload differs at {diff}"
            if base_item.topic != mesh_item.topic:
                return (
                    f"WSN delivery {index}: topic {base_item.topic!r} arrived"
                    f" as {mesh_item.topic!r} through the mesh"
                )
        return None
