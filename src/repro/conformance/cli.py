"""``python -m repro conformance``: run the wire-fidelity fuzzer."""

from __future__ import annotations

import argparse
import sys

from repro.conformance.harness import ENGINES, run_conformance, run_corpus


def conformance_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro conformance",
        description=(
            "Deterministic conformance fuzzing of the codec, HTTP framing, "
            "subscription lifecycle, and WS-Messenger mediation layers."
        ),
    )
    parser.add_argument("--seed", type=int, default=2006, help="RNG seed (default 2006)")
    parser.add_argument(
        "--cases", type=int, default=2000, help="total cases across engines (default 2000)"
    )
    parser.add_argument(
        "--engines",
        default=None,
        help=f"comma-separated subset of {','.join(ENGINES)} (default: all)",
    )
    parser.add_argument(
        "--corpus",
        default=None,
        metavar="DIR",
        help="also replay the regression corpus in DIR",
    )
    parser.add_argument("--json", action="store_true", help="machine-readable output")
    args = parser.parse_args(argv)

    engines = args.engines.split(",") if args.engines else None
    try:
        report = run_conformance(args.seed, args.cases, engines=engines)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(report.to_json() if args.json else report.render())

    corpus_failures = 0
    if args.corpus:
        results = run_corpus(args.corpus)
        corpus_failures = sum(1 for _, message in results if message is not None)
        if not args.json:
            print()
            print(f"corpus: {len(results)} cases, {corpus_failures} failures")
            for entry, message in results:
                if message is not None:
                    print(f"FAIL {entry.engine}/{entry.name}: {message}")
    return 0 if report.ok and corpus_failures == 0 else 1
