"""Seeded case generators shared by the conformance engines.

Cases are plain JSON values (dicts/lists/strings/ints) for three reasons:
they serialize into the regression corpus verbatim, the greedy shrinker can
simplify them structurally without knowing what they mean, and a shrunk
counterexample pasted into a bug report is readable as-is.

Because the shrinker mutates cases blindly (deleting list items, truncating
strings, zeroing ints), every engine validates a case before interpreting it
and treats an invalid case as vacuously passing — the shrinker then simply
never wanders outside the case space.
"""

from __future__ import annotations

from typing import Optional, Sequence, TypeVar, Union

from repro.util.rng import SeededRng
from repro.xmlkit.element import XElem
from repro.xmlkit.names import Namespaces, QName

T = TypeVar("T")

JsonTree = Union[dict, list, str, int, float]

# --- pools -------------------------------------------------------------------
# small fixed vocabularies keep cases readable and shrinking fast; the
# adversarial power is in the *combinations*, not in exotic single values

NAMESPACE_POOL = (
    "",
    "urn:conf:a",
    "urn:conf:b",
    "http://conf.invalid/c",
    Namespaces.WSNT_13,  # has a preferred prefix — exercises that writer path
    Namespaces.WSA_2005_08,
)

LOCAL_NAME_POOL = ("a", "b", "evt", "Data", "x-y", "n1", "long.name", "Ω")

#: raw text chunks for generated trees — includes every character class the
#: writer must escape and the parser must hand back unchanged
TEXT_CHUNK_POOL = (
    "t",
    "a b",
    "0",
    " ",
    "\t",
    "\n",
    "\r",
    "&",
    "<",
    ">",
    '"',
    "'",
    "]]>",
    "é",
    "中",
)

ATTR_VALUE_POOL = TEXT_CHUNK_POOL


def pick(rng: SeededRng, pool: Sequence[T]) -> T:
    return pool[rng.randrange(len(pool))]


def gen_text(rng: SeededRng, *, max_chunks: int = 4, pool: Sequence[str] = TEXT_CHUNK_POOL) -> str:
    return "".join(pick(rng, pool) for _ in range(1 + rng.randrange(max_chunks)))


# --- tree specs --------------------------------------------------------------
# {"ns": str, "local": str, "attrs": [[ns, local, value], ...],
#  "children": [spec | "text chunk", ...]}


def gen_tree_spec(rng: SeededRng, *, depth: int = 0, max_depth: int = 3) -> dict:
    attrs: list[list[str]] = []
    seen: set[tuple[str, str]] = set()
    for _ in range(rng.randrange(3)):
        key = (pick(rng, NAMESPACE_POOL), pick(rng, LOCAL_NAME_POOL))
        if key in seen:
            continue  # duplicate attribute QNames are not well-formed
        seen.add(key)
        attrs.append([key[0], key[1], gen_text(rng, pool=ATTR_VALUE_POOL)])
    children: list[Union[dict, str]] = []
    if depth < max_depth:
        for _ in range(rng.randrange(4)):
            if rng.randrange(2):
                children.append(gen_text(rng))
            else:
                children.append(gen_tree_spec(rng, depth=depth + 1, max_depth=max_depth))
    return {
        "ns": pick(rng, NAMESPACE_POOL),
        "local": pick(rng, LOCAL_NAME_POOL),
        "attrs": attrs,
        "children": children,
    }


def _valid_xml_name(name: object) -> bool:
    if not isinstance(name, str) or not name:
        return False
    first = name[0]
    if not (first.isalpha() or first == "_"):
        return False
    return all(ch.isalnum() or ch in "-._" for ch in name)


def valid_tree_spec(spec: object) -> bool:
    """Structural validity — the gate that keeps the shrinker honest."""
    if not isinstance(spec, dict):
        return False
    if not isinstance(spec.get("ns"), str) or not _valid_xml_name(spec.get("local")):
        return False
    attrs = spec.get("attrs")
    if not isinstance(attrs, list):
        return False
    seen: set[tuple[str, str]] = set()
    for attr in attrs:
        if not (isinstance(attr, list) and len(attr) == 3):
            return False
        ns, local, value = attr
        if not isinstance(ns, str) or not _valid_xml_name(local) or not isinstance(value, str):
            return False
        if (ns, local) in seen:
            return False
        seen.add((ns, local))
    children = spec.get("children")
    if not isinstance(children, list):
        return False
    for child in children:
        if isinstance(child, str):
            continue
        if not valid_tree_spec(child):
            return False
    return True


def spec_to_elem(spec: dict) -> XElem:
    elem = XElem(QName(spec["ns"], spec["local"]))
    for ns, local, value in spec["attrs"]:
        elem.set(QName(ns, local), value)
    for child in spec["children"]:
        elem.append(child if isinstance(child, str) else spec_to_elem(child))
    return elem


# --- strict tree equality ----------------------------------------------------
# XElem.__eq__ is deliberately whitespace-insensitive (message-level
# comparisons want that); round-trip conformance needs the exact tree, so
# this comparison keeps whitespace-only text and only merges adjacency —
# which is unobservable after serialization anyway.


def _merged_text(elem: XElem) -> list[Union[XElem, str]]:
    merged: list[Union[XElem, str]] = []
    for child in elem.children:
        if isinstance(child, str):
            if not child:
                continue
            if merged and isinstance(merged[-1], str):
                merged[-1] = merged[-1] + child
                continue
        merged.append(child)
    return merged


def strict_diff(a: XElem, b: XElem, path: str = "/") -> Optional[str]:
    """First exact-structure mismatch between two trees, or None."""
    if a.name != b.name:
        return f"{path}: name {a.name} != {b.name}"
    if dict(a.attrs) != dict(b.attrs):
        return f"{path}: attrs {dict(a.attrs)!r} != {dict(b.attrs)!r}"
    left, right = _merged_text(a), _merged_text(b)
    if len(left) != len(right):
        return f"{path}: {len(left)} children != {len(right)}"
    for index, (ca, cb) in enumerate(zip(left, right)):
        here = f"{path}[{index}]"
        if isinstance(ca, str) or isinstance(cb, str):
            if ca != cb:
                return f"{here}: text {ca!r} != {cb!r}"
            continue
        found = strict_diff(ca, cb, f"{here}<{ca.name.local}>")
        if found is not None:
            return found
    return None


# --- bytes in JSON -----------------------------------------------------------
# wire blobs ride in cases as latin-1 strings: the mapping is 1:1 for all 256
# byte values, json escapes take care of the rest, and — unlike base64 — any
# shrinker truncation of the string is still a decodable (smaller) blob


def bytes_to_case(data: bytes) -> str:
    return data.decode("latin-1")


def case_to_bytes(text: str) -> bytes:
    return text.encode("latin-1")
