"""Per-sink delivery batching: coalesce same-sink notifications in a window.

At high fan-out the wire request — framing, transport round-trip, receiver
parse — dominates per-notification cost.  WSN's ``Notify`` natively carries
multiple ``NotificationMessage`` elements, so notifications bound for the
same consumer EPR can legally ride one request.  :class:`DeliveryBatcher`
implements the coalescing half of that bargain, policy-driven by
:class:`~repro.delivery.policy.BatchingPolicy`:

* entries accumulate per **group key** (the caller supplies it — the WSN
  producer keys on sink signature + notification shape so every group can
  render through a single envelope byte-template);
* a group flushes when it reaches ``max_batch``, when its virtual-clock
  window expires (``window > 0``, scheduled on the shared
  :class:`~repro.transport.clock.ClockScheduler`), or when the owner flushes
  explicitly (``window == 0`` flushes at the end of each publish);
* what "flush" means — one delivery-manager submission, one direct wire
  push — belongs to the owner's callback; the batcher only decides *when*.

Determinism: windows live on the virtual clock and groups preserve
insertion order, so a (scenario, seed) pair fully determines batch
boundaries, like every other schedule in the pipeline.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable, Optional

from repro.delivery.policy import BatchingPolicy
from repro.transport.clock import ClockScheduler, VirtualClock


@dataclass
class BatcherStats:
    """Coalescing accounting (virtual-clock deterministic)."""

    flushes: int = 0
    coalesced: int = 0
    largest_batch: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "flushes": self.flushes,
            "coalesced": self.coalesced,
            "largest_batch": self.largest_batch,
        }


class DeliveryBatcher:
    """Groups entries per key and flushes them on size/window/demand."""

    def __init__(
        self,
        clock: VirtualClock,
        policy: BatchingPolicy,
        flush: Callable[[Hashable, list], None],
        *,
        scheduler: Optional[ClockScheduler] = None,
        instrumentation=None,
        family: str = "",
    ) -> None:
        self.clock = clock
        self.policy = policy
        self._flush_group = flush
        #: shared with the delivery manager when one exists, so window expiry
        #: is driven by the same run_due/run_until_idle pump as retries
        self.scheduler = scheduler or ClockScheduler(clock)
        self._instr = instrumentation
        self._family = family
        self._pending: "OrderedDict[Hashable, list]" = OrderedDict()
        self._deadlines: dict[Hashable, float] = {}
        #: per-group QoS priority (highest entry wins), for priority_flush
        self._priorities: dict[Hashable, int] = {}
        self.stats = BatcherStats()

    def add(self, key: Hashable, entry, *, priority: int = 0) -> None:
        """Queue one entry; may flush its group immediately (size trigger)."""
        group = self._pending.get(key)
        if group is None:
            group = self._pending[key] = []
            if self.policy.window > 0:
                when = self.clock.now() + self.policy.window
                self._deadlines[key] = when
                self.scheduler.call_at(when, lambda: self._on_deadline(key, when))
        if priority and priority > self._priorities.get(key, 0):
            self._priorities[key] = priority
        group.append(entry)
        if len(group) >= self.policy.max_batch:
            self._flush_key(key)

    def _on_deadline(self, key: Hashable, when: float) -> None:
        if self._deadlines.get(key) != when:
            return  # group already flushed (size/explicit); stale timer
        self._flush_key(key)

    def _flush_key(self, key: Hashable) -> None:
        entries = self._pending.pop(key, None)
        self._deadlines.pop(key, None)
        self._priorities.pop(key, None)
        if not entries:
            return
        n = len(entries)
        self.stats.flushes += 1
        self.stats.coalesced += n
        if n > self.stats.largest_batch:
            self.stats.largest_batch = n
        if self._instr is not None:
            self._instr.count("delivery.batched_total", n, family=self._family)
            flight = self._instr.flight
            if flight.enabled:
                flight.record(
                    "batch_flush", family=self._family, size=n,
                    still_pending=len(self._pending),
                )
        self._flush_group(key, entries)

    def flush_publish(self) -> None:
        """End-of-publish hook: with no window, nothing may stay queued past
        the publish that produced it."""
        if self.policy.window <= 0:
            self.flush_all()

    def flush_all(self) -> None:
        """Flush every group now (explicit drain, e.g. broker ``flush()``).

        With ``priority_flush``, groups leave highest-priority first (the
        sort is stable, so equal priorities keep insertion order); the
        default remains pure insertion order."""
        keys = list(self._pending)
        if self.policy.priority_flush and self._priorities:
            keys.sort(key=lambda key: -self._priorities.get(key, 0))
        for key in keys:
            self._flush_key(key)

    def pending(self) -> int:
        """Entries currently held back waiting for size or window."""
        return sum(len(group) for group in self._pending.values())

    def stale_deadlines(self) -> int:
        """Groups whose window deadline has passed but still hold entries.

        A non-zero value after the scheduler pump has drained everything due
        means a window timer was lost or never pumped — the ``obs-health``
        stale-batch-timer anomaly."""
        now = self.clock.now()
        return sum(
            1
            for key, when in self._deadlines.items()
            if when < now and key in self._pending
        )
