"""Drain-limit parsing, shared by every pull-style handler.

WSN ``GetMessages`` (``MaximumNumber``), a pull point's variant and WSE
``Pull`` (``MaxMessages``) all carry an optional "at most N" element.  The
historical handlers evaluated ``queue[: limit or len(queue)]``, which has
two client-visible bugs: an explicit limit of ``0`` is falsy and silently
became *drain everything*, and a negative limit sliced from the tail.  A
third: non-numeric text raised ``ValueError`` straight out of the handler
(a 500), though a malformed request is the sender's fault.  This helper
fixes all three in one place.
"""

from __future__ import annotations

from typing import Optional

from repro.soap.fault import FaultCode, SoapFault
from repro.xmlkit.element import XElem
from repro.xmlkit.names import QName


def parse_drain_limit(
    body: XElem,
    limit_name: QName,
    *,
    backlog: int,
    subcode: Optional[QName] = None,
) -> int:
    """How many messages this drain request may take from ``backlog``.

    * element absent → the whole backlog (clients omit it for "no
      maximum"; the drain-all default is unchanged);
    * non-numeric text → a **Sender** fault (with ``subcode`` when the
      protocol defines one), never an unhandled exception;
    * ``<= 0`` → nothing: an explicit zero maximum takes zero messages,
      and a negative limit must not slice from the tail.
    """
    limit_elem = body.find(limit_name)
    if limit_elem is None:
        return backlog
    text = limit_elem.full_text().strip()
    try:
        limit = int(text)
    except ValueError as exc:
        raise SoapFault(
            FaultCode.SENDER,
            f"{limit_name.local} is not an integer: {text!r}",
            subcode=subcode,
        ) from exc
    if limit <= 0:
        return 0
    return min(limit, backlog)
