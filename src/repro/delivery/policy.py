"""Delivery policy: how hard the broker tries before giving a message up.

The paper positions WS-Messenger as a "scalable, reliable and efficient"
broker, but neither WS-Eventing nor WS-BaseNotification says anything about
*how* a producer should behave when a push fails — both leave it to
implementation QoS (the gap Table 3's QoS row shows the CORBA Notification
Service filling with 13 explicit properties).  :class:`DeliveryPolicy` is
this implementation's QoS knob set: attempt budget, exponential backoff with
deterministic seeded jitter, per-message TTL, and the circuit-breaker
thresholds the per-sink breakers are built from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.util.rng import SeededRng


@dataclass(frozen=True)
class DeliveryPolicy:
    """Knobs for the reliable delivery pipeline (immutable, shareable)."""

    #: total tries per message, the first included; >= 1
    max_attempts: int = 8
    #: backoff before retry ``n`` is ``base_backoff * multiplier**(n-1)``…
    base_backoff: float = 0.25
    backoff_multiplier: float = 2.0
    #: …capped here (virtual seconds)
    max_backoff: float = 30.0
    #: backoff is scaled by ``1 + jitter * u`` with ``u`` uniform in
    #: ``[-1, 1)`` from the manager's seeded RNG — spread without wall clocks
    jitter: float = 0.2
    #: messages older than this (from enqueue, virtual seconds) are dead-
    #: lettered instead of retried; ``None`` = no expiry
    message_ttl: Optional[float] = None
    #: consecutive failures to one sink that trip its circuit breaker
    breaker_failure_threshold: int = 5
    #: how long a tripped breaker stays open before a half-open probe
    breaker_reset_after: float = 60.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_backoff < 0 or self.max_backoff < 0:
            raise ValueError("backoff durations cannot be negative")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be a fraction in [0, 1)")
        if self.message_ttl is not None and self.message_ttl <= 0:
            raise ValueError("message_ttl must be positive (or None for no expiry)")
        if self.breaker_failure_threshold < 1:
            raise ValueError("breaker_failure_threshold must be at least 1")

    def backoff(self, failures: int, rng: SeededRng) -> float:
        """Delay before the next try after ``failures`` consecutive failures
        (1-based).  Exponential, capped, jittered from ``rng`` — the same
        seed always yields the same retry schedule."""
        if failures < 1:
            raise ValueError("backoff is defined after at least one failure")
        raw = self.base_backoff * self.backoff_multiplier ** (failures - 1)
        raw = min(raw, self.max_backoff)
        if self.jitter:
            raw *= 1.0 + self.jitter * rng.uniform(-1.0, 1.0)
        return raw


#: single-shot policy: behaves like the historical best-effort push except
#: that failures become visible (outcome records + DLQ) instead of silent
BEST_EFFORT = DeliveryPolicy(
    max_attempts=1, base_backoff=0.0, jitter=0.0, breaker_failure_threshold=1
)


@dataclass(frozen=True)
class BatchingPolicy:
    """Per-sink wire coalescing: notifications to the same consumer within
    the window ride one multi-``NotificationMessage`` Notify request.

    ``window`` is in virtual seconds.  ``window == 0`` coalesces only within
    a single publish (every matched subscriber of one event, flushed before
    ``publish`` returns); a positive window additionally holds partial
    batches on the clock scheduler, trading latency for fewer requests.
    ``max_batch`` bounds a single wire request regardless of window.
    """

    window: float = 0.0
    max_batch: int = 100
    #: flush held groups highest consumer QoS ``Priority`` first: under an
    #: adaptive (bounded/paced) delivery pipeline the flush order decides
    #: which consumers reach the queue before shedding starts
    priority_flush: bool = False

    def __post_init__(self) -> None:
        if self.window < 0:
            raise ValueError("window cannot be negative")
        if self.max_batch < 1:
            raise ValueError("max_batch must be at least 1")
