"""Delivery tasks: one queued outbound notification and its life story.

A task is what the WSE source / WSN producer hand the
:class:`~repro.delivery.manager.DeliveryManager` instead of pushing
directly: the target sink address, a ``send`` thunk that performs exactly
one wire attempt (raising the transport's ``NetworkError`` family or
``SoapFault`` on failure), and the spec-neutral message items so the
firewall fallback can park the *content* in a message box even though the
thunk itself is opaque.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.xmlkit.element import XElem

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.propagation import LineageContext


@dataclass(frozen=True)
class DeliveryItem:
    """One spec-neutral message carried by a task (payload + topic).

    ``lineage`` is the sender-side trace context captured when the fan-out
    created this obligation; it survives queueing, parking and DLQ replay,
    so the eventual delivery (push or pull) still lands in the publish's
    trace tree and ledger.

    ``message_id`` is the durable publish id stamped by the broker store
    (when one is attached): ``(message_id, sink)`` is the idempotency key
    that makes crash-replay exactly-once.
    """

    payload: XElem
    topic: Optional[str] = None
    lineage: Optional["LineageContext"] = None
    message_id: Optional[str] = None


class TaskStatus:
    """Task lifecycle states (plain strings; they appear in snapshots)."""

    QUEUED = "queued"
    DELIVERED = "delivered"
    PARKED = "parked"
    DEAD = "dead"
    #: dropped by the adaptive QoS layer (bounded-queue or box overflow) —
    #: an accounted decision, closed in the lineage ledger as ``shed``
    SHED = "shed"


@dataclass
class DeliveryTask:
    """One message on its way to one sink."""

    sink: str
    send: Callable[[], None]
    #: message content for message-box parking and DLQ replay; may be empty
    #: for control traffic (e.g. SubscriptionEnd) that cannot be parked
    items: list[DeliveryItem] = field(default_factory=list)
    #: metric label: which protocol family queued this ("wse"/"wsn"/"")
    family: str = ""
    describe: str = ""
    #: trace context the send thunk resumes under (a batched wrapped-mode
    #: task carries several lineages in ``items``; the wire header carries
    #: this one — the first item's)
    lineage: Optional["LineageContext"] = None
    enqueued_at: float = 0.0
    #: QoS priority (the consumer profile's ``Priority``): under
    #: PriorityOrder discard, lower-priority waiting tasks are shed first
    priority: int = 0
    attempts: int = 0
    status: str = TaskStatus.QUEUED
    last_error: Optional[str] = None
    delivered_at: Optional[float] = None
    #: called once with the task on terminal success
    on_delivered: Optional[Callable[["DeliveryTask"], None]] = None
    #: called once with (task, reason) when the task is dead-lettered
    on_dead: Optional[Callable[["DeliveryTask", str], None]] = None

    @property
    def done(self) -> bool:
        return self.status != TaskStatus.QUEUED

    def snapshot(self) -> dict:
        """Introspection form (used by DLQ listings and tests)."""
        return {
            "sink": self.sink,
            "family": self.family,
            "describe": self.describe,
            "items": len(self.items),
            "topics": [item.topic for item in self.items],
            "enqueued_at": round(self.enqueued_at, 9),
            "attempts": self.attempts,
            "status": self.status,
            "last_error": self.last_error,
            "delivered_at": (
                round(self.delivered_at, 9) if self.delivered_at is not None else None
            ),
        }
