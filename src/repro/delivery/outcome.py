"""Delivery-outcome reporting: no failure is ever invisible.

Before this subsystem existed, the WSE source and WSN producer swallowed
push failures in bare ``except (NetworkError, SoapFault): pass`` blocks —
exactly the silent drop the paper's "reliable" broker claim forbids.  Every
failure now produces a :class:`DeliveryFailure` record on the owning
component's ``delivery_failures`` list and bumps the ``delivery.failed_total``
obs counter, whether or not a :class:`DeliveryManager` (reliability) is
attached.  The record is deliberately tiny: components keep it even in
uninstrumented runs, so tests and operators can always answer "what did we
fail to deliver, to whom, and why".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class DeliveryFailure:
    """One failed outbound send, recorded where it happened."""

    #: virtual-clock time of the failure
    at: float
    #: protocol family label ("wse"/"wsn")
    family: str
    #: which pipeline stage failed ("notify", "subscription_end",
    #: "termination_notification", ...)
    stage: str
    #: target address
    sink: str
    #: ``type(exc).__name__`` — stable across runs, unlike stringified args
    kind: str
    detail: str = ""


def record_failure(
    failures: list[DeliveryFailure],
    instrumentation,
    *,
    at: float,
    family: str,
    stage: str,
    sink: str,
    error: Exception,
) -> DeliveryFailure:
    """Append a failure record and count it; returns the record."""
    failure = DeliveryFailure(
        at=at,
        family=family,
        stage=stage,
        sink=sink,
        kind=type(error).__name__,
        detail=str(error),
    )
    failures.append(failure)
    instrumentation.count(
        "delivery.failed_total", family=family, stage=stage, kind=failure.kind
    )
    return failure


def failure_counts(failures: list[DeliveryFailure]) -> dict[str, int]:
    """Aggregate records by ``family/stage/kind`` (deterministic order)."""
    counts: dict[str, int] = {}
    for failure in failures:
        key = f"{failure.family}/{failure.stage}/{failure.kind}"
        counts[key] = counts.get(key, 0) + 1
    return dict(sorted(counts.items()))
