"""The delivery manager: policy-driven reliable store-and-forward.

This is the pipeline the broker's fan-out routes through when reliability
is enabled.  Instead of a synchronous best-effort push that swallows
failures, every outbound notification becomes a :class:`DeliveryTask` on a
per-sink FIFO queue:

* the **first attempt is synchronous** — on a healthy network the hot path
  is byte-for-byte the old direct push;
* a failed attempt schedules a retry on the virtual clock with exponential
  backoff and deterministic seeded jitter (:class:`DeliveryPolicy`);
* a **circuit breaker** per sink fast-fails attempts to consumers that keep
  refusing, and half-opens on a clock timer;
* :class:`~repro.transport.network.FirewallBlocked` triggers the
  store-and-forward fallback: the message parks in the sink's broker-side
  :class:`~repro.delivery.messagebox.MessageBox`, drained by pull from
  inside the firewall;
* exhausted attempt budgets and TTLs land in the :class:`DeadLetterQueue`,
  introspectable and replayable — never silently dropped.

Per-sink queues are strictly ordered: a retrying head blocks the messages
behind it (head-of-line), which is what keeps redelivery in publish order.
Because nothing here reads a wall clock or global RNG, a (scenario, seed)
pair fully determines every retry timestamp — the reliability benchmark
asserts its artifact is byte-identical across runs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.delivery.breaker import BreakerState, CircuitBreaker
from repro.delivery.dlq import DeadLetterQueue
from repro.delivery.policy import DeliveryPolicy
from repro.delivery.task import DeliveryItem, DeliveryTask, TaskStatus
from repro.obs.instrument import BoundCounters
from repro.transport.clock import ClockScheduler
from repro.transport.network import FirewallBlocked, NetworkError, SimulatedNetwork
from repro.util.rng import SeededRng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.delivery.messagebox import MessageBoxRegistry
    from repro.qos.adaptive import AdaptiveQosController
    from repro.store.core import BrokerStore

from repro.soap.fault import SoapFault


@dataclass
class DeliveryStats:
    """Aggregate pipeline accounting (virtual-clock deterministic)."""

    submitted: int = 0
    #: submissions carrying more than one coalesced notification (delivery
    #: batching or WSE wrapped batches) — each saved at least one request
    batched: int = 0
    delivered: int = 0
    attempts: int = 0
    retries: int = 0
    failed_attempts: int = 0
    parked: int = 0
    dead_lettered: int = 0
    replayed: int = 0
    expired: int = 0
    breaker_fast_fails: int = 0
    #: messages dropped by the adaptive QoS layer (bounded queues, box
    #: overflow) — every one also closed its obligation as ``shed``
    shed: int = 0
    #: attempts deferred because a token bucket was empty (load leveling)
    throttled: int = 0

    def snapshot(self) -> dict:
        return {
            "submitted": self.submitted,
            "batched": self.batched,
            "delivered": self.delivered,
            "attempts": self.attempts,
            "retries": self.retries,
            "failed_attempts": self.failed_attempts,
            "parked": self.parked,
            "dead_lettered": self.dead_lettered,
            "replayed": self.replayed,
            "expired": self.expired,
            "breaker_fast_fails": self.breaker_fast_fails,
            "shed": self.shed,
            "throttled": self.throttled,
        }


class DeliveryManager:
    """Reliable delivery pipeline over one simulated network."""

    def __init__(
        self,
        network: SimulatedNetwork,
        *,
        policy: Optional[DeliveryPolicy] = None,
        seed: int = 0,
        message_boxes: Optional["MessageBoxRegistry"] = None,
        qos: Optional["AdaptiveQosController"] = None,
    ) -> None:
        self.network = network
        self.clock = network.clock
        self.policy = policy or DeliveryPolicy()
        self.scheduler = ClockScheduler(self.clock)
        #: jitter stream — forked per use-site label so unrelated draws
        #: cannot perturb each other's sequences
        self.rng = SeededRng(seed).fork("delivery.backoff")
        self.dlq = DeadLetterQueue()
        self.message_boxes = message_boxes
        #: adaptive QoS controller: bounded queues, DiscardPolicy shedding
        #: and token-bucket pacing (None = the historical unbounded pipeline)
        self.qos = qos
        self.stats = DeliveryStats()
        #: called with the aggregate pending count whenever it may have
        #: moved (submits, drains, gauge sweeps) — the WSN broker hangs its
        #: lag-driven demand pause/resume here
        self.backlog_listeners: list[Callable[[int], None]] = []
        #: durable broker store (set by BrokerStore.attach): stamps items
        #: with idempotency keys, records outcomes, and routes replayed
        #: submissions past obligations the log already settled
        self.store: Optional["BrokerStore"] = None
        self._queues: dict[str, deque[DeliveryTask]] = {}
        self._breakers: dict[str, CircuitBreaker] = {}
        self._wakeups: dict[str, float] = {}
        #: pre-bound per-family counters/histograms for the attempt loop
        self._bound_counters = BoundCounters()
        self._lag_instr = None
        self._lag_histograms: dict[str, object] = {}

    # --- intake ------------------------------------------------------------

    def submit(
        self,
        sink: str,
        send: Callable[[], None],
        *,
        items: Optional[list[DeliveryItem]] = None,
        family: str = "",
        describe: str = "",
        priority: int = 0,
        on_delivered: Optional[Callable[[DeliveryTask], None]] = None,
        on_dead: Optional[Callable[[DeliveryTask, str], None]] = None,
    ) -> DeliveryTask:
        """Queue one message for ``sink``; attempts immediately when the
        sink's queue is empty (the healthy-network fast path)."""
        instr = self.network.instrumentation
        item_list = list(items or [])
        if self.store is not None:
            item_list = self.store.stamp_items(item_list)
        lineage = next(
            (item.lineage for item in item_list if item.lineage is not None), None
        )
        task = DeliveryTask(
            sink=sink,
            send=send,
            items=item_list,
            family=family,
            describe=describe,
            # itemless control traffic still resumes under the span that
            # submitted it (e.g. a SubscriptionEnd inside a publish)
            lineage=lineage if lineage is not None else instr.trace_context(),
            enqueued_at=self.clock.now(),
            priority=priority,
            on_delivered=on_delivered,
            on_dead=on_dead,
        )
        if self.store is not None and self.store.replaying:
            resolution = self.store.resolve_replay(task)
            if resolution is not None:
                return self._apply_replay_resolution(task, resolution)
        self.stats.submitted += 1
        if len(item_list) > 1:
            self.stats.batched += 1
        submitted_counter = self._bound_counters.probe(
            instr, "submitted:" + family
        )
        if submitted_counter is None:
            submitted_counter = self._bound_counters.get(
                instr, "submitted:" + family, "delivery.submitted", family=family
            )
        submitted_counter.inc()
        self._record_items(task, "enqueued", sink=sink, family=family)
        self._enqueue(task)
        self._notify_backlog()
        return task

    def resubmit(self, task: DeliveryTask) -> DeliveryTask:
        """Re-queue a (dead-lettered) task with a fresh budget and TTL."""
        task.attempts = 0
        task.status = TaskStatus.QUEUED
        task.last_error = None
        task.delivered_at = None
        task.enqueued_at = self.clock.now()
        self.stats.replayed += 1
        self.network.instrumentation.count("delivery.replayed", family=task.family)
        self._record_items(task, "replayed", sink=task.sink)
        if self.store is not None:
            self.store.task_replayed(task)
        self._enqueue(task)
        return task

    def _apply_replay_resolution(
        self, task: DeliveryTask, resolution: tuple[str, str]
    ) -> DeliveryTask:
        """Settle a replayed submission the log already accounts for.

        No lineage events and no manager stats: the pre-crash ledger
        entries for these obligations still stand — emitting fresh ones
        would double the books the conservation audit balances."""
        verdict, reason = resolution
        store = self.store
        assert store is not None
        if verdict == "park":
            assert self.message_boxes is not None
            box = self.message_boxes.box_for(task.sink)
            owed = store.replay_park_items(task)
            for item in owed:
                box.park(item)
            task.status = TaskStatus.PARKED
            store.stats.reparked += len(owed)
        elif verdict == "dead":
            task.status = TaskStatus.DEAD
            task.last_error = reason
            self.dlq.add(task, reason, self.clock.now())
            store.stats.redead += 1
        else:  # "suppress": every item already delivered or drained
            task.status = TaskStatus.DELIVERED
            store.stats.suppressed += 1
        return task

    def _record_items(self, task: DeliveryTask, state: str, **detail) -> None:
        """Ledger one transition for every lineage-bearing item of a task."""
        self._record_item_subset(task.items, state, **detail)

    def _record_item_subset(self, items, state: str, **detail) -> None:
        instr = self.network.instrumentation
        if not instr.enabled:
            return
        for item in items:
            if item.lineage is not None:
                instr.lineage_event(item.lineage.lineage_id, state, **detail)

    def _enqueue(self, task: DeliveryTask) -> None:
        queue = self._queues.setdefault(task.sink, deque())
        if self.qos is not None:
            admit, victims = self.qos.plan_admission(task.sink, queue, task)
            for victim in victims:
                queue.remove(victim)
                self._shed(victim, "queue_full")
            if not admit:
                self._shed(task, "queue_full")
                return
        queue.append(task)
        # drain now unless the head is already waiting on a scheduled retry
        # (len > 1 with no wakeup means we are inside this sink's drain loop)
        if task.sink not in self._wakeups and len(queue) == 1:
            self._drain_sink(task.sink)

    # --- the pump ----------------------------------------------------------

    def pending(self) -> int:
        """Messages still queued (excludes delivered/parked/dead)."""
        return sum(len(queue) for queue in self._queues.values())

    def next_due(self) -> Optional[float]:
        return self.scheduler.next_due()

    def run_due(self) -> int:
        """Run retries whose deadline has passed (clock advanced elsewhere)."""
        ran = self.scheduler.run_due()
        self.publish_gauges()
        self._notify_backlog()
        return ran

    def run_until_idle(self, *, deadline: Optional[float] = None) -> int:
        """Fast-forward the clock through every scheduled retry."""
        ran = self.scheduler.run_until_idle(deadline=deadline)
        self.publish_gauges()
        self._notify_backlog()
        return ran

    # --- internals ---------------------------------------------------------

    def _breaker_for(self, sink: str) -> CircuitBreaker:
        breaker = self._breakers.get(sink)
        if breaker is None:
            breaker = self._breakers[sink] = CircuitBreaker(
                self.clock,
                failure_threshold=self.policy.breaker_failure_threshold,
                reset_after=self.policy.breaker_reset_after,
            )
        return breaker

    def _wake_at(self, sink: str, when: float) -> None:
        existing = self._wakeups.get(sink)
        if existing is not None and existing <= when:
            return
        self._wakeups[sink] = when
        self.scheduler.call_at(when, lambda: self._on_wake(sink, when))

    def _on_wake(self, sink: str, when: float) -> None:
        if self._wakeups.get(sink) != when:
            return  # superseded by an earlier wake-up
        del self._wakeups[sink]
        self._drain_sink(sink)
        self._notify_backlog()

    def _breaker_moved(self, instr, sink: str, before, after) -> None:
        """Record one breaker state transition (metric + flight record)."""
        if after is before or not instr.enabled:
            return
        instr.count(
            "delivery.breaker_transitions", sink=sink, state=after.value
        )
        flight = instr.flight
        if flight.enabled:
            flight.record(
                "breaker", sink=sink, previous=before.value, state=after.value
            )

    def _parkable(self, task: DeliveryTask) -> bool:
        return self.message_boxes is not None and bool(task.items)

    def _park(self, task: DeliveryTask) -> None:
        assert self.message_boxes is not None
        box = self.message_boxes.box_for(task.sink)
        parked: list[DeliveryItem] = []
        dropped: list[DeliveryItem] = []
        for item in task.items:
            (parked if box.park(item) else dropped).append(item)
        task.status = TaskStatus.PARKED if parked else TaskStatus.SHED
        instr = self.network.instrumentation
        if parked:
            self.stats.parked += len(parked)
            instr.count("delivery.parked", len(parked), family=task.family)
            flight = instr.flight
            if flight.enabled:
                flight.record(
                    "delivery", sink=task.sink, family=task.family,
                    outcome="parked", items=len(parked),
                )
            self._record_item_subset(
                parked, "pending_pull", sink=task.sink, box=box.address
            )
        if dropped:
            # box overflow: the item never reaches the box, so its
            # obligation must close here (``shed``) or the conservation
            # audit would find messages silently lost under overload
            self.stats.shed += len(dropped)
            instr.count(
                "qos.shed_total", len(dropped),
                family=task.family, reason="box_overflow",
            )
            flight = instr.flight
            if flight.enabled:
                flight.record(
                    "delivery", sink=task.sink, family=task.family,
                    outcome="shed", reason="box_overflow", items=len(dropped),
                )
            self._record_item_subset(
                dropped, "shed", sink=task.sink, reason="box_overflow"
            )
        if self.store is not None:
            if parked:
                self.store.items_parked(task, parked)
            if dropped:
                self.store.items_shed(task, dropped, "box_overflow")

    def _notify_backlog(self) -> None:
        if not self.backlog_listeners:
            return
        pending = self.pending()
        for listener in self.backlog_listeners:
            listener(pending)

    def _shed(self, task: DeliveryTask, reason: str) -> None:
        """Drop one task by QoS decision, with its books kept straight:
        every item's obligation closes as ``shed`` and the drop is counted
        — graceful degradation must never be silent loss."""
        task.status = TaskStatus.SHED
        task.last_error = reason
        self.stats.shed += len(task.items)
        instr = self.network.instrumentation
        instr.count(
            "qos.shed_total", len(task.items) or 1,
            family=task.family, reason=reason,
        )
        flight = instr.flight
        if flight.enabled:
            flight.record(
                "delivery", sink=task.sink, family=task.family,
                outcome="shed", reason=reason, items=len(task.items),
            )
        self._record_items(task, "shed", sink=task.sink, reason=reason)
        if self.store is not None:
            self.store.items_shed(task, task.items, reason)
        if task.on_dead is not None:
            task.on_dead(task, f"shed:{reason}")

    def _dead_letter(self, task: DeliveryTask, reason: str) -> None:
        task.status = TaskStatus.DEAD
        self.dlq.add(task, reason, self.clock.now())
        self.stats.dead_lettered += 1
        instr = self.network.instrumentation
        instr.count("delivery.dead_lettered", family=task.family, reason=reason)
        flight = instr.flight
        if flight.enabled:
            flight.record(
                "delivery", sink=task.sink, family=task.family,
                outcome="dead_lettered", reason=reason,
            )
        self._record_items(task, "dead_lettered", sink=task.sink, reason=reason)
        if self.store is not None:
            self.store.task_dead(task, reason)
        if task.on_dead is not None:
            task.on_dead(task, reason)

    def _drain_sink(self, sink: str) -> None:
        """Work the sink's queue head until empty or forced to wait."""
        instr = self.network.instrumentation
        while True:
            queue = self._queues.get(sink)
            if not queue:
                self._queues.pop(sink, None)
                return
            task = queue[0]
            now = self.clock.now()
            ttl = self.policy.message_ttl
            if ttl is not None and now - task.enqueued_at >= ttl:
                queue.popleft()
                self.stats.expired += 1
                self._dead_letter(task, "ttl_expired")
                continue
            breaker = self._breaker_for(sink)
            state_before = breaker.state
            allowed = breaker.allows()
            self._breaker_moved(instr, sink, state_before, breaker.state)
            if not allowed:
                # known-firewalled sinks store-and-forward straight away
                if self.message_boxes is not None and self.message_boxes.get(
                    sink
                ) is not None and task.items:
                    queue.popleft()
                    self._park(task)
                    continue
                self.stats.breaker_fast_fails += 1
                instr.count("delivery.breaker_fast_fails", family=task.family)
                self._wake_at(sink, breaker.retry_at())
                return
            if self.qos is not None:
                ready_at = self.qos.attempt_delay(sink)
                if ready_at is not None:
                    # out of tokens: the queue holds the message and the
                    # wire stays quiet until the bucket refills
                    self.stats.throttled += 1
                    instr.count("qos.throttled_total", family=task.family)
                    self._wake_at(sink, ready_at)
                    return
            task.attempts += 1
            self.stats.attempts += 1
            bound = self._bound_counters
            attempts_counter = bound.probe(instr, "attempts:" + task.family)
            if attempts_counter is None:
                attempts_counter = bound.get(
                    instr, "attempts:" + task.family, "delivery.attempts",
                    family=task.family,
                )
            attempts_counter.inc()
            if task.attempts > 1:
                self.stats.retries += 1
                bound.get(
                    instr, "retries:" + task.family, "delivery.retries",
                    family=task.family,
                ).inc()
            self._record_items(task, "attempted", n=task.attempts, sink=sink)
            try:
                # resume the message's trace: a scheduler-fired retry has an
                # empty span stack, so ``remote=`` re-parents this attempt
                # (and the wire injection inside the thunk) under the span
                # that enqueued the task
                with instr.span(
                    "delivery.attempt",
                    remote=task.lineage,
                    sink=sink,
                    family=task.family,
                    attempt=str(task.attempts),
                ):
                    task.send()
            except (NetworkError, SoapFault) as exc:
                task.last_error = f"{type(exc).__name__}: {exc}"
                state_before = breaker.state
                breaker.record_failure()
                self._breaker_moved(instr, sink, state_before, breaker.state)
                self.stats.failed_attempts += 1
                instr.count(
                    "delivery.failed_total",
                    family=task.family,
                    stage="attempt",
                    kind=type(exc).__name__,
                )
                flight = instr.flight
                if flight.enabled:
                    flight.record(
                        "delivery", sink=sink, family=task.family,
                        outcome="failed_attempt", attempt=task.attempts,
                        error=type(exc).__name__,
                    )
                if isinstance(exc, FirewallBlocked) and self._parkable(task):
                    queue.popleft()
                    self._park(task)
                    continue
                if task.attempts >= self.policy.max_attempts:
                    queue.popleft()
                    self._dead_letter(task, "max_attempts")
                    continue
                delay = self.policy.backoff(task.attempts, self.rng)
                self._wake_at(
                    sink, max(self.clock.now() + delay, breaker.retry_at())
                )
                return
            # success (the send itself advanced the clock by the RTT)
            state_before = breaker.state
            breaker.record_success()
            self._breaker_moved(instr, sink, state_before, breaker.state)
            delivered_at = self.clock.now()
            task.status = TaskStatus.DELIVERED
            task.delivered_at = delivered_at
            queue.popleft()
            self.stats.delivered += 1
            delivered_counter = self._bound_counters.probe(
                instr, "delivered:" + task.family
            )
            if delivered_counter is None:
                delivered_counter = self._bound_counters.get(
                    instr, "delivered:" + task.family, "delivery.delivered",
                    family=task.family,
                )
            delivered_counter.inc()
            if instr is not self._lag_instr:
                self._lag_instr = instr
                self._lag_histograms = {}
            lag_histogram = self._lag_histograms.get(task.family)
            if lag_histogram is None:
                lag_histogram = self._lag_histograms[task.family] = (
                    instr.histogram_handle(
                        "delivery.queue_lag_seconds", family=task.family
                    )
                )
            lag_histogram.observe(delivered_at - task.enqueued_at)
            flight = instr.flight
            if flight.enabled:
                flight.record(
                    "delivery", sink=task.sink, family=task.family,
                    outcome="delivered", attempt=task.attempts,
                    items=len(task.items),
                )
            if instr.enabled:
                for item in task.items:
                    if item.lineage is not None:
                        instr.lineage_delivered(
                            item.lineage.lineage_id,
                            family=task.family,
                            hops=item.lineage.hop + 1,
                            sink=task.sink,
                        )
            if self.store is not None:
                self.store.task_delivered(task)
            if task.on_delivered is not None:
                task.on_delivered(task)

    # --- introspection -----------------------------------------------------

    def open_breakers(self) -> list[str]:
        return sorted(
            sink
            for sink, breaker in self._breakers.items()
            if breaker.state is not BreakerState.CLOSED
        )

    def breaker_state(self, sink: str) -> str:
        breaker = self._breakers.get(sink)
        return breaker.state.value if breaker else BreakerState.CLOSED.value

    def publish_gauges(self) -> None:
        """Point-in-time pipeline depth gauges for the obs layer."""
        instr = self.network.instrumentation
        if not instr.enabled:
            return
        instr.gauge("delivery.pending", self.pending())
        instr.gauge("delivery.dlq_depth", len(self.dlq))
        instr.gauge(
            "delivery.parked_pending",
            self.message_boxes.total_parked() if self.message_boxes else 0,
        )
        instr.gauge("delivery.breakers_open", len(self.open_breakers()))
        if self.qos is not None:
            instr.gauge("qos.shed_messages", self.stats.shed)
            instr.gauge("qos.throttled_attempts", self.stats.throttled)

    def snapshot(self) -> dict:
        """Deterministic pipeline state for reports and tests."""
        return {
            "stats": self.stats.snapshot(),
            "pending_by_sink": {
                sink: len(queue)
                for sink, queue in sorted(self._queues.items())
                if queue
            },
            "breakers": {
                sink: breaker.snapshot()
                for sink, breaker in sorted(self._breakers.items())
            },
            "dlq": self.dlq.snapshot(),
            "message_boxes": (
                self.message_boxes.snapshot() if self.message_boxes else []
            ),
        }
