"""repro.delivery — reliable store-and-forward delivery.

The paper calls WS-Messenger a "scalable, reliable and efficient" broker;
this package supplies the reliability half the specifications leave to
implementations.  It turns the broker's synchronous best-effort push into a
policy-driven pipeline: per-subscriber outbound queues scheduled on the
virtual clock, exponential backoff with deterministic seeded jitter,
per-sink circuit breakers, a dead-letter queue with replay, and — for
consumers behind firewalls — store-and-forward message boxes drained via
the WSN 1.3 ``GetMessages`` / WSE ``Pull`` semantics.

Layering: everything here depends only on the transport substrate plus the
message *formats* of the two spec families; the WSE source, WSN producer and
the broker depend on this package (never the reverse), taking a
:class:`DeliveryManager` by reference.
"""

from repro.delivery.batcher import BatcherStats, DeliveryBatcher
from repro.delivery.breaker import BreakerState, CircuitBreaker
from repro.delivery.dlq import DeadLetter, DeadLetterQueue
from repro.delivery.manager import DeliveryManager, DeliveryStats
from repro.delivery.outcome import DeliveryFailure, failure_counts, record_failure
from repro.delivery.policy import BEST_EFFORT, BatchingPolicy, DeliveryPolicy
from repro.delivery.task import DeliveryItem, DeliveryTask, TaskStatus
from repro.delivery.messagebox import (
    MessageBox,
    MessageBoxRegistry,
    drain_message_box_wse,
)

__all__ = [
    "BEST_EFFORT",
    "BatcherStats",
    "BatchingPolicy",
    "BreakerState",
    "DeliveryBatcher",
    "CircuitBreaker",
    "DeadLetter",
    "DeadLetterQueue",
    "DeliveryFailure",
    "DeliveryItem",
    "DeliveryManager",
    "DeliveryPolicy",
    "DeliveryStats",
    "DeliveryTask",
    "MessageBox",
    "MessageBoxRegistry",
    "TaskStatus",
    "drain_message_box_wse",
    "failure_counts",
    "record_failure",
]
