"""Broker-side message boxes: store-and-forward for firewalled consumers.

The paper names pull delivery's raison d'être: "delivering messages to
consumers behind firewalls".  When a push attempt raises
:class:`~repro.transport.network.FirewallBlocked`, the delivery manager
parks the message *content* here instead of retrying a hopeless route.  A
message box is mounted at a public broker address and serves its backlog
through **client-initiated** exchanges only, so the firewalled consumer can
drain on its own schedule from inside its zone:

* WSN 1.3 ``GetMessages`` — the box answers exactly like a
  :class:`~repro.wsn.pullpoint.PullPoint`, so the stock
  :class:`~repro.wsn.pullpoint.PullPointClient` drains it unchanged;
* WSE ``Pull`` — the minimal WS-Eventing-side equivalent (same body shape
  the 08/2004 pull delivery mode uses at a subscription manager).

Messages are stored spec-neutrally (payload + topic) and re-rendered in the
dialect of whichever drain arrives — one more instance of the broker's
"notifications follow the consumer's spec" rule.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.delivery.limits import parse_drain_limit
from repro.delivery.task import DeliveryItem
from repro.soap.envelope import SoapEnvelope, SoapVersion
from repro.soap.fault import FaultCode, SoapFault
from repro.transport.endpoint import SoapClient, SoapEndpoint
from repro.transport.network import PUBLIC_ZONE, SimulatedNetwork
from repro.wsa.epr import EndpointReference
from repro.wsa.headers import MessageHeaders, apply_headers
from repro.wse import messages as wse_messages
from repro.wse.versions import WseVersion
from repro.wsn.versions import WsnVersion
from repro.xmlkit.element import XElem


class MessageBox:
    """Parked messages for one firewalled sink, drained by pull."""

    def __init__(
        self,
        network: SimulatedNetwork,
        address: str,
        sink: str,
        *,
        wsn_version: WsnVersion = WsnVersion.V1_3,
        wse_version: WseVersion = WseVersion.V2004_08,
        capacity: int = 10_000,
    ) -> None:
        self.network = network
        self.sink = sink
        self.wsn_version = wsn_version
        self.wse_version = wse_version
        self.capacity = capacity
        self.queue: list[DeliveryItem] = []
        #: total parked here over the box's lifetime (draining keeps this)
        self.total_parked = 0
        #: messages dropped because the box was full
        self.overflowed = 0
        #: durable-store hook: called with (box, batch) after every drain
        self.on_drained: Optional[
            Callable[["MessageBox", list[DeliveryItem]], None]
        ] = None
        self.endpoint = SoapEndpoint(network, address)
        self.endpoint.on_action(
            wsn_version.action("GetMessages"), self._handle_get_messages
        )
        self.endpoint.on_action(wse_version.action("Pull"), self._handle_pull)

    @property
    def address(self) -> str:
        return self.endpoint.address

    def epr(self) -> EndpointReference:
        return EndpointReference(self.address)

    def park(self, item: DeliveryItem) -> bool:
        """Store one message; returns False (and counts) on overflow."""
        if len(self.queue) >= self.capacity:
            self.overflowed += 1
            return False
        self.queue.append(item)
        self.total_parked += 1
        return True

    def __len__(self) -> int:
        return len(self.queue)

    # --- drain handlers (both are client-initiated: firewall-safe) ---------

    def _take(self, body: XElem, limit_name, subcode=None) -> list[DeliveryItem]:
        count = parse_drain_limit(
            body, limit_name, backlog=len(self.queue), subcode=subcode
        )
        batch = self.queue[:count]
        del self.queue[:count]
        if batch and self.on_drained is not None:
            self.on_drained(self, batch)
        return batch

    def _record_drained(self, batch: list[DeliveryItem], family: str) -> None:
        """Close each drained item's obligation: delivered, via pull."""
        instr = self.network.instrumentation
        if not instr.enabled:
            return
        for item in batch:
            if item.lineage is not None:
                instr.lineage_delivered(
                    item.lineage.lineage_id,
                    family=family,
                    hops=item.lineage.hop + 1,
                    sink=self.sink,
                    via="pull",
                )

    def _handle_get_messages(self, envelope: SoapEnvelope, headers: MessageHeaders):
        # imported here, not at module top: mediation lives in the messenger
        # package, whose __init__ pulls in the broker — which imports us
        from repro.messenger.mediation import (
            MediatedNotification,
            wsn_message_elements,
        )

        batch = self._take(
            envelope.body_element(),
            self.wsn_version.qname("MaximumNumber"),
            subcode=self.wsn_version.qname("UnableToGetMessagesFault"),
        )
        self._record_drained(batch, "wsn")
        response = XElem(self.wsn_version.qname("GetMessagesResponse"))
        for element in wsn_message_elements(
            [MediatedNotification(item.payload, item.topic) for item in batch],
            self.wsn_version,
        ):
            response.append(element)
        return self._reply(
            headers,
            self.wsn_version.action("GetMessagesResponse"),
            response,
            self.wsn_version.wsa_version,
        )

    def _handle_pull(self, envelope: SoapEnvelope, headers: MessageHeaders):
        batch = self._take(
            envelope.body_element(), self.wse_version.qname("MaxMessages")
        )
        self._record_drained(batch, "wse")
        response = wse_messages.build_pull_response(
            self.wse_version, [item.payload for item in batch]
        )
        return self._reply(
            headers,
            self.wse_version.action("PullResponse"),
            response,
            self.wse_version.wsa_version,
        )

    def _reply(
        self, request_headers: MessageHeaders, action: str, body: XElem, wsa_version
    ) -> SoapEnvelope:
        reply = SoapEnvelope(SoapVersion.V11)
        headers = MessageHeaders.reply(request_headers, action, wsa_version)
        apply_headers(reply, headers, wsa_version)
        reply.add_body(body)
        return reply

    def close(self) -> None:
        self.endpoint.close()


class MessageBoxRegistry:
    """Mints and tracks message boxes, one per firewalled sink."""

    def __init__(
        self,
        network: SimulatedNetwork,
        base_address: str,
        *,
        wsn_version: WsnVersion = WsnVersion.V1_3,
        wse_version: WseVersion = WseVersion.V2004_08,
        capacity: int = 10_000,
    ) -> None:
        self.network = network
        self.base_address = base_address
        self.wsn_version = wsn_version
        self.wse_version = wse_version
        self.capacity = capacity
        self._boxes: dict[str, MessageBox] = {}
        self._counter = 0
        #: durable-store hook, copied onto each box as it is minted
        self.on_drained: Optional[
            Callable[[MessageBox, list[DeliveryItem]], None]
        ] = None

    def box_for(self, sink: str) -> MessageBox:
        """The sink's box, created (and publicly mounted) on first use."""
        box = self._boxes.get(sink)
        if box is None:
            self._counter += 1
            box = MessageBox(
                self.network,
                f"{self.base_address}/box-{self._counter}",
                sink,
                wsn_version=self.wsn_version,
                wse_version=self.wse_version,
                capacity=self.capacity,
            )
            box.on_drained = self.on_drained
            self._boxes[sink] = box
        return box

    def get(self, sink: str) -> Optional[MessageBox]:
        return self._boxes.get(sink)

    def boxes(self) -> list[MessageBox]:
        return list(self._boxes.values())

    def total_parked(self) -> int:
        return sum(len(box) for box in self._boxes.values())

    def snapshot(self) -> list[dict]:
        return [
            {
                "sink": box.sink,
                "address": box.address,
                "pending": len(box),
                "total_parked": box.total_parked,
                "overflowed": box.overflowed,
            }
            for box in self._boxes.values()
        ]

    def close(self) -> None:
        for box in self._boxes.values():
            box.close()


def drain_message_box_wse(
    network: SimulatedNetwork,
    box: EndpointReference,
    *,
    zone: str = PUBLIC_ZONE,
    version: WseVersion = WseVersion.V2004_08,
    max_messages: int = 0,
) -> list[XElem]:
    """The minimal WSE-side drain: a client-initiated ``Pull`` against a
    message box, usable from inside a firewalled zone."""
    client = SoapClient(
        network, zone=zone, wsa_version=version.wsa_version, soap_version=SoapVersion.V11
    )
    reply = client.call(
        box, version.action("Pull"), [wse_messages.build_pull(version, max_messages)]
    )
    if reply is None:
        raise SoapFault(FaultCode.RECEIVER, "no response to Pull")
    return wse_messages.parse_pull_response(reply.body_element(), version)
