"""The dead-letter queue: where messages go instead of vanishing.

A message whose attempt budget or TTL is exhausted is *not* dropped — it is
parked here with the reason and its full attempt history, introspectable by
operators (``snapshot``) and replayable once the sink recovers
(:meth:`DeadLetterQueue.replay` re-submits through the owning manager with a
fresh attempt budget).  This is the disconnection-tolerant redelivery the
CORBA-services experience report identifies as the distinguishing feature of
a production notification service.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.delivery.task import DeliveryTask

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.delivery.manager import DeliveryManager


@dataclass
class DeadLetter:
    """One dead-lettered task plus why and when it died."""

    task: DeliveryTask
    reason: str  # "max_attempts" | "ttl_expired" | explicit park reason
    dead_at: float

    def snapshot(self) -> dict:
        entry = self.task.snapshot()
        entry["reason"] = self.reason
        entry["dead_at"] = round(self.dead_at, 9)
        return entry


class DeadLetterQueue:
    """Terminal parking for undeliverable messages, with replay."""

    def __init__(self) -> None:
        self.entries: list[DeadLetter] = []
        #: total ever dead-lettered (replay drains ``entries`` but not this)
        self.total = 0

    def add(self, task: DeliveryTask, reason: str, now: float) -> DeadLetter:
        letter = DeadLetter(task, reason, now)
        self.entries.append(letter)
        self.total += 1
        return letter

    def __len__(self) -> int:
        return len(self.entries)

    def snapshot(self) -> list[dict]:
        """Deterministic listing for reports and operator introspection."""
        return [letter.snapshot() for letter in self.entries]

    def replay(
        self,
        manager: "DeliveryManager",
        *,
        sink: Optional[str] = None,
        select: Optional[Callable[[DeadLetter], bool]] = None,
    ) -> int:
        """Re-submit dead letters through ``manager`` with fresh budgets.

        ``sink`` restricts replay to one consumer; ``select`` is an arbitrary
        predicate.  Replayed entries leave the DLQ immediately — a replay
        that fails again simply dead-letters again, so nothing is ever
        double-queued.  Returns the number of re-submitted messages.
        """
        chosen: list[DeadLetter] = []
        kept: list[DeadLetter] = []
        for letter in self.entries:
            matches = (sink is None or letter.task.sink == sink) and (
                select is None or select(letter)
            )
            (chosen if matches else kept).append(letter)
        self.entries = kept
        for letter in chosen:
            manager.resubmit(letter.task)
        return len(chosen)
