"""Per-sink circuit breakers on the virtual clock.

A sink that has failed several deliveries in a row is overwhelmingly likely
to fail the next one too; hammering it wastes wire budget and — in the
synchronous simulation as in a real broker thread pool — delays every other
sink behind it.  The breaker is the classic three-state machine:

* **closed** — deliveries flow; consecutive failures are counted.
* **open** — tripped after ``failure_threshold`` consecutive failures; all
  attempts fast-fail locally (no wire traffic) until ``reset_after`` virtual
  seconds have passed.
* **half-open** — the first attempt after the cool-down is let through as a
  probe; success closes the breaker, failure re-opens it for another full
  cool-down.

All timing comes from the :class:`~repro.transport.clock.VirtualClock`, so
breaker trajectories are deterministic and assertable in tests.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional

from repro.transport.clock import VirtualClock


class BreakerState(Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """One sink's breaker; the :class:`DeliveryManager` keys these by address."""

    def __init__(
        self,
        clock: VirtualClock,
        *,
        failure_threshold: int = 5,
        reset_after: float = 60.0,
    ) -> None:
        self.clock = clock
        self.failure_threshold = failure_threshold
        self.reset_after = reset_after
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        #: (virtual time, new state) — introspection for tests and reports
        self.transitions: list[tuple[float, str]] = []

    def _move(self, state: BreakerState) -> None:
        self.state = state
        self.transitions.append((self.clock.now(), state.value))

    def allows(self) -> bool:
        """May an attempt go out right now?  Transitions OPEN → HALF_OPEN
        when the cool-down has elapsed (the caller's attempt is the probe)."""
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            assert self.opened_at is not None
            # compare against the exact float retry_at() hands to the wake
            # scheduler: (opened_at + reset_after) - opened_at can round to
            # just under reset_after, and a subtraction-based test then spins
            # the manager on same-instant wakes forever
            if self.clock.now() >= self.opened_at + self.reset_after:
                self._move(BreakerState.HALF_OPEN)
                return True
            return False
        return True  # HALF_OPEN: the probe is in the caller's hands

    def retry_at(self) -> float:
        """Earliest virtual time an attempt could be allowed again."""
        if self.state is BreakerState.OPEN:
            assert self.opened_at is not None
            return self.opened_at + self.reset_after
        return self.clock.now()

    def record_success(self) -> None:
        self.consecutive_failures = 0
        if self.state is not BreakerState.CLOSED:
            self._move(BreakerState.CLOSED)
        self.opened_at = None

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN:
            # the probe failed: straight back to open, fresh cool-down
            self.opened_at = self.clock.now()
            self._move(BreakerState.OPEN)
        elif (
            self.state is BreakerState.CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self.opened_at = self.clock.now()
            self._move(BreakerState.OPEN)

    def snapshot(self) -> dict:
        return {
            "state": self.state.value,
            "consecutive_failures": self.consecutive_failures,
            "opened_at": self.opened_at,
            "transitions": [[round(t, 9), s] for t, s in self.transitions],
        }
