"""SOAP 1.1/1.2 envelope model and codec.

Both WS-Eventing and WS-Notification exchange SOAP envelopes; the paper's
message-format comparison (section V.4) is a comparison of the headers and
bodies built here.  The model is version-parametric: the same
:class:`SoapEnvelope` serializes under SOAP 1.1 or 1.2 namespaces, and faults
render in the version-correct shape.
"""

from repro.soap.envelope import SoapEnvelope, SoapVersion, HeaderBlock
from repro.soap.fault import SoapFault, FaultCode
from repro.soap.codec import parse_envelope, serialize_envelope, SoapCodecError

__all__ = [
    "SoapEnvelope",
    "SoapVersion",
    "HeaderBlock",
    "SoapFault",
    "FaultCode",
    "parse_envelope",
    "serialize_envelope",
    "SoapCodecError",
]
