"""The SOAP envelope data model."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Optional

from repro.xmlkit.element import XElem
from repro.xmlkit.names import Namespaces, QName


class SoapVersion(Enum):
    """SOAP protocol version; carries its envelope namespace."""

    V11 = Namespaces.SOAP11
    V12 = Namespaces.SOAP12

    @property
    def namespace(self) -> str:
        return self.value

    def qname(self, local: str) -> QName:
        return QName(self.namespace, local)

    @classmethod
    def from_namespace(cls, uri: str) -> "SoapVersion":
        for version in cls:
            if version.namespace == uri:
                return version
        raise ValueError(f"not a SOAP envelope namespace: {uri!r}")


@dataclass
class HeaderBlock:
    """One SOAP header block with its processing attributes."""

    content: XElem
    must_understand: bool = False
    #: SOAP 1.1 ``actor`` / SOAP 1.2 ``role`` URI (``None`` = ultimate receiver)
    actor: Optional[str] = None

    @property
    def name(self) -> QName:
        return self.content.name


@dataclass
class SoapEnvelope:
    """A SOAP message: header blocks plus body elements.

    The body holds zero or more payload elements (zero is legal for
    acknowledgement-style responses; WS-Eventing ``UnsubscribeResponse`` has
    an empty body in the 08/2004 version).
    """

    version: SoapVersion = SoapVersion.V11
    headers: list[HeaderBlock] = field(default_factory=list)
    body: list[XElem] = field(default_factory=list)

    # --- header access -----------------------------------------------------

    def add_header(
        self,
        content: XElem,
        *,
        must_understand: bool = False,
        actor: Optional[str] = None,
    ) -> "SoapEnvelope":
        self.headers.append(HeaderBlock(content, must_understand, actor))
        return self

    def header(self, name: QName) -> Optional[XElem]:
        """First header block with the given qualified name."""
        for block in self.headers:
            if block.name == name:
                return block.content
        return None

    def header_text(self, name: QName) -> Optional[str]:
        block = self.header(name)
        return block.full_text().strip() if block is not None else None

    def headers_named(self, name: QName) -> list[XElem]:
        return [block.content for block in self.headers if block.name == name]

    def remove_headers(self, name: QName) -> int:
        before = len(self.headers)
        self.headers = [block for block in self.headers if block.name != name]
        return before - len(self.headers)

    # --- body access ----------------------------------------------------------

    def add_body(self, content: XElem) -> "SoapEnvelope":
        self.body.append(content)
        return self

    def body_element(self) -> XElem:
        """The single body payload element; raises when not exactly one."""
        elements = [child for child in self.body if isinstance(child, XElem)]
        if len(elements) != 1:
            raise ValueError(f"expected exactly one body element, found {len(elements)}")
        return elements[0]

    def first_body(self) -> Optional[XElem]:
        for child in self.body:
            if isinstance(child, XElem):
                return child
        return None

    def is_fault(self) -> bool:
        first = self.first_body()
        return first is not None and first.name == self.version.qname("Fault")

    # --- misc -----------------------------------------------------------------

    def copy(self) -> "SoapEnvelope":
        return SoapEnvelope(
            self.version,
            [HeaderBlock(block.content.copy(), block.must_understand, block.actor) for block in self.headers],
            [element.copy() for element in self.body],
        )


def build_envelope(
    version: SoapVersion,
    headers: Iterable[XElem] = (),
    body: Iterable[XElem] = (),
) -> SoapEnvelope:
    """Convenience constructor from plain element iterables."""
    envelope = SoapEnvelope(version)
    for header in headers:
        envelope.add_header(header)
    for payload in body:
        envelope.add_body(payload)
    return envelope
