"""SOAP faults, rendered version-correctly for SOAP 1.1 and 1.2.

WS-Eventing and WS-Notification both report subscription errors as SOAP
faults (e.g. ``wse:EventSourceUnableToProcess``,
``wsnt:UnacceptableInitialTerminationTimeFault``); the fault subcode carries
the spec-specific fault QName.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.soap.envelope import SoapEnvelope, SoapVersion
from repro.xmlkit.element import XElem, text_element
from repro.xmlkit.names import QName


class FaultCode(Enum):
    """The standard top-level fault codes, mapped per SOAP version."""

    SENDER = ("Client", "Sender")
    RECEIVER = ("Server", "Receiver")
    MUST_UNDERSTAND = ("MustUnderstand", "MustUnderstand")
    VERSION_MISMATCH = ("VersionMismatch", "VersionMismatch")

    def local_for(self, version: SoapVersion) -> str:
        return self.value[0] if version is SoapVersion.V11 else self.value[1]


@dataclass
class SoapFault(Exception):
    """A SOAP fault, usable both as a message payload and a raised error."""

    code: FaultCode
    reason: str
    #: spec-specific subcode, e.g. ``wse:DeliveryModeRequestedUnavailable``
    subcode: Optional[QName] = None
    detail: Optional[XElem] = None

    def __str__(self) -> str:
        subcode = f" [{self.subcode}]" if self.subcode else ""
        return f"{self.code.name}{subcode}: {self.reason}"

    # --- serialization ----------------------------------------------------

    def to_envelope(self, version: SoapVersion) -> SoapEnvelope:
        envelope = SoapEnvelope(version)
        envelope.add_body(self.to_element(version))
        return envelope

    def to_element(self, version: SoapVersion) -> XElem:
        if version is SoapVersion.V11:
            return self._to_soap11(version)
        return self._to_soap12(version)

    def _to_soap11(self, version: SoapVersion) -> XElem:
        fault = XElem(version.qname("Fault"))
        # SOAP 1.1 faultcode is a QName in text content; the envelope prefix
        # convention from the writer is stable, so emit Clark-ish local form.
        code_text = f"{version.qname(self.code.local_for(version)).local}"
        fault.append(text_element(QName("", "faultcode"), code_text))
        fault.append(text_element(QName("", "faultstring"), self.reason))
        if self.subcode is not None or self.detail is not None:
            detail = XElem(QName("", "detail"))
            if self.subcode is not None:
                detail.append(text_element(self.subcode, ""))
            if self.detail is not None:
                detail.append(self.detail.copy())
            fault.append(detail)
        return fault

    def _to_soap12(self, version: SoapVersion) -> XElem:
        fault = XElem(version.qname("Fault"))
        code = XElem(version.qname("Code"))
        code.append(text_element(version.qname("Value"), self.code.local_for(version)))
        if self.subcode is not None:
            sub = XElem(version.qname("Subcode"))
            value = text_element(version.qname("Value"), self.subcode.local)
            # carry the namespace in an element so parsing can recover the QName
            value.attrs[QName("", "namespace")] = self.subcode.namespace
            sub.append(value)
            code.append(sub)
        fault.append(code)
        reason = XElem(version.qname("Reason"))
        text = text_element(version.qname("Text"), self.reason)
        reason.append(text)
        fault.append(reason)
        if self.detail is not None:
            detail = XElem(version.qname("Detail"))
            detail.append(self.detail.copy())
            fault.append(detail)
        return fault

    # --- parsing --------------------------------------------------------------

    @classmethod
    def from_element(cls, element: XElem, version: SoapVersion) -> "SoapFault":
        if version is SoapVersion.V11:
            return cls._from_soap11(element)
        return cls._from_soap12(element, version)

    @classmethod
    def _from_soap11(cls, element: XElem) -> "SoapFault":
        code_text = ""
        reason = ""
        subcode: Optional[QName] = None
        detail: Optional[XElem] = None
        for child in element.elements():
            if child.name.local == "faultcode":
                code_text = child.text().strip()
            elif child.name.local == "faultstring":
                reason = child.text().strip()
            elif child.name.local == "detail":
                subelems = list(child.elements())
                if subelems:
                    subcode = subelems[0].name
                    if len(subelems) > 1:
                        detail = subelems[1]
        return cls(_code_from_local(code_text), reason, subcode, detail)

    @classmethod
    def _from_soap12(cls, element: XElem, version: SoapVersion) -> "SoapFault":
        code_elem = element.find(version.qname("Code"))
        code_text = ""
        subcode: Optional[QName] = None
        if code_elem is not None:
            value = code_elem.find(version.qname("Value"))
            code_text = value.text().strip() if value is not None else ""
            sub = code_elem.find(version.qname("Subcode"))
            if sub is not None:
                sub_value = sub.find(version.qname("Value"))
                if sub_value is not None:
                    subcode = QName(
                        sub_value.attrs.get(QName("", "namespace"), ""),
                        sub_value.text().strip(),
                    )
        reason = ""
        reason_elem = element.find(version.qname("Reason"))
        if reason_elem is not None:
            text = reason_elem.find(version.qname("Text"))
            reason = text.text() if text is not None else ""
        detail_elem = element.find(version.qname("Detail"))
        detail = next(detail_elem.elements(), None) if detail_elem is not None else None
        return cls(_code_from_local(code_text), reason, subcode, detail)


def _code_from_local(local: str) -> FaultCode:
    local = local.split(":")[-1]
    for code in FaultCode:
        if local in code.value:
            return code
    return FaultCode.RECEIVER
