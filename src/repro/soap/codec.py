"""Parse and serialize SOAP envelopes to/from wire XML."""

from __future__ import annotations

from repro.soap.envelope import HeaderBlock, SoapEnvelope, SoapVersion
from repro.xmlkit.element import XElem
from repro.xmlkit.parser import XmlParseError, parse_xml
from repro.xmlkit.writer import serialize_xml


class SoapCodecError(ValueError):
    """The payload is XML but not a well-formed SOAP envelope."""


def envelope_root(envelope: SoapEnvelope) -> XElem:
    """Build the wire tree for an envelope (the envelope byte-template cache
    serializes this same tree, so template output stays byte-identical to
    :func:`serialize_envelope`)."""
    version = envelope.version
    root = XElem(version.qname("Envelope"))
    if envelope.headers:
        header = XElem(version.qname("Header"))
        for block in envelope.headers:
            content = block.content.copy()
            if block.must_understand:
                content.attrs[version.qname("mustUnderstand")] = (
                    "1" if version is SoapVersion.V11 else "true"
                )
            if block.actor is not None:
                attr = "actor" if version is SoapVersion.V11 else "role"
                content.attrs[version.qname(attr)] = block.actor
            header.append(content)
        root.append(header)
    body = XElem(version.qname("Body"))
    for payload in envelope.body:
        body.append(payload)
    root.append(body)
    return root


def serialize_envelope(envelope: SoapEnvelope, *, indent: bool = False) -> str:
    """Render an envelope to XML text."""
    return serialize_xml(envelope_root(envelope), xml_declaration=True, indent=indent)


def parse_envelope(text: str | bytes) -> SoapEnvelope:
    """Parse wire XML into a :class:`SoapEnvelope`."""
    try:
        root = parse_xml(text)
    except XmlParseError as exc:
        raise SoapCodecError(str(exc)) from exc
    if root.name.local != "Envelope":
        raise SoapCodecError(f"root element is <{root.name}>, not a SOAP Envelope")
    try:
        version = SoapVersion.from_namespace(root.name.namespace)
    except ValueError as exc:
        raise SoapCodecError(str(exc)) from exc
    envelope = SoapEnvelope(version)
    header = root.find(version.qname("Header"))
    if header is not None:
        for content in header.elements():
            envelope.headers.append(_parse_header_block(content, version))
    body = root.find(version.qname("Body"))
    if body is None:
        raise SoapCodecError("envelope has no Body")
    for payload in body.elements():
        envelope.body.append(payload)
    return envelope


def _parse_header_block(content: XElem, version: SoapVersion) -> HeaderBlock:
    mu_attr = version.qname("mustUnderstand")
    actor_attr = version.qname("actor" if version is SoapVersion.V11 else "role")
    must_understand = content.attrs.pop(mu_attr, "") in ("1", "true")
    actor = content.attrs.pop(actor_attr, None)
    return HeaderBlock(content, must_understand, actor)


def envelope_bytes(envelope: SoapEnvelope) -> bytes:
    """UTF-8 wire bytes; the transport layer accounts message sizes with this."""
    return serialize_envelope(envelope).encode("utf-8")
