"""``python -m repro``: regenerate the paper's comparative study.

With no arguments, prints the measured Tables 1-3 (diffed against the
published cells), the traced Figures 1-2, and the converged-prototype
column.  Subcommands:

- ``obs-report [--text|--json]`` — run the instrumented mediation demo
  scenario and render the observability report (see :mod:`repro.obs`);
- ``obs-audit`` — re-run the demo and every bundled example under
  instrumentation and check the message-conservation invariants
  (see :mod:`repro.obs.audit`); exit 1 if any book fails to balance;
- ``obs-health [--json]`` — run a scripted minute of degraded traffic
  (store-backed broker + two-shard mesh) with gauges sampled on the
  virtual clock, and report the anomaly probes: queue growth, breaker
  flaps, stale batch timers, conservation drift (see
  :mod:`repro.obs.health`);
- ``obs-top [--timings]`` — same scenario, rendered as a ``top``-style
  snapshot: flight-recorder tail, non-zero backlogs, phase counts;
- ``conformance --seed N --cases M`` — deterministic wire-fidelity fuzzing
  of the codec, framing, lifecycle, mediation, and mesh layers
  (see :mod:`repro.conformance`); exit 1 on any failure;
- ``mesh-demo`` — assemble a sharded, federated broker mesh, drive
  cross-shard traffic through a join/leave rebalance, and audit mesh-wide
  message conservation (see :mod:`repro.mesh`); exit 1 if any book fails;
- ``store-demo`` — crash an event-sourced broker mid-workload, rebuild it
  from its log alone, and verify subscription identity, parked obligations
  and conservation survive (see :mod:`repro.store`); exit 1 on any failure.
"""

from __future__ import annotations

import sys


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "obs-report":
        from repro.obs.report import obs_report_main

        return obs_report_main(argv[1:])
    if argv and argv[0] == "obs-audit":
        from repro.obs.audit import obs_audit_main

        return obs_audit_main(argv[1:])
    if argv and argv[0] == "obs-health":
        from repro.obs.health import obs_health_main

        return obs_health_main(argv[1:])
    if argv and argv[0] == "obs-top":
        from repro.obs.health import obs_top_main

        return obs_top_main(argv[1:])
    if argv and argv[0] == "conformance":
        from repro.conformance.cli import conformance_main

        return conformance_main(argv[1:])
    if argv and argv[0] == "mesh-demo":
        from repro.mesh.demo import mesh_demo_main

        return mesh_demo_main(argv[1:])
    if argv and argv[0] == "store-demo":
        from repro.store.demo import store_demo_main

        return store_demo_main(argv[1:])
    if argv:
        print(
            f"unknown subcommand {argv[0]!r}; try: obs-report, obs-audit,"
            " obs-health, obs-top, conformance, mesh-demo, store-demo",
            file=sys.stderr,
        )
        return 2
    from repro.comparison import (
        PAPER_TABLE1,
        PAPER_TABLE2,
        PAPER_TABLE3,
        build_table1,
        build_table2,
        build_table3,
        trace_wse_architecture,
        trace_wsn_architecture,
    )
    from repro.comparison.tables import render_cell
    from repro.convergence import converged_table_column

    failures = 0
    for build, paper, widths in [
        (build_table1, PAPER_TABLE1, dict(label_width=52, cell_width=14)),
        (build_table2, PAPER_TABLE2, dict(label_width=28, cell_width=52)),
        (build_table3, PAPER_TABLE3, dict(label_width=22, cell_width=26)),
    ]:
        measured = build()
        print(measured.render(**widths))
        diff = measured.diff(paper)
        print()
        print("vs paper:", diff.summary())
        print("\n" + "#" * 100 + "\n")
        if not diff.clean:
            failures += 1

    print(trace_wse_architecture().render())
    print("\n" + "#" * 100 + "\n")
    print(trace_wsn_architecture().render())
    print("\n" + "#" * 100 + "\n")

    print("WS-EventNotification prototype (the convergence the paper anticipates):")
    for label, value in converged_table_column().items():
        print(f"  {label:52s} {render_cell(value)}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
