"""WS-Notification 1.3 PullPoints.

Table 1's "Define PullPoint interface" row is Yes only for WSN 1.3.  The
design differs from WS-Eventing's pull mode in precisely the way section V.3
describes: a pull point must be **created before subscribing** and is then
"treated as a regular push event consumer from a publisher's perspective" —
the subscription's ConsumerReference simply points at the pull point.  There
is no way to request pull delivery inside a Subscribe message.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.delivery.limits import parse_drain_limit
from repro.soap.envelope import SoapEnvelope, SoapVersion
from repro.soap.fault import FaultCode, SoapFault
from repro.transport.endpoint import SoapClient, SoapEndpoint
from repro.transport.network import PUBLIC_ZONE, SimulatedNetwork
from repro.wsa.epr import EndpointReference
from repro.wsa.headers import MessageHeaders, apply_headers
from repro.wsn import messages
from repro.wsn.versions import WsnVersion
from repro.xmlkit.element import XElem, text_element
from repro.xmlkit.names import QName


class PullPoint:
    """One pull point: a consumer endpoint with a message queue."""

    def __init__(
        self,
        network: SimulatedNetwork,
        address: str,
        version: WsnVersion,
        *,
        capacity: int = 1000,
    ) -> None:
        self.network = network
        self.version = version
        self.capacity = capacity
        self.queue: list[XElem] = []  # stored NotificationMessage elements
        self.destroyed = False
        self.endpoint = SoapEndpoint(network, address)
        self.endpoint.on_action(version.action("Notify"), self._handle_notify)
        self.endpoint.on_action(version.action("GetMessages"), self._handle_get_messages)
        self.endpoint.on_action(
            version.action("DestroyPullPoint"), self._handle_destroy
        )

    @property
    def address(self) -> str:
        return self.endpoint.address

    def epr(self) -> EndpointReference:
        return EndpointReference(self.address)

    # --- handlers ---------------------------------------------------------------

    def _handle_notify(self, envelope: SoapEnvelope, headers: MessageHeaders):
        body = envelope.body_element()
        if body.name == self.version.qname("Notify"):
            incoming = body.find_all(self.version.qname("NotificationMessage"))
        else:
            # raw payload: wrap so GetMessages output is uniform
            wrapper = XElem(self.version.qname("NotificationMessage"))
            message = XElem(self.version.qname("Message"))
            message.append(body.copy())
            wrapper.append(message)
            incoming = [wrapper]
        room = max(self.capacity - len(self.queue), 0)
        accepted = incoming[:room]
        if len(accepted) < len(incoming):
            # a full queue silently eats the overflow (the Notify was already
            # 202-accepted); the drop must at least be observable
            self.network.instrumentation.count(
                "obs.swallowed_errors_total",
                len(incoming) - len(accepted),
                site="wsn.pullpoint.capacity_overflow",
                kind="QueueOverflow",
            )
        self.queue.extend(item.copy() for item in accepted)
        return None

    def _handle_get_messages(self, envelope: SoapEnvelope, headers: MessageHeaders):
        if self.destroyed:
            raise SoapFault(
                FaultCode.SENDER,
                "pull point destroyed",
                subcode=self.version.qname("UnableToGetMessagesFault"),
            )
        body = envelope.body_element()
        count = parse_drain_limit(
            body,
            self.version.qname("MaximumNumber"),
            backlog=len(self.queue),
            subcode=self.version.qname("UnableToGetMessagesFault"),
        )
        batch = self.queue[:count]
        del self.queue[:count]
        response = XElem(self.version.qname("GetMessagesResponse"))
        for item in batch:
            response.append(item)
        return self._reply(headers, self.version.action("GetMessagesResponse"), response)

    def _handle_destroy(self, envelope: SoapEnvelope, headers: MessageHeaders):
        self.destroyed = True
        self.endpoint.close()
        response = XElem(self.version.qname("DestroyPullPointResponse"))
        return self._reply(
            headers, self.version.action("DestroyPullPointResponse"), response
        )

    def _reply(self, request_headers: MessageHeaders, action: str, body: XElem) -> SoapEnvelope:
        reply = SoapEnvelope(SoapVersion.V11)
        headers = MessageHeaders.reply(request_headers, action, self.version.wsa_version)
        apply_headers(reply, headers, self.version.wsa_version)
        reply.add_body(body)
        return reply


class PullPointFactory:
    """The CreatePullPoint service: spawns pull points on demand."""

    def __init__(
        self,
        network: SimulatedNetwork,
        address: str,
        *,
        version: WsnVersion = WsnVersion.V1_3,
    ) -> None:
        if not version.defines_pull_point_interface:
            raise SoapFault(
                FaultCode.SENDER,
                f"WS-BaseNotification {version.name} defines no PullPoint interface "
                "(it arrived in 1.3)",
            )
        self.network = network
        self.version = version
        self._counter = itertools.count(1)
        self.pull_points: dict[str, PullPoint] = {}
        self.endpoint = SoapEndpoint(network, address)
        self.endpoint.on_action(version.action("CreatePullPoint"), self._handle_create)

    @property
    def address(self) -> str:
        return self.endpoint.address

    def epr(self) -> EndpointReference:
        return EndpointReference(self.address)

    def _handle_create(self, envelope: SoapEnvelope, headers: MessageHeaders):
        address = f"{self.address}/pp-{next(self._counter)}"
        pull_point = PullPoint(self.network, address, self.version)
        self.pull_points[address] = pull_point
        response = XElem(self.version.qname("CreatePullPointResponse"))
        response.append(
            pull_point.epr().to_element(
                self.version.wsa_version, self.version.qname("PullPoint")
            )
        )
        reply = SoapEnvelope(SoapVersion.V11)
        reply_headers = MessageHeaders.reply(
            headers, self.version.action("CreatePullPointResponse"), self.version.wsa_version
        )
        apply_headers(reply, reply_headers, self.version.wsa_version)
        reply.add_body(response)
        return reply


class PullPointClient:
    """Client API for creating and draining pull points (works from behind a
    firewall zone, since every exchange is client-initiated)."""

    def __init__(
        self,
        network: SimulatedNetwork,
        *,
        version: WsnVersion = WsnVersion.V1_3,
        zone: str = PUBLIC_ZONE,
    ) -> None:
        self.version = version
        self._client = SoapClient(
            network, zone=zone, wsa_version=version.wsa_version, soap_version=SoapVersion.V11
        )

    def create(self, factory: EndpointReference) -> EndpointReference:
        body = XElem(self.version.qname("CreatePullPoint"))
        reply = self._client.call(factory, self.version.action("CreatePullPoint"), [body])
        if reply is None:
            raise SoapFault(FaultCode.RECEIVER, "no response to CreatePullPoint")
        pp_elem = reply.body_element().require(self.version.qname("PullPoint"))
        return EndpointReference.from_element(pp_elem, self.version.wsa_version)

    def get_messages(
        self, pull_point: EndpointReference, maximum: Optional[int] = None
    ) -> list[messages.NotificationMessage]:
        body = XElem(self.version.qname("GetMessages"))
        if maximum is not None:
            body.append(text_element(self.version.qname("MaximumNumber"), str(maximum)))
        reply = self._client.call(pull_point, self.version.action("GetMessages"), [body])
        if reply is None:
            raise SoapFault(FaultCode.RECEIVER, "no response to GetMessages")
        # reuse the Notify parser by re-rooting the response
        notify = XElem(self.version.qname("Notify"))
        for child in reply.body_element().elements():
            notify.append(child.copy())
        return messages.parse_notify(notify, self.version)

    def destroy(self, pull_point: EndpointReference) -> None:
        body = XElem(self.version.qname("DestroyPullPoint"))
        self._client.call(pull_point, self.version.action("DestroyPullPoint"), [body])
