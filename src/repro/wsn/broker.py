"""WS-BrokeredNotification: the NotificationBroker.

Section V.5 of the paper: "Notification brokers can handle publisher
registrations and support demand-based publishers.  A demand-based publisher
only publishes messages when there are consumers who are interested in these
messages.  A notification broker can keep track of the number of consumers to
each kind of messages and can pause or resume subscriptions to publishers
based on the demand."  That is implemented literally here: for a demand-based
registration, the broker subscribes to the publisher's own producer endpoint
and pauses/resumes *that* subscription as consumer demand for the registered
topic appears and disappears.

WS-Eventing defines none of this; the paper notes only that one *could* build
a broker implementing both the sink and source interfaces — which is exactly
what WS-Messenger does (:mod:`repro.messenger`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.delivery.manager import DeliveryManager
from repro.filters.topics import TopicDialect, TopicExpression, TopicNamespace
from repro.qos.adaptive import AdaptiveQosPolicy
from repro.soap.envelope import SoapEnvelope, SoapVersion
from repro.soap.fault import FaultCode, SoapFault
from repro.transport.endpoint import SoapEndpoint
from repro.transport.network import SimulatedNetwork
from repro.wsa.epr import EndpointReference
from repro.wsa.headers import MessageHeaders, apply_headers
from repro.wsn import messages
from repro.wsn.producer import NotificationProducer, WsnSubscription
from repro.wsn.subscriber import WsnSubscriber, WsnSubscriptionHandle
from repro.wsn.versions import WsnVersion
from repro.xmlkit.element import XElem, text_element
from repro.xmlkit.names import Namespaces, QName

BROKERED_NS = Namespaces.WSNT_BROKERED_13
REGISTRATION_ID = QName("http://repro.invalid/wsn", "RegistrationId")


@dataclass
class PublisherRegistration:
    """One registered publisher at the broker."""

    key: str
    publisher: Optional[EndpointReference]
    topic: Optional[str]
    demand: bool
    #: broker's subscription at the demand publisher (paused when demand = 0)
    upstream: Optional[WsnSubscriptionHandle] = None
    paused_upstream: bool = True
    destroyed: bool = False


class NotificationBroker:
    """A WSN broker: producer interface + consumer interface + registrations."""

    def __init__(
        self,
        network: SimulatedNetwork,
        address: str,
        *,
        version: WsnVersion = WsnVersion.V1_3,
        topic_namespace: Optional[TopicNamespace] = None,
        require_registration: bool = False,
        store=None,
        delivery_manager: Optional[DeliveryManager] = None,
        qos: Optional[AdaptiveQosPolicy] = None,
    ) -> None:
        self.network = network
        self.version = version
        self.require_registration = require_registration
        #: adaptive QoS: lag thresholds for publisher pause/resume (the
        #: demand-based mechanism of Section V.5, driven by *downstream*
        #: backlog rather than subscriber count alone)
        self.qos_policy = qos
        #: true while aggregate delivery lag has the broker treating demand
        #: as zero (all upstream demand subscriptions paused)
        self.lag_paused = False
        self.publisher_pauses = 0
        self.publisher_resumes = 0
        #: optional event log (repro.store.BrokerStore): publications are
        #: appended outbox-first, giving this standalone broker a durable
        #: publish audit trail (full projection recovery lives in
        #: repro.store.recovery, on the mediation broker)
        self.store = store
        if store is not None and store.clock is None:
            store.clock = network.clock
        # the broker's producer side (Subscribe / GetCurrentMessage / delivery)
        self.producer = NotificationProducer(
            network,
            address,
            version=version,
            topic_namespace=topic_namespace,
            delivery_manager=delivery_manager,
        )
        self.producer.subscription_listeners.append(self._on_subscription_event)
        self.delivery_manager = delivery_manager
        if (
            delivery_manager is not None
            and qos is not None
            and qos.pause_pending_above is not None
        ):
            delivery_manager.backlog_listeners.append(self._on_backlog)
        # the broker's consumer side shares the producer endpoint: publishers
        # send Notify to the broker address
        self.producer.endpoint.on_action(version.action("Notify"), self._handle_notify)
        self.producer.endpoint.on_action(
            f"{BROKERED_NS}/RegisterPublisher", self._handle_register_publisher
        )
        # registration manager endpoint
        self.registration_address = f"{address}/registrations"
        self.registration_endpoint = SoapEndpoint(network, self.registration_address)
        self.registration_endpoint.on_action(
            f"{BROKERED_NS}/DestroyRegistration", self._handle_destroy_registration
        )
        self._registrations: dict[str, PublisherRegistration] = {}
        self._counter = itertools.count(1)
        # the broker's own subscriber/consumer roles towards demand publishers
        self._upstream_subscriber = WsnSubscriber(network, version=version)
        self._upstream_consumer_address = f"{address}/upstream"
        self._upstream_consumer = SoapEndpoint(network, self._upstream_consumer_address)
        self._upstream_consumer.on_action(
            version.action("Notify"), self._handle_upstream_notify
        )

    # --- convenience ------------------------------------------------------------

    @property
    def address(self) -> str:
        return self.producer.address

    def epr(self) -> EndpointReference:
        return self.producer.epr()

    def close(self) -> None:
        self.producer.close()
        self.registration_endpoint.close()
        self._upstream_consumer.close()

    def registrations(self) -> list[PublisherRegistration]:
        return [r for r in self._registrations.values() if not r.destroyed]

    # --- consumer side: publishers push Notify at the broker -------------------------

    def _handle_notify(self, envelope: SoapEnvelope, headers: MessageHeaders):
        body = envelope.body_element()
        if body.name == self.version.qname("Notify"):
            items = messages.parse_notify(body, self.version)
            for item in items:
                self.publish(item.payload, topic=item.topic)
        else:
            self.publish(body)
        return None

    def _handle_upstream_notify(self, envelope: SoapEnvelope, headers: MessageHeaders):
        # demand-publisher traffic re-enters the broker's fan-out
        return self._handle_notify(envelope, headers)

    def publish(self, payload: XElem, *, topic: Optional[str] = None) -> int:
        """Broker-side publication (in-process publisher API)."""
        if self.store is None:
            return self.producer.publish(payload, topic=topic)
        # transactional outbox: append before fan-out
        self.store.record_publish(
            payload, topic, self.network.instrumentation.trace_context()
        )
        try:
            return self.producer.publish(payload, topic=topic)
        finally:
            self.store.end_publish()

    # --- publisher registration --------------------------------------------------------

    def _handle_register_publisher(self, envelope: SoapEnvelope, headers: MessageHeaders):
        body = envelope.body_element()
        publisher_elem = body.find(QName(BROKERED_NS, "PublisherReference"))
        publisher = (
            EndpointReference.from_element(publisher_elem, self.version.wsa_version)
            if publisher_elem is not None
            else None
        )
        topic_elem = body.find(self.version.qname("Topic")) or body.find(
            QName(BROKERED_NS, "Topic")
        )
        topic = topic_elem.full_text().strip() if topic_elem is not None else None
        demand_elem = body.find(QName(BROKERED_NS, "Demand"))
        demand = demand_elem is not None and demand_elem.full_text().strip() == "true"
        registration = self.register_publisher(publisher, topic=topic, demand=demand)
        response = XElem(QName(BROKERED_NS, "RegisterPublisherResponse"))
        reference = EndpointReference(self.registration_address)
        reference.with_parameter(text_element(REGISTRATION_ID, registration.key))
        response.append(
            reference.to_element(
                self.version.wsa_version,
                QName(BROKERED_NS, "PublisherRegistrationReference"),
            )
        )
        reply = SoapEnvelope(SoapVersion.V11)
        reply_headers = MessageHeaders.reply(
            headers, f"{BROKERED_NS}/RegisterPublisherResponse", self.version.wsa_version
        )
        apply_headers(reply, reply_headers, self.version.wsa_version)
        reply.add_body(response)
        return reply

    def register_publisher(
        self,
        publisher: Optional[EndpointReference],
        *,
        topic: Optional[str] = None,
        demand: bool = False,
    ) -> PublisherRegistration:
        if demand and (publisher is None or topic is None):
            raise SoapFault(
                FaultCode.SENDER,
                "demand-based registration needs a PublisherReference and a Topic",
                subcode=QName(BROKERED_NS, "InvalidProducerPropertiesExpressionFault"),
            )
        key = f"reg-{next(self._counter)}"
        registration = PublisherRegistration(key, publisher, topic, demand)
        self._registrations[key] = registration
        if demand:
            # subscribe to the publisher's producer, then pause until demand
            registration.upstream = self._upstream_subscriber.subscribe(
                publisher,
                EndpointReference(self._upstream_consumer_address),
                topic=topic,
            )
            self._upstream_subscriber.pause(registration.upstream)
            registration.paused_upstream = True
            self._reconcile_demand(registration)
        return registration

    def _handle_destroy_registration(self, envelope: SoapEnvelope, headers: MessageHeaders):
        key = ""
        for header in headers.echoed:
            if header.name == REGISTRATION_ID:
                key = header.full_text().strip()
        registration = self._registrations.get(key)
        if registration is None or registration.destroyed:
            raise SoapFault(
                FaultCode.SENDER,
                f"unknown registration {key!r}",
                subcode=QName(BROKERED_NS, "ResourceNotDestroyedFault"),
            )
        self.destroy_registration(registration)
        response = XElem(QName(BROKERED_NS, "DestroyRegistrationResponse"))
        reply = SoapEnvelope(SoapVersion.V11)
        reply_headers = MessageHeaders.reply(
            headers, f"{BROKERED_NS}/DestroyRegistrationResponse", self.version.wsa_version
        )
        apply_headers(reply, reply_headers, self.version.wsa_version)
        reply.add_body(response)
        return reply

    def destroy_registration(self, registration: PublisherRegistration) -> None:
        registration.destroyed = True
        if registration.upstream is not None:
            try:
                self._upstream_subscriber.unsubscribe(registration.upstream)
            except SoapFault as exc:
                # the upstream subscription may already be gone; the skip is
                # recorded so a systematically-faulting manager stays visible
                self.network.instrumentation.count(
                    "obs.swallowed_errors_total",
                    site="wsn.broker.destroy_registration",
                    kind=type(exc).__name__,
                )

    # --- demand-based publishing ----------------------------------------------------------

    def _on_subscription_event(self, event: str, subscription: WsnSubscription) -> None:
        if event in ("created", "destroyed", "paused", "resumed"):
            for registration in self._registrations.values():
                if registration.demand and not registration.destroyed:
                    self._reconcile_demand(registration)

    def demand_for(self, topic: str) -> int:
        """Number of live, unpaused subscriptions whose filter selects ``topic``."""
        count = 0
        for subscription in self.producer.live_subscriptions():
            if subscription.paused:
                continue
            if subscription.topic_expression is None:
                count += 1  # subscribes to everything
                continue
            try:
                expression = TopicExpression(
                    subscription.topic_expression, TopicDialect.FULL
                )
                if expression.matches(topic):
                    count += 1
            except Exception as exc:
                # an unparsable filter contributes no demand, but the skip
                # must be visible — a silent drop here pauses real publishers
                self.network.instrumentation.count(
                    "obs.swallowed_errors_total",
                    site="wsn.broker.demand_for",
                    kind=type(exc).__name__,
                )
                continue
        return count

    def _on_backlog(self, pending: int) -> None:
        """Delivery-backlog listener: pause every demand publisher while the
        pipeline's pending count sits above the policy's high-water mark, and
        resume once it drains below the low-water mark (hysteresis — the two
        thresholds keep a borderline backlog from flapping the upstream
        Pause/Resume wire traffic)."""
        policy = self.qos_policy
        if policy is None or policy.pause_pending_above is None:
            return
        if not self.lag_paused and pending >= policy.pause_pending_above:
            self.lag_paused = True
            self.publisher_pauses += 1
            self.network.instrumentation.count(
                "qos.publisher_pauses", family="wsn", broker=self.address
            )
            self._reconcile_all_demand()
        elif self.lag_paused and pending <= policy.resume_pending_below:
            self.lag_paused = False
            self.publisher_resumes += 1
            self.network.instrumentation.count(
                "qos.publisher_resumes", family="wsn", broker=self.address
            )
            self._reconcile_all_demand()

    def _reconcile_all_demand(self) -> None:
        for registration in self._registrations.values():
            if registration.demand and not registration.destroyed:
                self._reconcile_demand(registration)

    def _reconcile_demand(self, registration: PublisherRegistration) -> None:
        if registration.upstream is None or registration.topic is None:
            return
        # while lag-paused the broker advertises zero demand: consumers may
        # still be subscribed, but the pipeline cannot absorb more input
        demand = 0 if self.lag_paused else self.demand_for(registration.topic)
        if demand > 0 and registration.paused_upstream:
            self._upstream_subscriber.resume(registration.upstream)
            registration.paused_upstream = False
        elif demand == 0 and not registration.paused_upstream:
            self._upstream_subscriber.pause(registration.upstream)
            registration.paused_upstream = True


@dataclass
class RegistrationHandle:
    """Client-side handle to a publisher registration at a broker."""

    reference: EndpointReference
    key: str


class BrokeredClient:
    """Wire-level client for the WS-BrokeredNotification operations."""

    def __init__(
        self, network: SimulatedNetwork, *, version: WsnVersion = WsnVersion.V1_3
    ) -> None:
        from repro.soap.envelope import SoapVersion
        from repro.transport.endpoint import SoapClient

        self.version = version
        self._client = SoapClient(
            network, wsa_version=version.wsa_version, soap_version=SoapVersion.V11
        )

    def register_publisher(
        self,
        broker: EndpointReference,
        *,
        publisher: Optional[EndpointReference] = None,
        topic: Optional[str] = None,
        demand: bool = False,
    ) -> RegistrationHandle:
        body = XElem(QName(BROKERED_NS, "RegisterPublisher"))
        if publisher is not None:
            body.append(
                publisher.to_element(
                    self.version.wsa_version, QName(BROKERED_NS, "PublisherReference")
                )
            )
        if topic is not None:
            body.append(text_element(self.version.qname("Topic"), topic))
        body.append(
            text_element(QName(BROKERED_NS, "Demand"), "true" if demand else "false")
        )
        reply = self._client.call(broker, f"{BROKERED_NS}/RegisterPublisher", [body])
        if reply is None:
            raise SoapFault(FaultCode.RECEIVER, "no response to RegisterPublisher")
        reference_elem = reply.body_element().require(
            QName(BROKERED_NS, "PublisherRegistrationReference")
        )
        reference = EndpointReference.from_element(
            reference_elem, self.version.wsa_version
        )
        return RegistrationHandle(
            reference, reference.parameter_text(REGISTRATION_ID) or ""
        )

    def destroy_registration(self, handle: RegistrationHandle) -> None:
        body = XElem(QName(BROKERED_NS, "DestroyRegistration"))
        self._client.call(handle.reference, f"{BROKERED_NS}/DestroyRegistration", [body])
