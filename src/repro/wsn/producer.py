"""The WS-Notification NotificationProducer and its SubscriptionManager.

Subscriptions are genuine WS-Resources (:mod:`repro.wsrf`): their filter,
status and termination time are resource properties, their lifetime is
managed through WSRF in 1.0/1.2 (mandatorily) and 1.3 (optionally, alongside
the native Renew/Unsubscribe), and their demise triggers a WSRF
TerminationNotification to the consumer — which is how WSN <= 1.2 realizes
WS-Eventing's SubscriptionEnd (Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.delivery.batcher import DeliveryBatcher
from repro.delivery.outcome import DeliveryFailure, record_failure
from repro.delivery.policy import BatchingPolicy
from repro.delivery.task import DeliveryItem
from repro.filters.base import AcceptAllFilter, AndFilter, Filter, FilterContext, FilterError
from repro.obs.instrument import BoundCounters
from repro.qos.adaptive import validate_supported
from repro.qos.properties import QosError, QosProfile
from repro.filters.content import MessageContentFilter
from repro.filters.producer import ProducerPropertiesFilter
from repro.filters.topics import TopicFilter, TopicNamespace, topic_expression_of
from repro.soap.envelope import SoapEnvelope, SoapVersion
from repro.soap.fault import FaultCode, SoapFault
from repro.transport.endpoint import SoapClient, SoapEndpoint
from repro.transport.network import NetworkError, SimulatedNetwork
from repro.wsa.epr import EndpointReference
from repro.wsa.headers import MessageHeaders, apply_headers, fresh_message_id
from repro.wsn import messages
from repro.wsn.messages import NotificationMessage, WsnFilterSpec, WsnSubscribeRequest
from repro.wsn.templates import NotifyTemplateCache, sink_signature
from repro.wsn.versions import WsnVersion
from repro.wsrf.lifetime import set_termination_time
from repro.wsrf.properties import get_resource_property
from repro.wsrf.resource import RESOURCE_ID, ResourceRegistry, ResourceUnknownFault, WsResource
from repro.xmlkit.element import XElem, text_element
from repro.xmlkit.writer import frozen_namespace_order
from repro.xmlkit.names import Namespaces, QName
from repro.util.xstime import format_datetime, parse_datetime, parse_expires

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.delivery.manager import DeliveryManager

# resource property names of a subscription resource
PROP_STATUS = QName(Namespaces.WSNT_13, "SubscriptionStatus")
PROP_TERMINATION = QName(Namespaces.WSRF_RL, "TerminationTime")
PROP_CONSUMER = QName(Namespaces.WSNT_13, "ConsumerReference")
PROP_FILTER = QName(Namespaces.WSNT_13, "FilterDescription")
PROP_TOPIC_SET = QName(Namespaces.WSTOP_13, "TopicSet")


@dataclass
class WsnSubscription:
    """Runtime state attached to a subscription resource."""

    resource: WsResource
    consumer: EndpointReference
    filter: Filter
    topic_expression: Optional[str]
    use_raw: bool
    paused: bool = False
    paused_queue: list[NotificationMessage] = field(default_factory=list)
    #: accepted QoS profile (1.3 SubscriptionPolicy / <=1.2 extension child)
    qos: Optional[QosProfile] = None

    @property
    def key(self) -> str:
        return self.resource.key


class NotificationProducer:
    """A WSN producer bound to the simulated network.

    The producer is distinct from the *publisher* (Fig. 2): publishers call
    :meth:`publish`; consumers never talk to publishers directly.
    """

    def __init__(
        self,
        network: SimulatedNetwork,
        address: str,
        *,
        version: WsnVersion = WsnVersion.V1_3,
        manager_address: Optional[str] = None,
        topic_namespace: Optional[TopicNamespace] = None,
        default_lifetime: Optional[float] = 3600.0,
        producer_properties: Optional[dict[str, str]] = None,
        enable_wsrf: Optional[bool] = None,
        delivery_manager: Optional["DeliveryManager"] = None,
        debug_linear_match: bool = False,
        batching: Optional[BatchingPolicy] = None,
        debug_no_templates: bool = False,
    ) -> None:
        self.network = network
        self.version = version
        self._version_tag = version.name.lower()  # metric/span label form
        #: pre-bound fan-out counters (see repro.obs.instrument.BoundCounters)
        self._bound_counters = BoundCounters()
        self.clock = network.clock
        self.default_lifetime = default_lifetime
        self.topics = topic_namespace or TopicNamespace()
        #: escape hatch: bypass the topic index / frozen-payload fast path and
        #: match with the original linear scan (differential tests diff the two)
        self.debug_linear_match = debug_linear_match
        self._topic_index = self.topics.new_index()
        self.producer_properties = dict(producer_properties or {})
        # WSRF port: mandatory <= 1.2, optional (default on) in 1.3
        if enable_wsrf is None:
            self.wsrf_enabled = True
        else:
            self.wsrf_enabled = enable_wsrf or version.requires_wsrf
        #: when set, push delivery routes through the reliable store-and-
        #: forward pipeline instead of the immediate best-effort attempt
        self.delivery_manager = delivery_manager
        #: every failed outbound send, recorded (see repro.delivery.outcome)
        self.delivery_failures: list[DeliveryFailure] = []
        self.registry = ResourceRegistry(self.clock, key_prefix="wsn-sub")
        self._subscriptions: dict[str, WsnSubscription] = {}
        #: consumed by the next create_subscription (log replay pins the key)
        self._forced_sub_id: Optional[str] = None
        self._current_message: dict[str, XElem] = {}  # last message per topic
        self._client = SoapClient(
            network, wsa_version=version.wsa_version, soap_version=SoapVersion.V11
        )
        #: listeners for broker demand accounting: (event, subscription)
        self.subscription_listeners: list[Callable[[str, WsnSubscription], None]] = []
        self.endpoint = SoapEndpoint(network, address)
        self.endpoint.on_action(version.action("Subscribe"), self._handle_subscribe)
        self.endpoint.on_action(
            version.action("GetCurrentMessage"), self._handle_get_current_message
        )
        if self.wsrf_enabled:
            # the producer itself is a WS-Resource: its TopicSet and
            # producer properties are readable via GetResourceProperty
            self.endpoint.on_action(
                messages.wsrf_action("GetResourceProperty"),
                self._handle_producer_property,
            )
        self.manager_address = manager_address or f"{address}/subscriptions"
        self.manager_endpoint = SoapEndpoint(network, self.manager_address)
        self._register_manager_handlers(self.manager_endpoint)
        #: escape hatch mirroring ``debug_linear_match``: disable the envelope
        #: byte-template cache so every send walks the full tree (differential
        #: tests diff the two paths byte-for-byte)
        self.debug_no_templates = debug_no_templates
        self.templates = NotifyTemplateCache(version, address, self.manager_address)
        #: per-sink wire coalescing (None = one request per notification);
        #: shares the delivery manager's scheduler so window expiry rides the
        #: same run_due/run_until_idle pump as retries
        self.batcher: Optional[DeliveryBatcher] = None
        if batching is not None:
            self.batcher = DeliveryBatcher(
                self.clock,
                batching,
                self._flush_batch,
                scheduler=delivery_manager.scheduler if delivery_manager else None,
                instrumentation=network.instrumentation,
                family="wsn",
            )

    @property
    def address(self) -> str:
        return self.endpoint.address

    def epr(self) -> EndpointReference:
        return EndpointReference(self.address)

    def wsdl(self) -> str:
        """This producer's self-description as a WSDL 1.1 document."""
        from repro.wsdl.generator import wsdl_for_wsn_producer

        return wsdl_for_wsn_producer(
            self.version, address=self.address, include_wsrf=self.wsrf_enabled
        ).to_xml()

    def close(self) -> None:
        self.endpoint.close()
        self.manager_endpoint.close()

    # --- subscribe -----------------------------------------------------------

    def _handle_subscribe(self, envelope: SoapEnvelope, headers: MessageHeaders):
        request = messages.parse_subscribe(envelope.body_element(), self.version)
        subscription = self.create_subscription(request)
        termination = subscription.resource.termination_time
        body = messages.build_subscribe_response(
            self.version,
            manager_address=self.manager_address,
            sub_id=subscription.key,
            current_time_text=format_datetime(self.clock.now()),
            termination_time_text=(
                format_datetime(termination) if termination is not None else None
            ),
        )
        return self._reply(headers, self.version.action("SubscribeResponse"), body)

    def force_next_subscription_id(self, sub_id: str) -> None:
        """Pin the key the next Subscribe mints (log/journal replay)."""
        self._forced_sub_id = sub_id

    def forget_subscription(self, sub_id: str) -> None:
        """Drop a subscription without a TerminationNotification (log
        replay: the pre-crash removal already announced itself).  The
        "destroyed" listeners still fire so derived state — topic index,
        mesh demand — stays consistent."""
        if self.registry.find(sub_id) is not None:
            self.registry.destroy(sub_id, reason="unsubscribed")
        else:
            self._subscriptions.pop(sub_id, None)
            self._topic_index.discard(sub_id)
            self.templates.note_removed(sub_id)

    def create_subscription(self, request: WsnSubscribeRequest) -> WsnSubscription:
        """Core Subscribe logic (also called in-process by the broker)."""
        if self.version.requires_topic and request.filter.topic_expression is None:
            raise SoapFault(
                FaultCode.SENDER,
                f"WS-BaseNotification {self.version.name} requires a TopicExpression",
                subcode=self.version.qname("TopicExpressionRequired"),
            )
        # consume the forced key up front so a faulting request cannot leak
        # it into an unrelated later subscription
        forced_sub_id, self._forced_sub_id = self._forced_sub_id, None
        self._accept_qos(request.qos, request.consumer)
        subscription_filter = self._build_filter(request.filter)
        expiry = self._grant_termination(request.initial_termination_text)
        resource = self.registry.create(key=forced_sub_id)
        resource.termination_time = expiry
        self.registry.note_termination(resource)
        subscription = WsnSubscription(
            resource=resource,
            consumer=request.consumer,
            filter=subscription_filter,
            topic_expression=request.filter.topic_expression,
            use_raw=request.use_raw,
            qos=request.qos,
        )
        self._subscriptions[resource.key] = subscription
        self._topic_index.add(resource.key, topic_expression_of(subscription_filter))
        self._set_resource_properties(subscription)
        resource.termination_listeners.append(self._on_subscription_terminated)
        self._notify_listeners("created", subscription)
        return subscription

    def _accept_qos(
        self, qos: Optional[QosProfile], consumer: EndpointReference
    ) -> None:
        """Vet a requested QoS profile, registering it with the adaptive
        controller when the delivery pipeline carries one.  A profile the
        producer cannot honour faults the Subscribe (1.3's
        UnsupportedPolicyRequestFault) rather than silently degrading."""
        if qos is None:
            return
        controller = (
            self.delivery_manager.qos if self.delivery_manager is not None else None
        )
        try:
            if controller is not None:
                controller.register_consumer(consumer.address, qos)
            else:
                validate_supported(qos)
        except QosError as exc:
            raise SoapFault(
                FaultCode.SENDER,
                f"unsupported QoS policy: {exc}",
                subcode=self.version.qname("UnsupportedPolicyRequestFault"),
            ) from exc

    def _priority_of(self, subscription: WsnSubscription) -> int:
        return subscription.qos.get("Priority") if subscription.qos is not None else 0

    def _set_resource_properties(self, subscription: WsnSubscription) -> None:
        resource = subscription.resource
        resource.set_text_property(
            PROP_STATUS, "Paused" if subscription.paused else "Active"
        )
        termination = resource.termination_time
        resource.set_text_property(
            PROP_TERMINATION,
            format_datetime(termination) if termination is not None else "",
        )
        resource.set_property(
            PROP_CONSUMER,
            subscription.consumer.to_element(self.version.wsa_version, PROP_CONSUMER),
        )
        resource.set_text_property(PROP_FILTER, subscription.filter.describe())

    def _build_filter(self, spec: WsnFilterSpec) -> Filter:
        parts: list[Filter] = []
        if spec.topic_expression is not None:
            try:
                parts.append(TopicFilter.parse(spec.topic_expression, spec.topic_dialect))
            except FilterError as exc:
                raise SoapFault(
                    FaultCode.SENDER,
                    str(exc),
                    subcode=self.version.qname("InvalidTopicExpressionFault"),
                ) from exc
        if spec.producer_properties is not None:
            try:
                parts.append(
                    ProducerPropertiesFilter(spec.producer_properties, spec.namespaces)
                )
            except FilterError as exc:
                raise SoapFault(
                    FaultCode.SENDER,
                    str(exc),
                    subcode=self.version.qname("InvalidProducerPropertiesExpressionFault"),
                ) from exc
        if spec.message_content is not None:
            if spec.message_content_dialect != Namespaces.DIALECT_XPATH10:
                raise SoapFault(
                    FaultCode.SENDER,
                    f"unsupported content dialect {spec.message_content_dialect!r}",
                    subcode=self.version.qname("InvalidMessageContentExpressionFault"),
                )
            try:
                parts.append(MessageContentFilter(spec.message_content, spec.namespaces))
            except FilterError as exc:
                raise SoapFault(
                    FaultCode.SENDER,
                    str(exc),
                    subcode=self.version.qname("InvalidMessageContentExpressionFault"),
                ) from exc
        if not parts:
            return AcceptAllFilter()
        if len(parts) == 1:
            return parts[0]
        return AndFilter(parts)

    def _grant_termination(self, text: Optional[str]) -> Optional[float]:
        now = self.clock.now()
        if text is None:
            return None if self.default_lifetime is None else now + self.default_lifetime
        fault = SoapFault(
            FaultCode.SENDER,
            f"unacceptable initial termination time {text!r}",
            subcode=self.version.qname("UnacceptableInitialTerminationTimeFault"),
        )
        if text.startswith("P") or text.startswith("-P"):
            if not self.version.supports_duration_expiry:
                raise SoapFault(
                    FaultCode.SENDER,
                    f"WS-BaseNotification {self.version.name} accepts only absolute "
                    "termination times (durations arrived in 1.3)",
                    subcode=self.version.qname("UnacceptableInitialTerminationTimeFault"),
                )
            try:
                requested = parse_expires(text, now)
            except ValueError:
                raise fault from None
        else:
            try:
                requested = parse_datetime(text)
            except ValueError:
                raise fault from None
        if requested is not None and requested <= now:
            raise fault
        return requested

    # --- manager operations ---------------------------------------------------------

    def _register_manager_handlers(self, endpoint: SoapEndpoint) -> None:
        version = self.version
        if version.has_native_unsubscribe:
            endpoint.on_action(version.action("Renew"), self._handle_renew)
            endpoint.on_action(version.action("Unsubscribe"), self._handle_unsubscribe)
        endpoint.on_action(version.action("PauseSubscription"), self._handle_pause)
        endpoint.on_action(version.action("ResumeSubscription"), self._handle_resume)
        if self.wsrf_enabled:
            endpoint.on_action(
                messages.wsrf_action("GetResourceProperty"), self._handle_get_property
            )
            endpoint.on_action(
                messages.wsrf_lifetime_action("SetTerminationTime"),
                self._handle_set_termination_time,
            )
            endpoint.on_action(
                messages.wsrf_lifetime_action("Destroy"), self._handle_destroy
            )

    def _subscription_for(self, headers: MessageHeaders) -> WsnSubscription:
        sub_id = messages.subscription_id_from_headers(headers.echoed)
        self.registry.get(sub_id)  # liveness check; faults ResourceUnknown
        subscription = self._subscriptions.get(sub_id)
        if subscription is None:
            raise ResourceUnknownFault(sub_id)
        return subscription

    def _handle_renew(self, envelope: SoapEnvelope, headers: MessageHeaders):
        subscription = self._subscription_for(headers)
        term_elem = envelope.body_element().find(self.version.qname("TerminationTime"))
        text = term_elem.full_text().strip() if term_elem is not None else None
        subscription.resource.termination_time = self._grant_termination(text)
        self.registry.note_termination(subscription.resource)
        self._set_resource_properties(subscription)
        self._notify_listeners("renewed", subscription)
        termination = subscription.resource.termination_time
        body = messages.build_renew_response(
            self.version,
            format_datetime(termination) if termination is not None else "",
            format_datetime(self.clock.now()),
        )
        return self._reply(headers, self.version.action("RenewResponse"), body)

    def _handle_unsubscribe(self, envelope: SoapEnvelope, headers: MessageHeaders):
        subscription = self._subscription_for(headers)
        self.registry.destroy(subscription.key, reason="unsubscribed")
        body = XElem(self.version.qname("UnsubscribeResponse"))
        return self._reply(headers, self.version.action("UnsubscribeResponse"), body)

    def _handle_pause(self, envelope: SoapEnvelope, headers: MessageHeaders):
        subscription = self._subscription_for(headers)
        subscription.paused = True
        self._set_resource_properties(subscription)
        self._notify_listeners("paused", subscription)
        body = XElem(self.version.qname("PauseSubscriptionResponse"))
        return self._reply(headers, self.version.action("PauseSubscriptionResponse"), body)

    def _handle_resume(self, envelope: SoapEnvelope, headers: MessageHeaders):
        subscription = self._subscription_for(headers)
        subscription.paused = False
        self._set_resource_properties(subscription)
        backlog, subscription.paused_queue = subscription.paused_queue, []
        if backlog:
            self._deliver(subscription, backlog)
        self._notify_listeners("resumed", subscription)
        body = XElem(self.version.qname("ResumeSubscriptionResponse"))
        return self._reply(headers, self.version.action("ResumeSubscriptionResponse"), body)

    def _handle_get_property(self, envelope: SoapEnvelope, headers: MessageHeaders):
        subscription = self._subscription_for(headers)
        name = messages.parse_get_resource_property(envelope.body_element())
        values = get_resource_property(subscription.resource, name)
        body = XElem(QName(Namespaces.WSRF_RP, "GetResourcePropertyResponse"))
        for value in values:
            body.append(value.copy())
        return self._reply(
            headers, messages.wsrf_action("GetResourcePropertyResponse"), body
        )

    def _handle_set_termination_time(self, envelope: SoapEnvelope, headers: MessageHeaders):
        subscription = self._subscription_for(headers)
        request = envelope.body_element()
        requested = request.find(QName(Namespaces.WSRF_RL, "RequestedTerminationTime"))
        if requested is None or not requested.full_text().strip():
            new_time: Optional[float] = None
        else:
            new_time = parse_datetime(requested.full_text().strip())
        set_termination_time(self.registry, subscription.resource, new_time)
        self._set_resource_properties(subscription)
        self._notify_listeners("renewed", subscription)
        body = XElem(QName(Namespaces.WSRF_RL, "SetTerminationTimeResponse"))
        body.append(
            text_element(
                QName(Namespaces.WSRF_RL, "NewTerminationTime"),
                format_datetime(new_time) if new_time is not None else "",
            )
        )
        return self._reply(
            headers, messages.wsrf_lifetime_action("SetTerminationTimeResponse"), body
        )

    def _handle_destroy(self, envelope: SoapEnvelope, headers: MessageHeaders):
        subscription = self._subscription_for(headers)
        self.registry.destroy(subscription.key, reason="destroyed")
        body = XElem(QName(Namespaces.WSRF_RL, "DestroyResponse"))
        return self._reply(headers, messages.wsrf_lifetime_action("DestroyResponse"), body)

    def topic_set_document(self) -> XElem:
        """The producer's advertised topic space (WS-Topics TopicSet)."""
        document = XElem(PROP_TOPIC_SET)
        for path in self.topics.all_paths():
            document.append(
                text_element(QName(Namespaces.WSTOP_13, "Topic"), path)
            )
        return document

    def _handle_producer_property(self, envelope: SoapEnvelope, headers: MessageHeaders):
        name = messages.parse_get_resource_property(envelope.body_element())
        body = XElem(QName(Namespaces.WSRF_RP, "GetResourcePropertyResponse"))
        if name == PROP_TOPIC_SET:
            body.append(self.topic_set_document())
        elif name.local == "ProducerProperties":
            from repro.filters.producer import properties_document

            body.append(properties_document(self.producer_properties))
        else:
            from repro.wsrf.properties import InvalidResourcePropertyFault

            raise InvalidResourcePropertyFault(name)
        return self._reply(
            headers, messages.wsrf_action("GetResourcePropertyResponse"), body
        )

    def _handle_get_current_message(self, envelope: SoapEnvelope, headers: MessageHeaders):
        topic, _dialect = messages.parse_get_current_message(
            envelope.body_element(), self.version
        )
        payload = self._current_message.get(topic)
        if payload is None:
            raise SoapFault(
                FaultCode.SENDER,
                f"no current message on topic {topic!r}",
                subcode=self.version.qname("NoCurrentMessageOnTopicFault"),
            )
        body = XElem(self.version.qname("GetCurrentMessageResponse"))
        body.append(payload if payload.frozen else payload.copy())
        return self._reply(
            headers, self.version.action("GetCurrentMessageResponse"), body
        )

    def _reply(self, request_headers: MessageHeaders, action: str, body: XElem) -> SoapEnvelope:
        reply = SoapEnvelope(SoapVersion.V11)
        headers = MessageHeaders.reply(request_headers, action, self.version.wsa_version)
        apply_headers(reply, headers, self.version.wsa_version)
        reply.add_body(body)
        return reply

    # --- publication --------------------------------------------------------------------

    def publish(self, payload: XElem, *, topic: Optional[str] = None) -> int:
        """Publish one event on an (optional in 1.3) topic.

        Returns the number of subscriptions the event matched (including
        paused ones, whose copies are queued for resume).
        """
        if topic is None and self.version.requires_topic:
            raise SoapFault(
                FaultCode.SENDER,
                f"WS-BaseNotification {self.version.name} publications require a topic",
            )
        instr = self.network.instrumentation
        if not instr.enabled:
            return self._match_and_deliver(payload, topic)
        # a publish arriving with no live lineage is a true origin (mint a
        # fresh one); with one — e.g. the broker backbone re-publishing a
        # mediated message — it stays inside the existing trace
        originating = instr.trace_context() is None
        with instr.span(
            "wsn.publish",
            mint=True,
            producer=self.address,
            version=self._version_tag,
            topic=topic or "",
        ) as span:
            if originating:
                # direct ledger write: mint=True guarantees span.lineage, so
                # the lineage_event() None-guard and kwargs repack are skipped
                instr._ledger_record(
                    span.lineage, "published", producer=self.address, family="wsn"
                )
            matched = self._match_and_deliver(payload, topic)
        matched_counter = self._bound_counters.probe(instr, "matched")
        if matched_counter is None:
            matched_counter = self._bound_counters.get(
                instr, "matched", "notifications.matched",
                family="wsn", version=self._version_tag,
            )
        matched_counter.inc(matched)
        return matched

    def _match_and_deliver(self, payload: XElem, topic: Optional[str]) -> int:
        if self.debug_linear_match:
            return self._match_and_deliver_linear(payload, topic)
        instr = self.network.instrumentation
        if topic is not None:
            try:
                self.topics.validate_publication(topic)
            except FilterError as exc:
                raise SoapFault(FaultCode.SENDER, str(exc)) from exc
        # one frozen payload instance is shared by every match this publish
        if payload.frozen:
            frozen = payload
        else:
            frozen = payload.copy().freeze()
            if instr.enabled:
                self._bound_counters.get(
                    instr, "payload_copies", "fanout.payload_copies", family="wsn"
                ).inc()
        if topic is not None:
            self._current_message[topic] = frozen
        self.registry.sweep_due()
        context = FilterContext(
            frozen, topic=topic, producer_properties=self.producer_properties
        )
        candidates = self._topic_index.candidates(topic)
        if instr.enabled:
            bound = self._bound_counters
            hits_counter = bound.probe(instr, "index_hits")
            if hits_counter is None:
                hits_counter = bound.get(
                    instr, "index_hits", "fanout.index_hits", family="wsn"
                )
            hits_counter.inc(len(candidates))
            skipped = len(self._subscriptions) - len(candidates)
            if skipped > 0:
                bound.get(
                    instr, "index_skips", "fanout.index_skips", family="wsn"
                ).inc(skipped)
            # hottest site: one increment per candidate, via one handle
            evals_counter = bound.probe(instr, "filter_evals")
            if evals_counter is None:
                evals_counter = bound.get(
                    instr, "filter_evals", "fanout.filter_evals", family="wsn"
                )
        else:
            evals_counter = None
        matched = 0
        for key in candidates:
            subscription = self._subscriptions.get(key)
            if subscription is None or not subscription.resource.alive(self.clock.now()):
                continue
            if evals_counter is not None:
                evals_counter.inc()
            if not subscription.filter.matches(context):
                continue
            matched += 1
            message = NotificationMessage(
                frozen,
                topic=topic,
                subscription_reference=self.registry.epr_for(
                    subscription.resource, self.manager_address
                ),
                producer_reference=self.epr(),
            )
            if subscription.paused:
                subscription.paused_queue.append(message)
                if instr.enabled:
                    lineage = instr.trace_context()
                    if lineage is not None:
                        # informational: the paused queue holds bare messages,
                        # so per-item lineage ends here (no obligation)
                        instr.lineage_event(
                            lineage.lineage_id, "queued",
                            subscription=subscription.key, mode="paused",
                        )
            elif self.batcher is not None and not subscription.use_raw:
                # same sink + same shape coalesce into one wire request; the
                # group key mirrors the byte-template cache key so every
                # flushed batch renders through a single compiled envelope
                lineage = instr.trace_context() if instr.enabled else None
                self.batcher.add(
                    (
                        sink_signature(subscription.consumer),
                        topic,
                        frozen_namespace_order(frozen),
                    ),
                    (subscription, message, lineage),
                    priority=self._priority_of(subscription),
                )
            else:
                self._deliver(subscription, [message])
        if self.batcher is not None:
            self.batcher.flush_publish()
        return matched

    def _match_and_deliver_linear(self, payload: XElem, topic: Optional[str]) -> int:
        """The pre-index matcher, kept verbatim as the differential baseline
        (``debug_linear_match=True``): full sweep, linear scan, one filter
        evaluation and one payload copy per subscriber."""
        instr = self.network.instrumentation
        if topic is not None:
            try:
                self.topics.validate_publication(topic)
            except FilterError as exc:
                raise SoapFault(FaultCode.SENDER, str(exc)) from exc
            self._current_message[topic] = payload.copy()
            if instr.enabled:
                instr.count("fanout.payload_copies", family="wsn")
        self.registry.sweep()
        context = FilterContext(
            payload, topic=topic, producer_properties=self.producer_properties
        )
        matched = 0
        for subscription in list(self._subscriptions.values()):
            if not subscription.resource.alive(self.clock.now()):
                continue
            if instr.enabled:
                instr.count("fanout.filter_evals", family="wsn")
            if not subscription.filter.matches(context):
                continue
            matched += 1
            if instr.enabled:
                instr.count("fanout.payload_copies", family="wsn")
            message = NotificationMessage(
                payload.copy(),
                topic=topic,
                subscription_reference=self.registry.epr_for(
                    subscription.resource, self.manager_address
                ),
                producer_reference=self.epr(),
            )
            if subscription.paused:
                subscription.paused_queue.append(message)
            else:
                self._deliver(subscription, [message])
        return matched

    def note_publication(self, payload: XElem, topic: Optional[str]) -> None:
        """Record a publication without fanning out — the broker's
        zero-subscription fast path.  Preserves the observable side effects
        of :meth:`publish`: topic validation (and namespace growth) and the
        GetCurrentMessage cache."""
        if topic is None:
            return
        try:
            self.topics.validate_publication(topic)
        except FilterError as exc:
            raise SoapFault(FaultCode.SENDER, str(exc)) from exc
        self._current_message[topic] = payload if payload.frozen else payload.copy()

    def has_subscriptions(self) -> bool:
        """Whether any subscription (live or not-yet-swept) exists — O(1)."""
        return bool(self._subscriptions)

    def _deliver(
        self, subscription: WsnSubscription, notifications: list[NotificationMessage]
    ) -> None:
        instr = self.network.instrumentation

        def attempt() -> None:
            if not instr.enabled:
                self._send_notifications(subscription, notifications)
            else:
                with instr.span(
                    "notify", family="wsn", to=subscription.consumer.address,
                    raw="true" if subscription.use_raw else "false",
                ):
                    self._send_notifications(subscription, notifications)
                delivered_counter = self._bound_counters.probe(
                    instr, "delivered"
                )
                if delivered_counter is None:
                    delivered_counter = self._bound_counters.get(
                        instr, "delivered", "notifications.delivered",
                        family="wsn", version=self._version_tag,
                    )
                delivered_counter.inc()

        if self.delivery_manager is not None:
            # reliable path: the pipeline owns retries, dead-lettering and the
            # firewall fallback, so a failed attempt never ends the subscription
            lineage = instr.trace_context()
            self.delivery_manager.submit(
                subscription.consumer.address,
                attempt,
                items=[
                    DeliveryItem(
                        item.payload if item.payload.frozen else item.payload.copy(),
                        item.topic,
                        lineage=lineage,
                    )
                    for item in notifications
                ],
                family="wsn",
                describe=f"notify {subscription.key}",
                priority=self._priority_of(subscription),
            )
            return
        lineage = instr.trace_context() if instr.enabled else None
        sink = subscription.consumer.address
        if lineage is not None:
            # direct path: the obligation opens and closes synchronously
            # (ledger written directly — the lineage id is known non-None)
            record = instr._ledger_record
            for _ in notifications:
                record(lineage.lineage_id, "enqueued", sink=sink, family="wsn")
                record(lineage.lineage_id, "attempted", n=1, sink=sink)
        try:
            attempt()
            if lineage is not None:
                for _ in notifications:
                    instr.lineage_delivered(
                        lineage.lineage_id,
                        family="wsn",
                        hops=lineage.hop + 1,
                        sink=sink,
                    )
        except (NetworkError, SoapFault) as exc:
            # failed consumer: destroy the subscription (soft state would
            # collect it anyway; this mirrors WSE's DeliveryFailure ending)
            if instr.enabled:
                self._bound_counters.get(
                    instr, "failed", "notifications.failed",
                    family="wsn", version=self._version_tag,
                ).inc()
            if lineage is not None:
                for _ in notifications:
                    instr.lineage_event(
                        lineage.lineage_id, "failed",
                        sink=sink, reason=type(exc).__name__,
                    )
            record_failure(
                self.delivery_failures,
                instr,
                at=self.clock.now(),
                family="wsn",
                stage="notify",
                sink=subscription.consumer.address,
                error=exc,
            )
            try:
                self.registry.destroy(subscription.key, reason="delivery failure")
            except ResourceUnknownFault as destroy_exc:
                # already destroyed (e.g. swept mid-delivery); record the skip
                instr.count(
                    "obs.swallowed_errors_total",
                    site="wsn.producer.destroy_after_failure",
                    kind=type(destroy_exc).__name__,
                )

    def flush_batches(self) -> None:
        """Force out every partially-filled batch (broker ``flush()``)."""
        if self.batcher is not None:
            self.batcher.flush_all()

    def _flush_batch(
        self,
        key,
        entries: list[tuple[WsnSubscription, NotificationMessage, object]],
    ) -> None:
        """Deliver one coalesced batch: same sink, same shape, one request.

        Mirrors :meth:`_deliver` exactly — manager path submits one task
        whose items carry each notification's own lineage; the direct path
        opens and closes every obligation synchronously and ends all batched
        subscriptions on failure, just as a per-subscriber push would have.
        """
        instr = self.network.instrumentation
        consumer = entries[0][0].consumer
        sink = consumer.address
        wrapped = [(sub.key, item) for sub, item, _ in entries]

        def attempt() -> None:
            if not instr.enabled:
                self._send_wrapped(consumer, wrapped)
            else:
                with instr.span(
                    "notify", family="wsn", to=sink, raw="false",
                    batch=str(len(wrapped)),
                ):
                    self._send_wrapped(consumer, wrapped)
                self._bound_counters.get(
                    instr, "delivered", "notifications.delivered",
                    family="wsn", version=self._version_tag,
                ).inc(len(wrapped))

        if self.delivery_manager is not None:
            self.delivery_manager.submit(
                sink,
                attempt,
                items=[
                    DeliveryItem(
                        item.payload if item.payload.frozen else item.payload.copy(),
                        item.topic,
                        lineage=lineage,
                    )
                    for _, item, lineage in entries
                ],
                family="wsn",
                describe=f"notify batch[{len(entries)}] {sink}",
                priority=max(self._priority_of(sub) for sub, _, _ in entries),
            )
            return
        lineages = [lineage for _, _, lineage in entries if lineage is not None]
        if lineages:
            record = instr._ledger_record
            for lineage in lineages:
                record(lineage.lineage_id, "enqueued", sink=sink, family="wsn")
                record(lineage.lineage_id, "attempted", n=1, sink=sink)
        try:
            attempt()
            for lineage in lineages:
                instr.lineage_delivered(
                    lineage.lineage_id, family="wsn", hops=lineage.hop + 1, sink=sink
                )
        except (NetworkError, SoapFault) as exc:
            if instr.enabled:
                self._bound_counters.get(
                    instr, "failed", "notifications.failed",
                    family="wsn", version=self._version_tag,
                ).inc(len(entries))
            for lineage in lineages:
                instr.lineage_event(
                    lineage.lineage_id, "failed", sink=sink, reason=type(exc).__name__
                )
            record_failure(
                self.delivery_failures,
                instr,
                at=self.clock.now(),
                family="wsn",
                stage="notify",
                sink=sink,
                error=exc,
            )
            for subscription in {sub.key: sub for sub, _, _ in entries}.values():
                try:
                    self.registry.destroy(subscription.key, reason="delivery failure")
                except ResourceUnknownFault as destroy_exc:
                    instr.count(
                        "obs.swallowed_errors_total",
                        site="wsn.producer.destroy_after_failure",
                        kind=type(destroy_exc).__name__,
                    )

    def _send_notifications(
        self, subscription: WsnSubscription, notifications: list[NotificationMessage]
    ) -> None:
        if subscription.use_raw:
            for item in notifications:
                self._client.call(
                    subscription.consumer,
                    self.version.action("Notify"),
                    [item.payload if item.payload.frozen else item.payload.copy()],
                    expect_reply=False,
                )
        else:
            self._send_wrapped(
                subscription.consumer,
                [(subscription.key, item) for item in notifications],
            )

    def _send_wrapped(
        self,
        consumer: EndpointReference,
        entries: list[tuple[str, NotificationMessage]],
    ) -> None:
        """One wrapped Notify request carrying ``entries`` (sub key, message).

        Fast path: render through the envelope byte-template cache — no tree
        build, no tree walk.  Fallback (``debug_no_templates``, unfrozen
        payload, mixed shapes, sentinel collision, envelope filter): the
        original ``build_notify`` + ``call`` path, byte-identical output.
        """
        action = self.version.action("Notify")
        text = self._render_notify(consumer, entries)
        if text is not None:
            instr = self.network.instrumentation
            context = instr.trace_context() if instr.enabled else None
            self._client.send_rendered(
                consumer.address,
                action,
                text,
                lineage=None if context is None else context.wire_text(),
            )
            return
        body = messages.build_notify(self.version, [item for _, item in entries])
        self._client.call(consumer, action, [body], expect_reply=False)

    def _render_notify(
        self,
        consumer: EndpointReference,
        entries: list[tuple[str, NotificationMessage]],
    ) -> Optional[str]:
        """Rendered envelope text for ``entries``, or ``None`` for the tree
        path.  Runs at attempt time, so the message id is minted exactly
        where the tree path would mint it.  Lineage never appears here:
        trace context rides the HTTP head (see ``_send_wrapped``), so the
        rendered bytes match the uninstrumented envelope exactly."""
        if self.debug_no_templates or self._client.envelope_filter is not None:
            return None
        instr = self.network.instrumentation
        first = entries[0][1]
        topic = first.topic
        dialect = first.topic_dialect
        payload0 = first.payload
        if not payload0.frozen:
            return None
        shape = frozen_namespace_order(payload0)
        for sub_key, item in entries:
            if (
                item.topic != topic
                or item.topic_dialect != dialect
                or not item.payload.frozen
                or (item.payload is not payload0
                    and frozen_namespace_order(item.payload) != shape)
                or not self._references_match(sub_key, item)
            ):
                if instr.enabled:
                    self._bound_counters.get(
                        instr, "template_misses", "fanout.template_misses",
                        family="wsn",
                    ).inc()
                return None
        compiled, outcome = self.templates.lookup(
            consumer,
            topic,
            dialect,
            payload0,
            sub_keys=[sub_key for sub_key, _ in entries],
        )
        if instr.enabled:
            if outcome == "hit":
                self._bound_counters.get(
                    instr, "template_hits", "fanout.template_hits", family="wsn"
                ).inc()
            else:
                self._bound_counters.get(
                    instr, "template_misses", "fanout.template_misses",
                    family="wsn",
                ).inc()
            flight = instr.flight
            if flight.enabled:
                flight.record(
                    "serialize",
                    family="wsn",
                    sink=consumer.address,
                    outcome=outcome,
                    batch=len(entries),
                )
        if compiled is None:
            return None
        message_id = fresh_message_id()
        phases = instr.phases
        if phases is None:
            return compiled.render(
                message_id,
                [(sub_key, item.payload) for sub_key, item in entries],
            )
        timer = phases.begin()
        text = compiled.render(
            message_id,
            [(sub_key, item.payload) for sub_key, item in entries],
        )
        phases.end("serialize", timer)
        return text

    def _references_match(self, sub_key: str, item: NotificationMessage) -> bool:
        """Whether the message's EPRs are exactly the shapes the template
        bakes in (our own ``epr_for`` + producer EPR); anything else — e.g. a
        re-published message carrying foreign references — takes the tree
        path rather than silently rewriting its references."""
        sref = item.subscription_reference
        pref = item.producer_reference
        if sref is None or pref is None:
            return False
        if pref.address != self.address or pref.reference_parameters or pref.reference_properties:
            return False
        if sref.address != self.manager_address or sref.reference_properties:
            return False
        if len(sref.reference_parameters) != 1:
            return False
        param = sref.reference_parameters[0]
        return (
            param.name == RESOURCE_ID
            and not param.attrs
            and len(param.children) == 1
            and param.children[0] == sub_key
        )

    # --- termination -----------------------------------------------------------------------

    def _on_subscription_terminated(self, resource: WsResource, reason: str) -> None:
        subscription = self._subscriptions.pop(resource.key, None)
        self._topic_index.discard(resource.key)
        self.templates.note_removed(resource.key)
        if subscription is None:
            return
        self._notify_listeners("destroyed", subscription)
        if reason == "unsubscribed":
            return  # orderly removal, no termination notice
        if not self.wsrf_enabled:
            # TerminationNotification is a WSRF resource-lifetime feature:
            # mandatory <= 1.2, available in 1.3 exactly when WSRF is mounted
            return
        body = messages.build_termination_notification(reason)

        def send_termination() -> None:
            self._client.call(
                subscription.consumer,
                messages.wsrf_lifetime_action("TerminationNotification"),
                [body],
                expect_reply=False,
            )

        if self.delivery_manager is not None:
            # control message: retried like any delivery, but content-free so
            # it is never parked in a message box
            self.delivery_manager.submit(
                subscription.consumer.address,
                send_termination,
                family="wsn",
                describe=f"termination_notification {subscription.key}",
            )
            return
        try:
            send_termination()
        except (NetworkError, SoapFault) as exc:
            record_failure(
                self.delivery_failures,
                self.network.instrumentation,
                at=self.clock.now(),
                family="wsn",
                stage="termination_notification",
                sink=subscription.consumer.address,
                error=exc,
            )

    def sweep(self) -> None:
        """Expire overdue subscriptions (fires termination notifications)."""
        self.registry.sweep()

    def _notify_listeners(self, event: str, subscription: WsnSubscription) -> None:
        for listener in self.subscription_listeners:
            listener(event, subscription)

    # --- introspection -----------------------------------------------------------------

    def live_subscriptions(self) -> list[WsnSubscription]:
        now = self.clock.now()
        return [
            s for s in self._subscriptions.values() if s.resource.alive(now)
        ]
