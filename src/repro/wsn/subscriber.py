"""The WS-Notification subscriber: the client role managing subscriptions.

The method set mirrors the paper's Table 2 exactly:

===================  ==========================================================
WS-Eventing          WS-BaseNotification equivalent (this class)
===================  ==========================================================
Subscribe            :meth:`WsnSubscriber.subscribe`
Renew                :meth:`renew` (1.3) / :meth:`set_termination_time` (WSRF)
Unsubscribe          :meth:`unsubscribe` (1.3) / :meth:`destroy` (WSRF)
GetStatus            not defined — :meth:`get_resource_property` (WSRF)
SubscriptionEnd      not defined — WSRF TerminationNotification (consumer side)
(not available)      :meth:`pause` / :meth:`resume`
(not available)      :meth:`get_current_message`
===================  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.qos.properties import QosProfile
from repro.soap.envelope import SoapVersion
from repro.soap.fault import FaultCode, SoapFault
from repro.transport.endpoint import SoapClient
from repro.transport.network import PUBLIC_ZONE, SimulatedNetwork
from repro.wsa.epr import EndpointReference
from repro.wsn import messages
from repro.wsn.messages import WsnFilterSpec
from repro.wsn.versions import WsnVersion
from repro.xmlkit.element import XElem
from repro.xmlkit.names import Namespaces, QName


@dataclass
class WsnSubscriptionHandle:
    version: WsnVersion
    reference: EndpointReference  # subscription-manager EPR w/ id ref param/prop
    sub_id: str
    termination_time_text: Optional[str]


class WsnSubscriber:
    """Client-side API over the WS-BaseNotification message exchanges."""

    def __init__(
        self,
        network: SimulatedNetwork,
        *,
        version: WsnVersion = WsnVersion.V1_3,
        zone: str = PUBLIC_ZONE,
    ) -> None:
        self.version = version
        self._client = SoapClient(
            network, zone=zone, wsa_version=version.wsa_version, soap_version=SoapVersion.V11
        )

    # --- subscribe ----------------------------------------------------------------

    def subscribe(
        self,
        producer: EndpointReference,
        consumer: EndpointReference,
        *,
        topic: Optional[str] = None,
        topic_dialect: str = Namespaces.DIALECT_TOPIC_CONCRETE,
        message_content: Optional[str] = None,
        producer_properties: Optional[str] = None,
        namespaces: Optional[dict[str, str]] = None,
        initial_termination: Optional[str] = None,
        use_raw: bool = False,
        qos: Optional[QosProfile] = None,
    ) -> WsnSubscriptionHandle:
        spec = WsnFilterSpec(
            topic_expression=topic,
            topic_dialect=topic_dialect,
            message_content=message_content,
            producer_properties=producer_properties,
            namespaces=dict(namespaces or {}),
        )
        body = messages.build_subscribe(
            self.version,
            consumer=consumer,
            filter=spec,
            initial_termination=initial_termination,
            use_raw=use_raw,
            qos=qos,
        )
        reply = self._client.call(producer, self.version.action("Subscribe"), [body])
        if reply is None:
            raise SoapFault(FaultCode.RECEIVER, "no response to Subscribe")
        result = messages.parse_subscribe_response(reply.body_element(), self.version)
        return WsnSubscriptionHandle(
            self.version, result.reference, result.sub_id, result.termination_time_text
        )

    def _manager_call(self, handle: WsnSubscriptionHandle, action: str, body: XElem) -> XElem:
        reply = self._client.call(handle.reference, action, [body])
        if reply is None:
            raise SoapFault(FaultCode.RECEIVER, f"no response to {action}")
        return reply.body_element()

    # --- native (1.3) management ----------------------------------------------------

    def renew(self, handle: WsnSubscriptionHandle, termination: Optional[str] = None) -> str:
        body = messages.build_renew(self.version, termination)  # faults <= 1.2
        response = self._manager_call(handle, self.version.action("Renew"), body)
        term = response.find(self.version.qname("TerminationTime"))
        text = term.full_text().strip() if term is not None else ""
        handle.termination_time_text = text
        return text

    def unsubscribe(self, handle: WsnSubscriptionHandle) -> None:
        body = messages.build_unsubscribe(self.version)  # faults <= 1.2
        self._manager_call(handle, self.version.action("Unsubscribe"), body)

    # --- pause / resume (WSN-only; Table 2's last rows) ----------------------------------

    def pause(self, handle: WsnSubscriptionHandle) -> None:
        self._manager_call(
            handle,
            self.version.action("PauseSubscription"),
            messages.build_pause(self.version),
        )

    def resume(self, handle: WsnSubscriptionHandle) -> None:
        self._manager_call(
            handle,
            self.version.action("ResumeSubscription"),
            messages.build_resume(self.version),
        )

    # --- WSRF management (mandatory <= 1.2, optional 1.3) ---------------------------------

    def get_resource_property(self, handle: WsnSubscriptionHandle, name: QName) -> list[XElem]:
        body = messages.build_get_resource_property(name)
        response = self._manager_call(
            handle, messages.wsrf_action("GetResourceProperty"), body
        )
        return [child.copy() for child in response.elements()]

    def get_status(self, handle: WsnSubscriptionHandle) -> str:
        """Table 2's GetStatus equivalent: read SubscriptionStatus via WSRF."""
        from repro.wsn.producer import PROP_STATUS

        values = self.get_resource_property(handle, PROP_STATUS)
        return values[0].full_text().strip() if values else ""

    def set_termination_time(
        self, handle: WsnSubscriptionHandle, termination: Optional[str]
    ) -> str:
        body = messages.build_set_termination_time(termination)
        response = self._manager_call(
            handle, messages.wsrf_lifetime_action("SetTerminationTime"), body
        )
        new_time = response.find(QName(Namespaces.WSRF_RL, "NewTerminationTime"))
        return new_time.full_text().strip() if new_time is not None else ""

    def destroy(self, handle: WsnSubscriptionHandle) -> None:
        """WSRF Destroy — the <= 1.2 way to unsubscribe."""
        self._manager_call(
            handle, messages.wsrf_lifetime_action("Destroy"), messages.build_destroy()
        )

    # --- GetCurrentMessage ------------------------------------------------------------------

    def get_current_message(
        self,
        producer: EndpointReference,
        topic: str,
        dialect: str = Namespaces.DIALECT_TOPIC_CONCRETE,
    ) -> XElem:
        body = messages.build_get_current_message(self.version, topic, dialect)
        reply = self._client.call(
            producer, self.version.action("GetCurrentMessage"), [body]
        )
        if reply is None:
            raise SoapFault(FaultCode.RECEIVER, "no response to GetCurrentMessage")
        payload = next(reply.body_element().elements(), None)
        if payload is None:
            raise SoapFault(FaultCode.RECEIVER, "empty GetCurrentMessageResponse")
        return payload.copy()
