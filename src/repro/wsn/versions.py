"""WS-Notification version profiles and Table 1 feature flags."""

from __future__ import annotations

from enum import Enum

from repro.wsa.versions import WsaVersion
from repro.xmlkit.names import Namespaces, QName


class WsnVersion(Enum):
    """The three WS-BaseNotification releases the paper compares.

    1.0 (03/2004) is the initial refactor of the original WS-Notification;
    1.2 is the OASIS submission ("very similar to version 1.0" — the paper
    skips it in Table 1 for that reason); 1.3 is Public Review Draft 2, the
    convergence release.
    """

    V1_0 = Namespaces.WSNT_10
    V1_2 = Namespaces.WSNT_12
    V1_3 = Namespaces.WSNT_13

    @property
    def namespace(self) -> str:
        return self.value

    def qname(self, local: str) -> QName:
        return QName(self.namespace, local)

    def action(self, local: str) -> str:
        return f"{self.namespace}/{local}"

    @property
    def topics_namespace(self) -> str:
        return Namespaces.WSTOP_13 if self is WsnVersion.V1_3 else Namespaces.WSTOP_10

    @property
    def wsa_version(self) -> WsaVersion:
        """Table 1: WSN 1.0 binds WSA 2003/03; 1.3 binds 2005/08.
        (1.2, the OASIS submission, used the 2004/08 member submission.)"""
        if self is WsnVersion.V1_0:
            return WsaVersion.V2003_03
        if self is WsnVersion.V1_2:
            return WsaVersion.V2004_08
        return WsaVersion.V2005_08

    # --- Table 1 feature flags -----------------------------------------------

    @property
    def separate_subscription_manager(self) -> bool:
        return True  # all WSN versions

    @property
    def separate_subscriber(self) -> bool:
        return True

    @property
    def has_get_status(self) -> bool:
        """Status queries exist in every version — via WSRF
        getResourceProperties (<=1.2 mandatory, 1.3 optional)."""
        return True

    @property
    def subscription_id_in_epr(self) -> bool:
        return True  # SubscriptionReference EPR, all versions

    @property
    def uses_reference_properties(self) -> bool:
        """The section V.4 category-1 difference: pre-2005/08 WSA encloses
        the subscription id in ReferenceProperties, not ReferenceParameters."""
        return self.wsa_version.supports_reference_properties

    @property
    def supports_wrapped_delivery(self) -> bool:
        return True  # Notify wrapper defined in all versions

    @property
    def supports_pull_delivery(self) -> bool:
        return self is WsnVersion.V1_3  # PullPoint arrived in 1.3

    @property
    def supports_duration_expiry(self) -> bool:
        """1.3 adopted WS-Eventing's duration option; earlier versions take
        absolute termination times only."""
        return self is WsnVersion.V1_3

    @property
    def defines_xpath_dialect(self) -> bool:
        """1.3 adopted the XPath-based subscription dialect."""
        return self is WsnVersion.V1_3

    @property
    def has_filter_element(self) -> bool:
        """1.3 wraps filters in a <Filter> element; 1.0/1.2 carry
        TopicExpression/Selector directly in Subscribe."""
        return self is WsnVersion.V1_3

    @property
    def requires_wsrf(self) -> bool:
        return self is not WsnVersion.V1_3

    @property
    def requires_topic(self) -> bool:
        return self is not WsnVersion.V1_3

    @property
    def defines_pause_resume(self) -> bool:
        return True  # defined in all versions...

    @property
    def requires_pause_resume(self) -> bool:
        return self is not WsnVersion.V1_3  # ...but mandatory only <= 1.2

    @property
    def defines_get_current_message(self) -> bool:
        return True

    @property
    def defines_wrapped_format(self) -> bool:
        return True  # the Notify/NotificationMessage structure

    @property
    def separates_producer_and_publisher(self) -> bool:
        return True

    @property
    def defines_pull_point_interface(self) -> bool:
        return self is WsnVersion.V1_3

    @property
    def pull_mode_in_subscription(self) -> bool:
        """A pull point must be created *before* subscribing and is then a
        plain push consumer from the producer's perspective (section V.3)."""
        return False

    @property
    def has_native_unsubscribe(self) -> bool:
        """1.3's 'renew' and 'Unsubscribe' operations made WSRF optional."""
        return self is WsnVersion.V1_3

    @property
    def requires_status_query(self) -> bool:
        """Table 1 row "Require Getstatus": mandatory while WSRF is
        mandatory (<= 1.2); optional once WSRF became optional (1.3)."""
        return self.requires_wsrf

    @property
    def requires_subscription_end(self) -> bool:
        """<=1.2: WSRF TerminationNotification is part of the required
        resource lifetime; 1.3 does not require an end notice."""
        return self is not WsnVersion.V1_3

    @property
    def defines_broker(self) -> bool:
        return True  # WS-BrokeredNotification accompanies every release
