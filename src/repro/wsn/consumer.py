"""The WS-Notification NotificationConsumer endpoint."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.soap.envelope import SoapEnvelope
from repro.transport.endpoint import SoapEndpoint
from repro.transport.network import PUBLIC_ZONE, SimulatedNetwork
from repro.wsa.epr import EndpointReference
from repro.wsa.headers import MessageHeaders
from repro.wsn import messages
from repro.wsn.versions import WsnVersion
from repro.xmlkit.element import XElem
from repro.xmlkit.names import Namespaces, QName


@dataclass
class ReceivedWsnNotification:
    payload: XElem
    topic: Optional[str] = None
    wrapped: bool = True
    subscription_address: Optional[str] = None


class NotificationConsumer:
    """Receives wrapped ``Notify`` messages, raw messages, and WSRF
    termination notifications."""

    def __init__(
        self,
        network: SimulatedNetwork,
        address: str,
        *,
        version: WsnVersion = WsnVersion.V1_3,
        zone: str = PUBLIC_ZONE,
    ) -> None:
        self.version = version
        self.endpoint = SoapEndpoint(network, address, zone=zone)
        self.received: list[ReceivedWsnNotification] = []
        self.termination_notices: list[str] = []
        self.endpoint.on_action(version.action("Notify"), self._handle_notify)
        self.endpoint.on_action(
            messages.wsrf_lifetime_action("TerminationNotification"),
            self._handle_termination,
        )
        self.endpoint.on_any(self._handle_raw)

    @property
    def address(self) -> str:
        return self.endpoint.address

    def epr(self) -> EndpointReference:
        return EndpointReference(self.address)

    def close(self) -> None:
        self.endpoint.close()

    def payloads(self) -> list[XElem]:
        return [item.payload for item in self.received]

    def topics_seen(self) -> list[Optional[str]]:
        return [item.topic for item in self.received]

    # --- handlers -----------------------------------------------------------

    def _handle_notify(self, envelope: SoapEnvelope, headers: MessageHeaders):
        body = envelope.body_element()
        if body.name == self.version.qname("Notify"):
            for item in messages.parse_notify(body, self.version):
                self.received.append(
                    ReceivedWsnNotification(
                        item.payload,
                        topic=item.topic,
                        wrapped=True,
                        subscription_address=(
                            item.subscription_reference.address
                            if item.subscription_reference
                            else None
                        ),
                    )
                )
        else:
            # raw delivery arrives under the Notify action with a bare payload
            self.received.append(ReceivedWsnNotification(body, wrapped=False))
        return None

    def _handle_raw(self, envelope: SoapEnvelope, headers: MessageHeaders):
        self.received.append(
            ReceivedWsnNotification(envelope.body_element(), wrapped=False)
        )
        return None

    def _handle_termination(self, envelope: SoapEnvelope, headers: MessageHeaders):
        body = envelope.body_element()
        reason = body.find(QName(Namespaces.WSRF_RL, "TerminationReason"))
        self.termination_notices.append(
            reason.full_text().strip() if reason is not None else ""
        )
        return None
