"""WS-Notification message construction and parsing, per version.

Shapes reproduced from the specs (and exercised by the paper's
message-format comparison):

- 1.3 Subscribe carries a ``Filter`` element wrapping any of TopicExpression /
  ProducerProperties / MessageContent, and an ``InitialTerminationTime`` that
  may be a duration; the reply's SubscriptionReference carries the id in
  ``ReferenceParameters`` (WSA 2005/08).
- 1.0/1.2 Subscribe carries ``TopicExpression`` (required), an optional
  ``Selector`` (content filter, no dialect defined), ``UseNotify`` (wrapped
  vs raw), and an absolute ``InitialTerminationTime``; the reply encloses the
  id in ``ReferenceProperties`` (the paper's category-1 format difference).
- A wrapped notification is ``Notify`` containing ``NotificationMessage``
  elements, each with Topic, SubscriptionReference, ProducerReference and the
  ``Message`` payload — versus WSE's raw-body style (category 5/6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.qos.properties import QosError, QosProfile
from repro.qos.wire import find_profile, profile_to_element
from repro.soap.fault import FaultCode, SoapFault
from repro.wsa.epr import EndpointReference
from repro.wsn.versions import WsnVersion
from repro.xmlkit.element import XElem, text_element
from repro.xmlkit.names import Namespaces, QName

from repro.wse.messages import decode_filter_namespaces, encode_filter_namespaces

_DIALECT = QName("", "Dialect")


@dataclass
class WsnFilterSpec:
    """The filter content of a Subscribe request (any combination)."""

    topic_expression: Optional[str] = None
    topic_dialect: str = Namespaces.DIALECT_TOPIC_CONCRETE
    producer_properties: Optional[str] = None
    message_content: Optional[str] = None
    message_content_dialect: str = Namespaces.DIALECT_XPATH10
    namespaces: dict[str, str] = field(default_factory=dict)


@dataclass
class WsnSubscribeRequest:
    consumer: EndpointReference
    filter: WsnFilterSpec
    initial_termination_text: Optional[str]
    use_raw: bool  # False = wrapped Notify (the default in every version)
    #: requested QoS profile (1.3: inside SubscriptionPolicy; 1.0/1.2: a
    #: direct extension child of Subscribe), if any
    qos: Optional[QosProfile] = None


def build_subscribe(
    version: WsnVersion,
    *,
    consumer: EndpointReference,
    filter: Optional[WsnFilterSpec] = None,
    initial_termination: Optional[str] = None,
    use_raw: bool = False,
    qos: Optional[QosProfile] = None,
) -> XElem:
    wsa = version.wsa_version
    filter = filter or WsnFilterSpec()
    subscribe = XElem(version.qname("Subscribe"))
    subscribe.append(consumer.to_element(wsa, version.qname("ConsumerReference")))
    if version.has_filter_element:
        filter_elem = XElem(version.qname("Filter"))
        _append_filter_parts(version, filter_elem, filter)
        if list(filter_elem.elements()):
            subscribe.append(filter_elem)
        if use_raw or qos is not None:
            policy = XElem(version.qname("SubscriptionPolicy"))
            if use_raw:
                policy.append(XElem(version.qname("UseRaw")))
            if qos is not None:
                # 1.3's SubscriptionPolicy is the designated extension slot
                policy.append(profile_to_element(qos))
            subscribe.append(policy)
    else:
        # 1.0/1.2: filter parts sit directly in Subscribe; UseNotify picks raw/wrapped
        _append_filter_parts(version, subscribe, filter)
        subscribe.append(
            text_element(version.qname("UseNotify"), "false" if use_raw else "true")
        )
        if qos is not None:
            # 1.0/1.2 have no policy wrapper; the profile rides as a direct
            # extension child (both specs allow open content)
            subscribe.append(profile_to_element(qos))
    if initial_termination is not None:
        subscribe.append(
            text_element(version.qname("InitialTerminationTime"), initial_termination)
        )
    return subscribe


def _append_filter_parts(version: WsnVersion, parent: XElem, filter: WsnFilterSpec) -> None:
    if filter.topic_expression is not None:
        topic = text_element(version.qname("TopicExpression"), filter.topic_expression)
        topic.attrs[_DIALECT] = filter.topic_dialect
        parent.append(topic)
    if filter.producer_properties is not None:
        props = text_element(version.qname("ProducerProperties"), filter.producer_properties)
        props.attrs[_DIALECT] = Namespaces.DIALECT_XPATH10
        if filter.namespaces:
            encode_filter_namespaces(props, filter.namespaces)
        parent.append(props)
    if filter.message_content is not None:
        local = "MessageContent" if version.has_filter_element else "Selector"
        content = text_element(version.qname(local), filter.message_content)
        if version.defines_xpath_dialect:
            content.attrs[_DIALECT] = filter.message_content_dialect
        if filter.namespaces:
            encode_filter_namespaces(content, filter.namespaces)
        parent.append(content)


def parse_subscribe(body: XElem, version: WsnVersion) -> WsnSubscribeRequest:
    if body.name != version.qname("Subscribe"):
        raise SoapFault(FaultCode.SENDER, f"expected wsnt:Subscribe, got {body.name}")
    consumer_elem = body.find(version.qname("ConsumerReference"))
    if consumer_elem is None:
        raise SoapFault(FaultCode.SENDER, "Subscribe has no ConsumerReference")
    consumer = EndpointReference.from_element(consumer_elem, version.wsa_version)
    filter = WsnFilterSpec()
    use_raw = False
    qos_parent = body
    if version.has_filter_element:
        filter_elem = body.find(version.qname("Filter"))
        if filter_elem is not None:
            _parse_filter_parts(version, filter_elem, filter)
        policy = body.find(version.qname("SubscriptionPolicy"))
        if policy is not None:
            if policy.find(version.qname("UseRaw")) is not None:
                use_raw = True
            qos_parent = policy
    else:
        _parse_filter_parts(version, body, filter)
        use_notify = body.find(version.qname("UseNotify"))
        if use_notify is not None and use_notify.full_text().strip() == "false":
            use_raw = True
    try:
        qos = find_profile(qos_parent)
        if qos is None and qos_parent is not body:
            qos = find_profile(body)
    except QosError as exc:
        raise SoapFault(
            FaultCode.SENDER,
            f"unsupported QoS: {exc}",
            subcode=version.qname("UnrecognizedPolicyRequestFault"),
        ) from exc
    term_elem = body.find(version.qname("InitialTerminationTime"))
    termination = term_elem.full_text().strip() if term_elem is not None else None
    return WsnSubscribeRequest(consumer, filter, termination, use_raw, qos=qos)


def _parse_filter_parts(version: WsnVersion, parent: XElem, filter: WsnFilterSpec) -> None:
    topic = parent.find(version.qname("TopicExpression"))
    if topic is not None:
        filter.topic_expression = topic.full_text().strip()
        filter.topic_dialect = topic.attrs.get(_DIALECT, Namespaces.DIALECT_TOPIC_CONCRETE)
    props = parent.find(version.qname("ProducerProperties"))
    if props is not None:
        filter.producer_properties = props.full_text().strip()
        filter.namespaces.update(decode_filter_namespaces(props))
    content = parent.find(version.qname("MessageContent")) or parent.find(
        version.qname("Selector")
    )
    if content is not None:
        filter.message_content = content.full_text().strip()
        filter.message_content_dialect = content.attrs.get(
            _DIALECT, Namespaces.DIALECT_XPATH10
        )
        filter.namespaces.update(decode_filter_namespaces(content))


# --- SubscribeResponse -----------------------------------------------------------

SUBSCRIPTION_ID = QName("http://repro.invalid/wsn", "SubscriptionId")


def build_subscribe_response(
    version: WsnVersion,
    *,
    manager_address: str,
    sub_id: str,
    current_time_text: Optional[str] = None,
    termination_time_text: Optional[str] = None,
) -> XElem:
    response = XElem(version.qname("SubscribeResponse"))
    reference = EndpointReference(manager_address)
    id_elem = text_element(SUBSCRIPTION_ID, sub_id)
    if version.uses_reference_properties:
        reference.with_property(id_elem)  # pre-2005/08 WSA style
    else:
        reference.with_parameter(id_elem)
    response.append(
        reference.to_element(version.wsa_version, version.qname("SubscriptionReference"))
    )
    if current_time_text is not None:
        response.append(text_element(version.qname("CurrentTime"), current_time_text))
    if termination_time_text is not None:
        response.append(
            text_element(version.qname("TerminationTime"), termination_time_text)
        )
    return response


@dataclass
class WsnSubscribeResult:
    reference: EndpointReference
    sub_id: str
    termination_time_text: Optional[str]


def parse_subscribe_response(body: XElem, version: WsnVersion) -> WsnSubscribeResult:
    if body.name != version.qname("SubscribeResponse"):
        raise SoapFault(FaultCode.SENDER, f"unexpected response {body.name}")
    ref_elem = body.require(version.qname("SubscriptionReference"))
    reference = EndpointReference.from_element(ref_elem, version.wsa_version)
    sub_id = reference.parameter_text(SUBSCRIPTION_ID) or ""
    term = body.find(version.qname("TerminationTime"))
    return WsnSubscribeResult(
        reference, sub_id, term.full_text().strip() if term is not None else None
    )


def subscription_id_from_headers(echoed: list[XElem]) -> str:
    for header in echoed:
        if header.name == SUBSCRIPTION_ID:
            return header.full_text().strip()
    raise SoapFault(FaultCode.SENDER, "missing SubscriptionId reference parameter/property")


# --- Notify ----------------------------------------------------------------------


@dataclass
class NotificationMessage:
    payload: XElem
    topic: Optional[str] = None
    topic_dialect: str = Namespaces.DIALECT_TOPIC_CONCRETE
    subscription_reference: Optional[EndpointReference] = None
    producer_reference: Optional[EndpointReference] = None


def build_notify(version: WsnVersion, notifications: list[NotificationMessage]) -> XElem:
    notify = XElem(version.qname("Notify"))
    for item in notifications:
        message = XElem(version.qname("NotificationMessage"))
        if item.subscription_reference is not None:
            message.append(
                item.subscription_reference.to_element(
                    version.wsa_version, version.qname("SubscriptionReference")
                )
            )
        if item.topic is not None:
            topic = text_element(version.qname("Topic"), item.topic)
            topic.attrs[_DIALECT] = item.topic_dialect
            message.append(topic)
        if item.producer_reference is not None:
            message.append(
                item.producer_reference.to_element(
                    version.wsa_version, version.qname("ProducerReference")
                )
            )
        wrapper = XElem(version.qname("Message"))
        # frozen payloads are fan-out-shared and safe to alias; mutable ones
        # are defensively copied as before
        wrapper.append(item.payload if item.payload.frozen else item.payload.copy())
        message.append(wrapper)
        notify.append(message)
    return notify


def parse_notify(body: XElem, version: WsnVersion) -> list[NotificationMessage]:
    if body.name != version.qname("Notify"):
        raise SoapFault(FaultCode.SENDER, f"expected wsnt:Notify, got {body.name}")
    notifications: list[NotificationMessage] = []
    for message in body.find_all(version.qname("NotificationMessage")):
        wrapper = message.require(version.qname("Message"))
        payload = next(wrapper.elements(), None)
        if payload is None:
            raise SoapFault(FaultCode.SENDER, "NotificationMessage has empty Message")
        item = NotificationMessage(payload.copy())
        topic = message.find(version.qname("Topic"))
        if topic is not None:
            item.topic = topic.full_text().strip()
            item.topic_dialect = topic.attrs.get(
                _DIALECT, Namespaces.DIALECT_TOPIC_CONCRETE
            )
        sub_ref = message.find(version.qname("SubscriptionReference"))
        if sub_ref is not None:
            item.subscription_reference = EndpointReference.from_element(
                sub_ref, version.wsa_version
            )
        prod_ref = message.find(version.qname("ProducerReference"))
        if prod_ref is not None:
            item.producer_reference = EndpointReference.from_element(
                prod_ref, version.wsa_version
            )
        notifications.append(item)
    return notifications


# --- subscription management -----------------------------------------------------


def build_renew(version: WsnVersion, termination_text: Optional[str]) -> XElem:
    if not version.has_native_unsubscribe:
        raise SoapFault(
            FaultCode.SENDER,
            f"Renew is not defined in WS-BaseNotification {version.name}; "
            "use WSRF SetTerminationTime",
        )
    renew = XElem(version.qname("Renew"))
    if termination_text is not None:
        renew.append(text_element(version.qname("TerminationTime"), termination_text))
    return renew


def build_renew_response(version: WsnVersion, termination_text: str, current_text: str) -> XElem:
    response = XElem(version.qname("RenewResponse"))
    response.append(text_element(version.qname("TerminationTime"), termination_text))
    response.append(text_element(version.qname("CurrentTime"), current_text))
    return response


def build_unsubscribe(version: WsnVersion) -> XElem:
    if not version.has_native_unsubscribe:
        raise SoapFault(
            FaultCode.SENDER,
            f"Unsubscribe is not defined in WS-BaseNotification {version.name}; "
            "use WSRF Destroy",
        )
    return XElem(version.qname("Unsubscribe"))


def build_pause(version: WsnVersion) -> XElem:
    return XElem(version.qname("PauseSubscription"))


def build_resume(version: WsnVersion) -> XElem:
    return XElem(version.qname("ResumeSubscription"))


def build_get_current_message(version: WsnVersion, topic: str, dialect: str) -> XElem:
    request = XElem(version.qname("GetCurrentMessage"))
    topic_elem = text_element(version.qname("Topic"), topic)
    topic_elem.attrs[_DIALECT] = dialect
    request.append(topic_elem)
    return request


def parse_get_current_message(body: XElem, version: WsnVersion) -> tuple[str, str]:
    topic_elem = body.require(version.qname("Topic"))
    return (
        topic_elem.full_text().strip(),
        topic_elem.attrs.get(_DIALECT, Namespaces.DIALECT_TOPIC_CONCRETE),
    )


# --- WSRF operations on subscription resources (actions + bodies) ------------------


def wsrf_action(local: str) -> str:
    return f"{Namespaces.WSRF_RP}/{local}"


def wsrf_lifetime_action(local: str) -> str:
    return f"{Namespaces.WSRF_RL}/{local}"


def build_get_resource_property(name: QName) -> XElem:
    request = XElem(QName(Namespaces.WSRF_RP, "GetResourceProperty"))
    # carry the property QName as namespace + local attributes (prefix-free wire form)
    request.attrs[QName("", "namespace")] = name.namespace
    request.attrs[QName("", "local")] = name.local
    return request


def parse_get_resource_property(body: XElem) -> QName:
    return QName(
        body.attrs.get(QName("", "namespace"), ""),
        body.attrs.get(QName("", "local"), ""),
    )


def build_set_termination_time(termination_text: Optional[str]) -> XElem:
    request = XElem(QName(Namespaces.WSRF_RL, "SetTerminationTime"))
    if termination_text is None:
        request.append(XElem(QName(Namespaces.WSRF_RL, "RequestedLifetimeDuration")))
    else:
        request.append(
            text_element(
                QName(Namespaces.WSRF_RL, "RequestedTerminationTime"), termination_text
            )
        )
    return request


def build_destroy() -> XElem:
    return XElem(QName(Namespaces.WSRF_RL, "Destroy"))


def build_termination_notification(reason: str) -> XElem:
    note = XElem(QName(Namespaces.WSRF_RL, "TerminationNotification"))
    note.append(text_element(QName(Namespaces.WSRF_RL, "TerminationReason"), reason))
    return note
