"""WS-Notification: WS-BaseNotification 1.0/1.2/1.3, WS-Topics,
WS-BrokeredNotification and pull points.

The family splits the paper's Fig. 2 roles into separate entities:

- **NotificationProducer** (:mod:`repro.wsn.producer`) accepts Subscribe and
  emits notifications; unlike WS-Eventing it is distinct from the
  **Publisher**, which merely hands events to a producer/broker.
- **SubscriptionManager** handles Renew/Unsubscribe (native in 1.3;
  via WSRF resource lifetime in 1.0/1.2) plus the WSN-only
  Pause/ResumeSubscription.
- **NotificationConsumer** (:mod:`repro.wsn.consumer`) receives ``Notify``
  (wrapped) or raw messages.
- **NotificationBroker** (:mod:`repro.wsn.broker`, WS-BrokeredNotification)
  decouples publishers from consumers, supports publisher registration and
  demand-based publishing.
- **PullPoint** (:mod:`repro.wsn.pullpoint`, 1.3 only) lets firewalled
  consumers poll for messages.

Version differences (Table 1) are driven by
:class:`~repro.wsn.versions.WsnVersion`: 1.0/1.2 require WSRF and a topic in
every subscription and mandate pause/resume; 1.3 drops the WSRF dependency,
adds Unsubscribe/Renew, the XPath message-content dialect, duration
expirations and the PullPoint interface.
"""

from repro.wsn.versions import WsnVersion
from repro.wsn.producer import NotificationProducer
from repro.wsn.consumer import NotificationConsumer
from repro.wsn.subscriber import WsnSubscriber, WsnSubscriptionHandle
from repro.wsn.broker import NotificationBroker, PublisherRegistration
from repro.wsn.pullpoint import PullPointFactory, PullPointClient

__all__ = [
    "WsnVersion",
    "NotificationProducer",
    "NotificationConsumer",
    "WsnSubscriber",
    "WsnSubscriptionHandle",
    "NotificationBroker",
    "PublisherRegistration",
    "PullPointFactory",
    "PullPointClient",
]
