"""Per-(sink, shape) envelope byte-templates for WSN Notify fan-out.

The PR 3 fast path serializes one frozen payload per publish, but still
builds and walks a full SOAP envelope tree per subscriber.  This module
removes that walk: for every (subscriber EPR, notification shape) pair the
producer compiles the complete Notify envelope **once** — with unique
sentinel strings in the per-send text positions — and every later send is a
``str.join`` over the cached segments (:class:`repro.xmlkit.template.
ByteTemplate`).

The envelope template has two slots, in document order:

* ``message_id`` — the ``wsa:MessageID`` text, minted fresh per attempt;
* ``messages`` — the run of ``NotificationMessage`` elements.

Lineage is *not* a slot: instrumented sends carry trace context as an HTTP
request header (see :mod:`repro.obs.propagation`), so the rendered envelope
bytes — and therefore the compiled templates — are identical with and
without instrumentation, and both modes share one cache entry per shape.

The ``messages`` slot is filled by a second, nested template compiled from a
single ``NotificationMessage`` chunk, with two slots of its own: ``sub_id``
(the ``wsrf:ResourceID`` text inside the SubscriptionReference) and
``payload`` (the frozen payload's spliced text under the envelope's exact
prefix assignment).  Rendering *n* chunks into the slot is what lets delivery
batching coalesce *n* notifications to one sink into one wire request while
staying byte-identical to :func:`repro.wsn.messages.build_notify` output.

Cache key and eviction: the sink half of the key is a structural signature
of the consumer EPR (recomputed per send, so an EPR change can never reuse a
stale entry), the shape half is ``(topic, dialect, payload namespace
order)``.  Entries are LRU-capped, dropped when the last subscription
referencing their sink goes away (unsubscribe, lease-expiry sweep, delivery
failure), and wiped wholesale by :meth:`NotifyTemplateCache.clear` on
recovery replay.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.soap.codec import envelope_root
from repro.soap.envelope import SoapEnvelope, SoapVersion
from repro.wsa.epr import EndpointReference
from repro.wsa.headers import MessageHeaders, apply_headers
from repro.wsn.messages import NotificationMessage, build_notify
from repro.wsn.versions import WsnVersion
from repro.wsrf.resource import RESOURCE_ID
from repro.xmlkit.element import XElem, text_element
from repro.xmlkit.template import TEMPLATE_STATS, ByteTemplate, TemplateSlotError
from repro.xmlkit.writer import (
    _escape_text,
    frozen_namespace_order,
    frozen_splice_text,
    serialize_subtree,
    serialize_with_allocator,
)

#: slot sentinels: URN-shaped so they are escape-invariant (no ``&<>\r``) and
#: can never collide with XML structure; a *payload* that happens to contain
#: one is caught by the exactly-once check and falls back to the tree path
MESSAGE_ID_SENTINEL = "urn:x-repro-template-slot:message-id"
SUB_ID_SENTINEL = "urn:x-repro-template-slot:subscription-id"


def _fold(elem: XElem):
    """Structural identity of an element (name, attrs in wire order, children).

    Deliberately *not* ``EndpointReference.to_element`` + serialize: that
    mutates the EPR (property folding) and a serialize would count as a tree
    walk on the very path whose tree walks we are eliminating.
    """
    return (
        elem.name,
        tuple(elem.attrs.items()),
        tuple(
            _fold(child) if isinstance(child, XElem) else child
            for child in elem.children
        ),
    )


def sink_signature(epr: EndpointReference):
    """Hashable identity of a consumer EPR (address + echoed reference
    parameters/properties).  Computed per send — an EPR that changes under a
    subscription simply keys a different cache slot."""
    return (
        epr.address,
        tuple(_fold(e) for e in epr.reference_parameters),
        tuple(_fold(e) for e in epr.reference_properties),
    )


class CompiledNotify:
    """One compiled envelope: outer template + per-message chunk template."""

    __slots__ = ("envelope", "chunk", "payload_mapping")

    def __init__(
        self,
        envelope: ByteTemplate,
        chunk: ByteTemplate,
        payload_mapping: tuple[str, ...],
    ) -> None:
        self.envelope = envelope
        self.chunk = chunk
        self.payload_mapping = payload_mapping

    def render(
        self,
        message_id: str,
        entries: list[tuple[str, XElem]],
    ) -> str:
        """Render the full envelope for ``entries`` = [(sub_key, payload)...]."""
        chunk = self.chunk
        mapping = self.payload_mapping
        chunks = [
            chunk.render(
                {
                    "sub_id": _escape_text(sub_key),
                    "payload": frozen_splice_text(payload, mapping),
                }
            )
            for sub_key, payload in entries
        ]
        return self.envelope.render(
            {
                "message_id": _escape_text(message_id),
                "messages": "".join(chunks),
            }
        )


class NotifyTemplateCache:
    """LRU cache of :class:`CompiledNotify` keyed on (sink, shape)."""

    def __init__(
        self,
        version: WsnVersion,
        producer_address: str,
        manager_address: str,
        *,
        capacity: int = 512,
    ) -> None:
        self.version = version
        self.producer_address = producer_address
        self.manager_address = manager_address
        self.capacity = capacity
        self._templates: "OrderedDict[tuple, CompiledNotify]" = OrderedDict()
        #: keys whose compilation failed (sentinel collision): don't retry
        self._rejected: set[tuple] = set()
        #: eviction bookkeeping: sink signature <-> subscription keys
        self._by_sink: dict[tuple, set[tuple]] = {}
        self._sink_refs: dict[tuple, set[str]] = {}
        self._sub_sinks: dict[str, set[tuple]] = {}

    # --- lookup -----------------------------------------------------------

    def lookup(
        self,
        consumer: EndpointReference,
        topic: Optional[str],
        topic_dialect: str,
        payload: XElem,
        *,
        sub_keys: list[str],
    ) -> tuple[Optional[CompiledNotify], str]:
        """The compiled template for this sink and shape plus an outcome tag
        (``"hit"``, ``"miss"`` = compiled fresh, ``"fallback"`` = cannot be
        templated: unfrozen payload or sentinel collision — the caller then
        takes the tree path)."""
        if not payload.frozen:
            TEMPLATE_STATS.fallbacks += 1
            return None, "fallback"
        sig = sink_signature(consumer)
        key = (sig, topic, topic_dialect, frozen_namespace_order(payload))
        self._note_refs(sig, key, sub_keys)
        compiled = self._templates.get(key)
        if compiled is not None:
            self._templates.move_to_end(key)
            TEMPLATE_STATS.hits += 1
            return compiled, "hit"
        if key in self._rejected:
            TEMPLATE_STATS.fallbacks += 1
            return None, "fallback"
        try:
            compiled = self._compile(consumer, topic, topic_dialect, payload)
        except TemplateSlotError:
            self._rejected.add(key)
            if len(self._rejected) > self.capacity:
                self._rejected.clear()
            TEMPLATE_STATS.fallbacks += 1
            return None, "fallback"
        TEMPLATE_STATS.misses += 1
        self._templates[key] = compiled
        if len(self._templates) > self.capacity:
            old_key, _ = self._templates.popitem(last=False)
            self._by_sink.get(old_key[0], set()).discard(old_key)
        return compiled, "miss"

    def _compile(
        self,
        consumer: EndpointReference,
        topic: Optional[str],
        topic_dialect: str,
        payload: XElem,
    ) -> CompiledNotify:
        """Build the sentinel envelope exactly the way the tree path does
        (same header order, same EPR shapes), serialize it once, and split."""
        version = self.version
        envelope = SoapEnvelope(SoapVersion.V11)
        headers = MessageHeaders(
            to=consumer.address,
            action=version.action("Notify"),
            message_id=MESSAGE_ID_SENTINEL,
        )
        headers.echoed = [
            e.copy()
            for e in (*consumer.reference_parameters, *consumer.reference_properties)
        ]
        apply_headers(envelope, headers, version.wsa_version)
        sub_reference = EndpointReference(self.manager_address).with_parameter(
            text_element(RESOURCE_ID, SUB_ID_SENTINEL)
        )
        item = NotificationMessage(
            payload,
            topic=topic,
            topic_dialect=topic_dialect,
            subscription_reference=sub_reference,
            producer_reference=EndpointReference(self.producer_address),
        )
        body = build_notify(version, [item])
        envelope.add_body(body)
        text, allocator = serialize_with_allocator(envelope_root(envelope))

        ns_order = frozen_namespace_order(payload)
        payload_mapping = tuple(allocator.prefix_for(uri) for uri in ns_order)
        payload_text = frozen_splice_text(payload, payload_mapping)
        chunk_elem = next(body.elements())
        chunk_text = serialize_subtree(chunk_elem, allocator)
        chunk = ByteTemplate.compile(
            chunk_text,
            [("sub_id", SUB_ID_SENTINEL), ("payload", payload_text)],
        )
        outer = ByteTemplate.compile(
            text,
            [("message_id", MESSAGE_ID_SENTINEL), ("messages", chunk_text)],
        )
        return CompiledNotify(outer, chunk, payload_mapping)

    # --- eviction ---------------------------------------------------------

    def _note_refs(self, sig: tuple, key: tuple, sub_keys: list[str]) -> None:
        self._by_sink.setdefault(sig, set()).add(key)
        refs = self._sink_refs.setdefault(sig, set())
        for sub_key in sub_keys:
            refs.add(sub_key)
            self._sub_sinks.setdefault(sub_key, set()).add(sig)

    def note_removed(self, sub_key: str) -> None:
        """A subscription ended (unsubscribe, expiry sweep, delivery failure,
        replayed removal): drop every template whose sink no other live
        subscription references."""
        for sig in self._sub_sinks.pop(sub_key, ()):  # noqa: B020
            refs = self._sink_refs.get(sig)
            if refs is None:
                continue
            refs.discard(sub_key)
            if refs:
                continue
            del self._sink_refs[sig]
            for key in self._by_sink.pop(sig, ()):
                self._templates.pop(key, None)

    def clear(self) -> None:
        """Drop everything (crash-recovery replay rebuilds the world)."""
        self._templates.clear()
        self._rejected.clear()
        self._by_sink.clear()
        self._sink_refs.clear()
        self._sub_sinks.clear()

    def __len__(self) -> int:
        return len(self._templates)
