"""Compiled-filter cache: parse each distinct filter expression once.

At 100k subscribers the Subscribe storm dominated by re-parsing the same
handful of XPath expressions (and topic expressions) once per subscription.
Both compiled forms are immutable after construction — :class:`repro.xmlkit.
xpath.XPath` keeps only its AST and namespace map, evaluation state lives in
a per-call context — so identical expressions can share one instance.

Keys capture everything that affects compilation: the expression text plus
the in-scope namespace bindings (sorted, so ``{"a": u, "b": v}`` and
``{"b": v, "a": u}`` share an entry) for XPath; ``(text, dialect URI)`` for
topic expressions.  Failed compilations are *not* cached — callers wrap them
in dialect-specific :class:`~repro.filters.base.FilterError` messages and a
bad expression is rejected at Subscribe time, never in the hot path.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Optional, TypeVar

from repro.xmlkit.xpath import XPath

T = TypeVar("T")


class FilterCompileStats:
    """Process-wide counters for the compiled-filter caches."""

    __slots__ = ("hits", "misses")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0

    def snapshot(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}


#: module-level singleton (benchmarks snapshot/reset around measured runs)
FILTER_COMPILE_STATS = FilterCompileStats()


class LRUCache:
    """A small LRU memo used by every compiled-filter cache."""

    __slots__ = ("capacity", "_entries")

    def __init__(self, capacity: int = 4096) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, object]" = OrderedDict()

    def get_or_build(self, key: tuple, build: Callable[[], T]) -> T:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            FILTER_COMPILE_STATS.hits += 1
            return entry  # type: ignore[return-value]
        value = build()  # exceptions propagate uncached
        FILTER_COMPILE_STATS.misses += 1
        self._entries[key] = value
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return value

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


_xpath_cache = LRUCache()


def compiled_xpath(
    expression: str, namespaces: Optional[dict[str, str]] = None
) -> XPath:
    """The shared compiled form of ``expression`` under ``namespaces``."""
    key = (expression, tuple(sorted((namespaces or {}).items())))
    return _xpath_cache.get_or_build(key, lambda: XPath(expression, namespaces))


def clear_caches() -> None:
    """Drop every compiled-filter cache (tests and benchmarks)."""
    from repro.filters import topics

    _xpath_cache.clear()
    if topics._topic_expression_cache is not None:
        topics._topic_expression_cache.clear()
