"""XPath message-content filters.

This is WS-Eventing's default (and only defined) filter dialect and
WS-Notification 1.3's MessageContent filter.  Per both specs, the expression
is evaluated against the notification message and its result is coerced to a
boolean.
"""

from __future__ import annotations

from typing import Optional

from repro.filters.base import Filter, FilterContext, FilterError
from repro.filters.compilecache import compiled_xpath
from repro.xmlkit.names import Namespaces
from repro.xmlkit.xpath import XPathError


class MessageContentFilter(Filter):
    """A content-based filter: an XPath expression over the payload."""

    dialect = Namespaces.DIALECT_XPATH10

    def __init__(self, expression: str, namespaces: Optional[dict[str, str]] = None) -> None:
        try:
            self._xpath = compiled_xpath(expression, namespaces)
        except XPathError as exc:
            raise FilterError(f"invalid XPath filter {expression!r}: {exc}") from exc
        self.expression = expression

    def matches(self, context: FilterContext) -> bool:
        try:
            return self._xpath.matches(context.payload)
        except XPathError as exc:
            raise FilterError(f"filter evaluation failed: {exc}") from exc

    def describe(self) -> str:
        return f"xpath({self.expression})"
