"""Filter dialects for event notification.

Table 3's "Filter" and "Filter language" rows are the heart of the paper's
evolution story: from *no filtering* (CORBA Event Service), to Trader
Constraint Language filter objects (CORBA Notification), to SQL92-subset
message selectors (JMS), to serviceDataName strings (OGSI), to topic
hierarchies plus content-based XPath (WS-Notification / WS-Eventing).  Every
one of those filter languages is implemented in this package:

- :mod:`repro.filters.base` -- the common ``Filter`` interface and the
  notification context it evaluates against.
- :mod:`repro.filters.topics` -- hierarchical topic spaces and the WS-Topics
  Simple/Concrete/Full expression dialects.
- :mod:`repro.filters.content` -- XPath message-content filters (WSE default
  dialect; WSN MessageContent filter).
- :mod:`repro.filters.producer` -- WSN ProducerProperties filters.
- :mod:`repro.filters.compilecache` -- shared compiled-expression caches
- :mod:`repro.filters.selector` -- the JMS SQL92-subset message selector
  (own lexer/parser/evaluator).
- :mod:`repro.filters.tcl` -- the CORBA Notification extended Trader
  Constraint Language subset.
"""

from repro.filters.base import AcceptAllFilter, AndFilter, Filter, FilterContext, FilterError
from repro.filters.content import MessageContentFilter
from repro.filters.producer import ProducerPropertiesFilter
from repro.filters.topics import (
    TopicDialect,
    TopicExpression,
    TopicFilter,
    TopicNamespace,
    TopicPath,
    TopicSubscriptionIndex,
    topic_expression_of,
)

__all__ = [
    "Filter",
    "FilterContext",
    "FilterError",
    "AcceptAllFilter",
    "AndFilter",
    "MessageContentFilter",
    "ProducerPropertiesFilter",
    "TopicNamespace",
    "TopicPath",
    "TopicSubscriptionIndex",
    "topic_expression_of",
    "TopicExpression",
    "TopicDialect",
    "TopicFilter",
]
