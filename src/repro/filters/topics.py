"""Hierarchical topic spaces and the WS-Topics expression dialects.

WS-Topics defines a forest of named topic trees.  A publisher tags each
notification with a *concrete* topic path (``root/child/leaf``); a subscriber
supplies a topic expression in one of three dialects:

- **Simple**: a single root topic name — matches that root topic only;
- **Concrete**: a full path — matches exactly that topic node;
- **Full**: paths with ``*`` (any one name at that level), ``//`` descendant
  wildcards (written ``//.`` for "this node and all its descendants" in the
  spec's syntax; we accept both ``//.`` and ``//``-separated forms) and
  ``|`` unions.

The paper notes topic-based filtering was *required* in WSN 1.0/1.2 and
became optional in 1.3 (Table 1), and that WS-Eventing has no topic notion
at all — a wrapped WSE message carries the topic in a SOAP *header* while
WSN carries it in the ``Notify`` body (message-format difference category 6).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator, Optional

from repro.filters.base import AcceptAllFilter, AndFilter, Filter, FilterContext, FilterError
from repro.xmlkit.names import Namespaces


class TopicDialect(Enum):
    SIMPLE = Namespaces.DIALECT_TOPIC_SIMPLE
    CONCRETE = Namespaces.DIALECT_TOPIC_CONCRETE
    FULL = Namespaces.DIALECT_TOPIC_FULL

    @property
    def uri(self) -> str:
        return self.value

    @classmethod
    def from_uri(cls, uri: str) -> "TopicDialect":
        for dialect in cls:
            if dialect.value == uri:
                return dialect
        raise FilterError(f"unknown topic dialect: {uri!r}")


@dataclass(frozen=True)
class TopicPath:
    """A concrete topic path: non-empty tuple of topic names."""

    parts: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.parts or any(not p or "/" in p or "*" in p for p in self.parts):
            raise FilterError(f"invalid topic path: {self.parts!r}")

    @classmethod
    def parse(cls, text: str) -> "TopicPath":
        text = text.strip()
        if not text:
            raise FilterError("empty topic path")
        return cls(tuple(part for part in text.split("/") if part))

    @property
    def root(self) -> str:
        return self.parts[0]

    def __str__(self) -> str:
        return "/".join(self.parts)


@dataclass
class TopicNode:
    name: str
    children: dict[str, "TopicNode"] = field(default_factory=dict)
    #: spec's final attribute: a final topic admits no child topics
    final: bool = False

    def walk(self, prefix: tuple[str, ...]) -> Iterator[tuple[str, ...]]:
        path = (*prefix, self.name)
        yield path
        for child in self.children.values():
            yield from child.walk(path)


class TopicNamespace:
    """A named topic space: a forest of topic trees.

    The namespace both *documents* the topics a producer supports (WSN
    producers advertise their topic set as a resource property) and
    *validates* published paths when ``fixed`` is set (the spec's
    fixed-topic-set marker).
    """

    def __init__(self, target_namespace: str = "", *, fixed: bool = False) -> None:
        self.target_namespace = target_namespace
        self.fixed = fixed
        self.roots: dict[str, TopicNode] = {}

    def add(self, path: str | TopicPath, *, final: bool = False) -> TopicPath:
        """Register a topic (and its ancestors)."""
        topic = TopicPath.parse(path) if isinstance(path, str) else path
        level = self.roots
        node: Optional[TopicNode] = None
        for part in topic.parts:
            if node is not None and node.final:
                raise FilterError(f"topic {node.name!r} is final; cannot add child {part!r}")
            node = level.setdefault(part, TopicNode(part))
            level = node.children
        assert node is not None
        node.final = final
        return topic

    def contains(self, path: str | TopicPath) -> bool:
        topic = TopicPath.parse(path) if isinstance(path, str) else path
        level = self.roots
        node: Optional[TopicNode] = None
        for part in topic.parts:
            node = level.get(part)
            if node is None:
                return False
            level = node.children
        return True

    def validate_publication(self, path: str | TopicPath) -> TopicPath:
        """Check a published topic; unknown topics are admitted (and grown)
        unless the namespace is fixed."""
        topic = TopicPath.parse(path) if isinstance(path, str) else path
        if self.contains(topic):
            return topic
        if self.fixed:
            raise FilterError(f"topic {topic} is not in the fixed topic set")
        return self.add(topic)

    def all_paths(self) -> list[str]:
        paths: list[str] = []
        for root in self.roots.values():
            paths.extend("/".join(p) for p in root.walk(()))
        return sorted(paths)

    def new_index(self) -> "TopicSubscriptionIndex":
        """A fresh subscription index over this topic space.

        Each producer/source keeps its own (subscription keys are only
        unique per endpoint), but the expressions it holds are interpreted
        against this namespace's topic forest.
        """
        return TopicSubscriptionIndex()


@dataclass(frozen=True)
class _Alternative:
    """One `|`-branch of a full topic expression, pre-split into segments."""

    segments: tuple[str, ...]  # each is a name, '*' or '' ('' marks a // gap)
    descendants_of_last: bool = False  # trailing //. : subtree included


class TopicExpression:
    """A compiled topic expression in one of the three dialects."""

    def __init__(self, text: str, dialect: TopicDialect = TopicDialect.CONCRETE) -> None:
        self.text = text.strip()
        self.dialect = dialect
        if not self.text:
            raise FilterError("empty topic expression")
        if dialect is TopicDialect.SIMPLE:
            if "/" in self.text or "*" in self.text or "|" in self.text:
                raise FilterError(
                    f"Simple dialect allows only a root topic name, got {self.text!r}"
                )
            self._alternatives = [_Alternative((self.text,))]
        elif dialect is TopicDialect.CONCRETE:
            if "*" in self.text or "|" in self.text:
                raise FilterError(
                    f"Concrete dialect allows no wildcards/unions, got {self.text!r}"
                )
            self._alternatives = [_Alternative(tuple(TopicPath.parse(self.text).parts))]
        else:
            self._alternatives = [
                self._compile_full(branch) for branch in self.text.split("|")
            ]

    @staticmethod
    def _compile_full(branch: str) -> _Alternative:
        branch = branch.strip()
        if not branch:
            raise FilterError("empty union branch in topic expression")
        descendants = False
        if branch.endswith("//.") or branch.endswith("//*"):
            descendants = True
            branch = branch[:-3].rstrip("/")
            if not branch:
                raise FilterError("'//.' needs a preceding path")
        segments: list[str] = []
        # '//' introduces a gap segment matching any number of levels
        for i, chunk in enumerate(branch.split("//")):
            if i > 0:
                segments.append("")
            for part in chunk.split("/"):
                if part:
                    segments.append(part)
        if not segments:
            raise FilterError(f"invalid topic expression branch: {branch!r}")
        return _Alternative(tuple(segments), descendants)

    # --- matching ----------------------------------------------------------

    def matches(self, path: str | TopicPath) -> bool:
        topic = TopicPath.parse(path) if isinstance(path, str) else path
        if self.dialect is TopicDialect.SIMPLE:
            # Simple expressions denote the root topic itself
            return len(topic.parts) == 1 and topic.parts[0] == self.text
        return any(self._match_alt(alt, topic.parts) for alt in self._alternatives)

    @staticmethod
    def _match_alt(alt: _Alternative, parts: tuple[str, ...]) -> bool:
        return _match_segments(alt.segments, parts, alt.descendants_of_last)

    @property
    def alternatives(self) -> list[_Alternative]:
        """The compiled ``|``-branches (read-only; the subscription index
        inserts each branch into its trie)."""
        return list(self._alternatives)

    def __str__(self) -> str:
        return self.text


def _match_segments(
    segments: tuple[str, ...], parts: tuple[str, ...], descendants: bool
) -> bool:
    """Match wildcard segments against a concrete path (recursive descent)."""
    if not segments:
        return not parts or descendants
    head, rest = segments[0], segments[1:]
    if head == "":  # '//' gap: skip zero or more levels
        return any(
            _match_segments(rest, parts[skip:], descendants)
            for skip in range(len(parts) + 1)
        )
    if not parts:
        return False
    if head != "*" and head != parts[0]:
        return False
    if not rest:
        return len(parts) == 1 or descendants
    return _match_segments(rest, parts[1:], descendants)


class _IndexNode:
    """One trie level of a :class:`TopicSubscriptionIndex`.

    Children are keyed by expression segment: a literal topic name, ``'*'``
    (any one name) or ``''`` (a ``//`` gap matching any number of levels) —
    the same alphabet :func:`_match_segments` walks.  ``entries`` marks the
    subscriptions whose expression *ends* here, with their trailing
    ``//.``-descendants flag.
    """

    __slots__ = ("children", "entries")

    def __init__(self) -> None:
        self.children: dict[str, _IndexNode] = {}
        self.entries: dict[str, bool] = {}


class TopicSubscriptionIndex:
    """Topic-expression trie mapping a published path to candidate keys.

    The fan-out fast path registers every subscription here: topic-filtered
    ones under their compiled expression branches, everything else (no topic
    constraint, or a filter the index cannot see through) in an always-
    candidate bucket.  :meth:`candidates` then returns exactly the
    subscriptions whose topic constraint admits the published path — in
    subscription insertion order, so delivery order (and therefore wire
    bytes) is identical to a linear scan over the subscription table.
    """

    def __init__(self) -> None:
        self._root = _IndexNode()
        self._seq: dict[str, int] = {}  # key -> insertion rank
        self._always: set[str] = set()
        self._terminals: dict[str, list[_IndexNode]] = {}
        self._counter = itertools.count()
        self._trie_entries = 0

    def add(self, key: str, expression: Optional[TopicExpression]) -> None:
        """Register ``key``; ``expression=None`` means always-candidate."""
        if key in self._seq:
            self.discard(key)
        self._seq[key] = next(self._counter)
        if expression is None:
            self._always.add(key)
            return
        terminals: list[_IndexNode] = []
        for alt in expression.alternatives:
            node = self._root
            for segment in alt.segments:
                node = node.children.setdefault(segment, _IndexNode())
            # two branches ending on one node: descendants is the superset
            node.entries[key] = alt.descendants_of_last or node.entries.get(key, False)
            terminals.append(node)
            self._trie_entries += 1
        self._terminals[key] = terminals

    def discard(self, key: str) -> None:
        if self._seq.pop(key, None) is None:
            return
        self._always.discard(key)
        for node in self._terminals.pop(key, ()):
            node.entries.pop(key, None)
            self._trie_entries -= 1

    def candidates(self, topic: Optional[str | TopicPath]) -> list[str]:
        """Keys whose topic constraint admits ``topic`` (insertion order)."""
        found: set[str] = set(self._always)
        if topic is not None and self._trie_entries:
            path = TopicPath.parse(topic) if isinstance(topic, str) else topic
            self._collect(self._root, path.parts, found)
        return sorted(found, key=self._seq.__getitem__)

    def _collect(
        self, node: _IndexNode, parts: tuple[str, ...], found: set[str]
    ) -> None:
        # terminal test mirrors _match_segments: consumed path, or descendants
        for key, descendants in node.entries.items():
            if descendants or not parts:
                found.add(key)
        gap = node.children.get("")
        if gap is not None:  # '//': skip zero or more levels
            for skip in range(len(parts) + 1):
                self._collect(gap, parts[skip:], found)
        if parts:
            literal = node.children.get(parts[0])
            if literal is not None:
                self._collect(literal, parts[1:], found)
            star = node.children.get("*")
            if star is not None:
                self._collect(star, parts[1:], found)

    def __len__(self) -> int:
        return len(self._seq)

    def __contains__(self, key: str) -> bool:
        return key in self._seq


def topic_expression_of(filter: Filter) -> Optional[TopicExpression]:
    """The topic constraint the index can extract from a subscription filter.

    ``None`` means the filter has no (visible) topic constraint, so the
    subscription must be a candidate for every publication.  An ``AndFilter``
    is constrained by its first topic part (the remaining parts still run as
    the residual filter on the candidate set).
    """
    if isinstance(filter, TopicFilter):
        return filter.expression
    if isinstance(filter, AndFilter):
        for part in filter.parts:
            if isinstance(part, TopicFilter):
                return part.expression
    return None


#: compiled topic expressions are immutable after __init__ — identical
#: (text, dialect) pairs across subscriptions share one instance (the cache
#: lives here, not in compilecache, to avoid a circular import; stats and
#: capacity policy are compilecache's)
_topic_expression_cache = None  # populated lazily below


def compiled_topic_expression(text: str, dialect_uri: str) -> TopicExpression:
    """The shared compiled form of a topic expression."""
    global _topic_expression_cache
    if _topic_expression_cache is None:
        from repro.filters.compilecache import LRUCache

        _topic_expression_cache = LRUCache()
    return _topic_expression_cache.get_or_build(
        (text, dialect_uri),
        lambda: TopicExpression(text, TopicDialect.from_uri(dialect_uri)),
    )


class TopicFilter(Filter):
    """A subscription filter selecting by topic expression."""

    def __init__(self, expression: TopicExpression) -> None:
        self.expression = expression
        self.dialect = expression.dialect.uri

    @classmethod
    def parse(cls, text: str, dialect_uri: str) -> "TopicFilter":
        return cls(compiled_topic_expression(text, dialect_uri))

    def matches(self, context: FilterContext) -> bool:
        if context.topic is None:
            return False
        return self.expression.matches(context.topic)

    def describe(self) -> str:
        return f"topic({self.expression})"
