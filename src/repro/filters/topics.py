"""Hierarchical topic spaces and the WS-Topics expression dialects.

WS-Topics defines a forest of named topic trees.  A publisher tags each
notification with a *concrete* topic path (``root/child/leaf``); a subscriber
supplies a topic expression in one of three dialects:

- **Simple**: a single root topic name — matches that root topic only;
- **Concrete**: a full path — matches exactly that topic node;
- **Full**: paths with ``*`` (any one name at that level), ``//`` descendant
  wildcards (written ``//.`` for "this node and all its descendants" in the
  spec's syntax; we accept both ``//.`` and ``//``-separated forms) and
  ``|`` unions.

The paper notes topic-based filtering was *required* in WSN 1.0/1.2 and
became optional in 1.3 (Table 1), and that WS-Eventing has no topic notion
at all — a wrapped WSE message carries the topic in a SOAP *header* while
WSN carries it in the ``Notify`` body (message-format difference category 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator, Optional

from repro.filters.base import Filter, FilterContext, FilterError
from repro.xmlkit.names import Namespaces


class TopicDialect(Enum):
    SIMPLE = Namespaces.DIALECT_TOPIC_SIMPLE
    CONCRETE = Namespaces.DIALECT_TOPIC_CONCRETE
    FULL = Namespaces.DIALECT_TOPIC_FULL

    @property
    def uri(self) -> str:
        return self.value

    @classmethod
    def from_uri(cls, uri: str) -> "TopicDialect":
        for dialect in cls:
            if dialect.value == uri:
                return dialect
        raise FilterError(f"unknown topic dialect: {uri!r}")


@dataclass(frozen=True)
class TopicPath:
    """A concrete topic path: non-empty tuple of topic names."""

    parts: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.parts or any(not p or "/" in p or "*" in p for p in self.parts):
            raise FilterError(f"invalid topic path: {self.parts!r}")

    @classmethod
    def parse(cls, text: str) -> "TopicPath":
        text = text.strip()
        if not text:
            raise FilterError("empty topic path")
        return cls(tuple(part for part in text.split("/") if part))

    @property
    def root(self) -> str:
        return self.parts[0]

    def __str__(self) -> str:
        return "/".join(self.parts)


@dataclass
class TopicNode:
    name: str
    children: dict[str, "TopicNode"] = field(default_factory=dict)
    #: spec's final attribute: a final topic admits no child topics
    final: bool = False

    def walk(self, prefix: tuple[str, ...]) -> Iterator[tuple[str, ...]]:
        path = (*prefix, self.name)
        yield path
        for child in self.children.values():
            yield from child.walk(path)


class TopicNamespace:
    """A named topic space: a forest of topic trees.

    The namespace both *documents* the topics a producer supports (WSN
    producers advertise their topic set as a resource property) and
    *validates* published paths when ``fixed`` is set (the spec's
    fixed-topic-set marker).
    """

    def __init__(self, target_namespace: str = "", *, fixed: bool = False) -> None:
        self.target_namespace = target_namespace
        self.fixed = fixed
        self.roots: dict[str, TopicNode] = {}

    def add(self, path: str | TopicPath, *, final: bool = False) -> TopicPath:
        """Register a topic (and its ancestors)."""
        topic = TopicPath.parse(path) if isinstance(path, str) else path
        level = self.roots
        node: Optional[TopicNode] = None
        for part in topic.parts:
            if node is not None and node.final:
                raise FilterError(f"topic {node.name!r} is final; cannot add child {part!r}")
            node = level.setdefault(part, TopicNode(part))
            level = node.children
        assert node is not None
        node.final = final
        return topic

    def contains(self, path: str | TopicPath) -> bool:
        topic = TopicPath.parse(path) if isinstance(path, str) else path
        level = self.roots
        node: Optional[TopicNode] = None
        for part in topic.parts:
            node = level.get(part)
            if node is None:
                return False
            level = node.children
        return True

    def validate_publication(self, path: str | TopicPath) -> TopicPath:
        """Check a published topic; unknown topics are admitted (and grown)
        unless the namespace is fixed."""
        topic = TopicPath.parse(path) if isinstance(path, str) else path
        if self.contains(topic):
            return topic
        if self.fixed:
            raise FilterError(f"topic {topic} is not in the fixed topic set")
        return self.add(topic)

    def all_paths(self) -> list[str]:
        paths: list[str] = []
        for root in self.roots.values():
            paths.extend("/".join(p) for p in root.walk(()))
        return sorted(paths)


@dataclass(frozen=True)
class _Alternative:
    """One `|`-branch of a full topic expression, pre-split into segments."""

    segments: tuple[str, ...]  # each is a name, '*' or '' ('' marks a // gap)
    descendants_of_last: bool = False  # trailing //. : subtree included


class TopicExpression:
    """A compiled topic expression in one of the three dialects."""

    def __init__(self, text: str, dialect: TopicDialect = TopicDialect.CONCRETE) -> None:
        self.text = text.strip()
        self.dialect = dialect
        if not self.text:
            raise FilterError("empty topic expression")
        if dialect is TopicDialect.SIMPLE:
            if "/" in self.text or "*" in self.text or "|" in self.text:
                raise FilterError(
                    f"Simple dialect allows only a root topic name, got {self.text!r}"
                )
            self._alternatives = [_Alternative((self.text,))]
        elif dialect is TopicDialect.CONCRETE:
            if "*" in self.text or "|" in self.text:
                raise FilterError(
                    f"Concrete dialect allows no wildcards/unions, got {self.text!r}"
                )
            self._alternatives = [_Alternative(tuple(TopicPath.parse(self.text).parts))]
        else:
            self._alternatives = [
                self._compile_full(branch) for branch in self.text.split("|")
            ]

    @staticmethod
    def _compile_full(branch: str) -> _Alternative:
        branch = branch.strip()
        if not branch:
            raise FilterError("empty union branch in topic expression")
        descendants = False
        if branch.endswith("//.") or branch.endswith("//*"):
            descendants = True
            branch = branch[:-3].rstrip("/")
            if not branch:
                raise FilterError("'//.' needs a preceding path")
        segments: list[str] = []
        # '//' introduces a gap segment matching any number of levels
        for i, chunk in enumerate(branch.split("//")):
            if i > 0:
                segments.append("")
            for part in chunk.split("/"):
                if part:
                    segments.append(part)
        if not segments:
            raise FilterError(f"invalid topic expression branch: {branch!r}")
        return _Alternative(tuple(segments), descendants)

    # --- matching ----------------------------------------------------------

    def matches(self, path: str | TopicPath) -> bool:
        topic = TopicPath.parse(path) if isinstance(path, str) else path
        if self.dialect is TopicDialect.SIMPLE:
            # Simple expressions denote the root topic itself
            return len(topic.parts) == 1 and topic.parts[0] == self.text
        return any(self._match_alt(alt, topic.parts) for alt in self._alternatives)

    @staticmethod
    def _match_alt(alt: _Alternative, parts: tuple[str, ...]) -> bool:
        return _match_segments(alt.segments, parts, alt.descendants_of_last)

    def __str__(self) -> str:
        return self.text


def _match_segments(
    segments: tuple[str, ...], parts: tuple[str, ...], descendants: bool
) -> bool:
    """Match wildcard segments against a concrete path (recursive descent)."""
    if not segments:
        return not parts or descendants
    head, rest = segments[0], segments[1:]
    if head == "":  # '//' gap: skip zero or more levels
        return any(
            _match_segments(rest, parts[skip:], descendants)
            for skip in range(len(parts) + 1)
        )
    if not parts:
        return False
    if head != "*" and head != parts[0]:
        return False
    if not rest:
        return len(parts) == 1 or descendants
    return _match_segments(rest, parts[1:], descendants)


class TopicFilter(Filter):
    """A subscription filter selecting by topic expression."""

    def __init__(self, expression: TopicExpression) -> None:
        self.expression = expression
        self.dialect = expression.dialect.uri

    @classmethod
    def parse(cls, text: str, dialect_uri: str) -> "TopicFilter":
        return cls(TopicExpression(text, TopicDialect.from_uri(dialect_uri)))

    def matches(self, context: FilterContext) -> bool:
        if context.topic is None:
            return False
        return self.expression.matches(context.topic)

    def describe(self) -> str:
        return f"topic({self.expression})"
