"""The common filter interface."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.xmlkit.element import XElem


class FilterError(Exception):
    """A filter expression is invalid (bad dialect, bad syntax, ...)."""


@dataclass
class FilterContext:
    """Everything a WS filter may inspect about one notification.

    - ``payload``: the notification message content (an XML element);
    - ``topic``: the topic path string the producer published on, if any;
    - ``producer_properties``: resource properties of the producer, for
      WSN ProducerProperties filters.
    """

    payload: XElem
    topic: Optional[str] = None
    producer_properties: dict[str, str] = field(default_factory=dict)


class Filter:
    """A predicate over notifications."""

    #: dialect URI, where the spec defines one
    dialect: str = ""

    def matches(self, context: FilterContext) -> bool:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class AcceptAllFilter(Filter):
    """No filtering: the CORBA Event Service behaviour (every consumer gets
    every event on the channel) and the default when a subscription carries
    no filter element."""

    def matches(self, context: FilterContext) -> bool:
        return True

    def describe(self) -> str:
        return "accept-all"


class AndFilter(Filter):
    """Conjunction of filters.

    WS-Notification allows a subscription to combine TopicExpression,
    ProducerProperties and MessageContent filters — "a subscriber can use any
    or all of these filters" — with AND semantics.  WS-Eventing allows at
    most one filter, a difference Table 3 records.
    """

    def __init__(self, parts: Sequence[Filter]) -> None:
        self.parts = list(parts)

    def matches(self, context: FilterContext) -> bool:
        return all(part.matches(context) for part in self.parts)

    def describe(self) -> str:
        return " AND ".join(part.describe() for part in self.parts) or "accept-all"
