"""JMS message selectors: the SQL92 conditional-expression subset.

Table 3's JMS column lists "message selector on header fields / a subset of
the SQL92 conditional expression syntax".  This module implements that
language: comparison, arithmetic, ``AND``/``OR``/``NOT`` with SQL
three-valued logic, ``BETWEEN``, ``IN``, ``LIKE`` (with ``ESCAPE``) and
``IS [NOT] NULL``, evaluated over a message's header fields and properties.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Mapping, Optional, Union

from repro.filters.base import FilterError

Value = Union[str, float, int, bool, None]

_KEYWORDS = {"and", "or", "not", "between", "in", "like", "escape", "is", "null", "true", "false"}

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
      (?P<number>\d+\.\d*|\.\d+|\d+)
    | (?P<name>[A-Za-z_$][A-Za-z0-9_$.]*)
    | (?P<string>'(?:[^']|'')*')
    | (?P<op><>|<=|>=|[=<>+\-*/(),])
    )
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str  # number name string op keyword end
    value: str


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            if text[position:].strip() == "":
                break
            raise FilterError(f"bad selector syntax at {text[position:position+10]!r}")
        position = match.end()
        if match.lastgroup == "number":
            tokens.append(_Token("number", match.group("number")))
        elif match.lastgroup == "name":
            name = match.group("name")
            if name.lower() in _KEYWORDS:
                tokens.append(_Token("keyword", name.lower()))
            else:
                tokens.append(_Token("name", name))
        elif match.lastgroup == "string":
            raw = match.group("string")[1:-1].replace("''", "'")
            tokens.append(_Token("string", raw))
        else:
            tokens.append(_Token("op", match.group("op")))
    tokens.append(_Token("end", ""))
    return tokens


# --- AST -----------------------------------------------------------------

# The AST is nested tuples: ("lit", v) ("ident", name) ("not", x) ("and", a, b)
# ("or", a, b) ("cmp", op, a, b) ("arith", op, a, b) ("neg", x)
# ("isnull", x, negated) ("between", x, lo, hi, negated)
# ("in", x, [values], negated) ("like", x, pattern, escape, negated)


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.pos = 0

    def peek(self) -> _Token:
        return self.tokens[self.pos]

    def advance(self) -> _Token:
        token = self.tokens[self.pos]
        if token.kind != "end":
            self.pos += 1
        return token

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[_Token]:
        token = self.peek()
        if token.kind == kind and (value is None or token.value == value):
            return self.advance()
        return None

    def expect(self, kind: str, value: Optional[str] = None) -> _Token:
        token = self.accept(kind, value)
        if token is None:
            raise FilterError(
                f"selector syntax error: expected {value or kind}, got "
                f"{self.peek().value or 'end'!r} in {self.text!r}"
            )
        return token

    def parse(self):
        expr = self.parse_or()
        if self.peek().kind != "end":
            raise FilterError(f"trailing input in selector: {self.peek().value!r}")
        return expr

    def parse_or(self):
        left = self.parse_and()
        while self.accept("keyword", "or"):
            left = ("or", left, self.parse_and())
        return left

    def parse_and(self):
        left = self.parse_not()
        while self.accept("keyword", "and"):
            left = ("and", left, self.parse_not())
        return left

    def parse_not(self):
        if self.accept("keyword", "not"):
            return ("not", self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self):
        left = self.parse_arith()
        token = self.peek()
        if token.kind == "op" and token.value in ("=", "<>", "<", "<=", ">", ">="):
            self.advance()
            return ("cmp", token.value, left, self.parse_arith())
        if token.kind == "keyword" and token.value == "is":
            self.advance()
            negated = bool(self.accept("keyword", "not"))
            self.expect("keyword", "null")
            return ("isnull", left, negated)
        negated = False
        if token.kind == "keyword" and token.value == "not":
            nxt = self.tokens[self.pos + 1]
            if nxt.kind == "keyword" and nxt.value in ("between", "in", "like"):
                self.advance()
                negated = True
                token = self.peek()
        if token.kind == "keyword" and token.value == "between":
            self.advance()
            low = self.parse_arith()
            self.expect("keyword", "and")
            high = self.parse_arith()
            return ("between", left, low, high, negated)
        if token.kind == "keyword" and token.value == "in":
            self.advance()
            self.expect("op", "(")
            values = [self.expect("string").value]
            while self.accept("op", ","):
                values.append(self.expect("string").value)
            self.expect("op", ")")
            return ("in", left, values, negated)
        if token.kind == "keyword" and token.value == "like":
            self.advance()
            pattern = self.expect("string").value
            escape = None
            if self.accept("keyword", "escape"):
                escape = self.expect("string").value
                if len(escape) != 1:
                    raise FilterError("LIKE escape must be a single character")
            return ("like", left, pattern, escape, negated)
        return left

    def parse_arith(self):
        left = self.parse_term()
        while True:
            token = self.peek()
            if token.kind == "op" and token.value in ("+", "-"):
                self.advance()
                left = ("arith", token.value, left, self.parse_term())
            else:
                return left

    def parse_term(self):
        left = self.parse_factor()
        while True:
            token = self.peek()
            if token.kind == "op" and token.value in ("*", "/"):
                self.advance()
                left = ("arith", token.value, left, self.parse_factor())
            else:
                return left

    def parse_factor(self):
        if self.accept("op", "-"):
            return ("neg", self.parse_factor())
        if self.accept("op", "+"):
            return self.parse_factor()
        return self.parse_primary()

    def parse_primary(self):
        token = self.peek()
        if token.kind == "number":
            self.advance()
            text = token.value
            return ("lit", float(text) if "." in text else int(text))
        if token.kind == "string":
            self.advance()
            return ("lit", token.value)
        if token.kind == "keyword" and token.value in ("true", "false"):
            self.advance()
            return ("lit", token.value == "true")
        if token.kind == "name":
            self.advance()
            return ("ident", token.value)
        if self.accept("op", "("):
            expr = self.parse_or()
            self.expect("op", ")")
            return expr
        raise FilterError(f"selector syntax error at {token.value or 'end'!r}")


# --- evaluation (SQL three-valued logic: True / False / None=unknown) --------


def _and3(a, b):
    if a is False or b is False:
        return False
    if a is None or b is None:
        return None
    return True


def _or3(a, b):
    if a is True or b is True:
        return True
    if a is None or b is None:
        return None
    return False


def _not3(a):
    return None if a is None else (not a)


def _like_to_regex(pattern: str, escape: Optional[str]) -> re.Pattern:
    out = []
    i = 0
    while i < len(pattern):
        ch = pattern[i]
        if escape is not None and ch == escape and i + 1 < len(pattern):
            out.append(re.escape(pattern[i + 1]))
            i += 2
            continue
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
        i += 1
    return re.compile("^" + "".join(out) + "$", re.DOTALL)


class MessageSelector:
    """A compiled JMS message selector."""

    def __init__(self, expression: str) -> None:
        self.expression = expression.strip()
        if not self.expression:
            raise FilterError("empty selector")
        self._ast = _Parser(self.expression).parse()

    def matches(self, fields: Mapping[str, Value]) -> bool:
        """True iff the selector evaluates to TRUE (unknown/false both fail)."""
        return self._evaluate(self._ast, fields) is True

    def _evaluate(self, node, fields: Mapping[str, Value]):
        kind = node[0]
        if kind == "lit":
            return node[1]
        if kind == "ident":
            return fields.get(node[1])
        if kind == "not":
            return _not3(self._as_bool(self._evaluate(node[1], fields)))
        if kind == "and":
            return _and3(
                self._as_bool(self._evaluate(node[1], fields)),
                self._as_bool(self._evaluate(node[2], fields)),
            )
        if kind == "or":
            return _or3(
                self._as_bool(self._evaluate(node[1], fields)),
                self._as_bool(self._evaluate(node[2], fields)),
            )
        if kind == "cmp":
            return self._compare(node[1], self._evaluate(node[2], fields), self._evaluate(node[3], fields))
        if kind == "arith":
            left = self._evaluate(node[2], fields)
            right = self._evaluate(node[3], fields)
            if not isinstance(left, (int, float)) or isinstance(left, bool):
                return None
            if not isinstance(right, (int, float)) or isinstance(right, bool):
                return None
            op = node[1]
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            return left / right if right != 0 else None
        if kind == "neg":
            value = self._evaluate(node[1], fields)
            return -value if isinstance(value, (int, float)) and not isinstance(value, bool) else None
        if kind == "isnull":
            result = self._evaluate(node[1], fields) is None
            return (not result) if node[2] else result
        if kind == "between":
            value = self._evaluate(node[1], fields)
            low = self._evaluate(node[2], fields)
            high = self._evaluate(node[3], fields)
            base = _and3(self._compare(">=", value, low), self._compare("<=", value, high))
            return _not3(base) if node[4] else base
        if kind == "in":
            value = self._evaluate(node[1], fields)
            if value is None:
                return None
            result = isinstance(value, str) and value in node[2]
            return (not result) if node[3] else result
        if kind == "like":
            value = self._evaluate(node[1], fields)
            if value is None:
                return None
            if not isinstance(value, str):
                return False
            result = bool(_like_to_regex(node[2], node[3]).match(value))
            return (not result) if node[4] else result
        raise FilterError(f"unhandled selector node {kind!r}")

    @staticmethod
    def _as_bool(value):
        if value is None or isinstance(value, bool):
            return value
        return None  # non-boolean operands of AND/OR are unknown

    @staticmethod
    def _compare(op: str, left: Value, right: Value):
        if left is None or right is None:
            return None
        numeric = isinstance(left, (int, float)) and not isinstance(left, bool) and isinstance(
            right, (int, float)
        ) and not isinstance(right, bool)
        if op in ("=", "<>"):
            if isinstance(left, bool) or isinstance(right, bool):
                if not (isinstance(left, bool) and isinstance(right, bool)):
                    return False if op == "=" else True
                equal = left == right
            elif numeric:
                equal = float(left) == float(right)
            elif isinstance(left, str) and isinstance(right, str):
                equal = left == right
            else:
                equal = False
            return equal if op == "=" else not equal
        if not numeric:
            return None  # ordering only defined on numerics in JMS selectors
        left_num, right_num = float(left), float(right)
        if op == "<":
            return left_num < right_num
        if op == "<=":
            return left_num <= right_num
        if op == ">":
            return left_num > right_num
        return left_num >= right_num

    def __repr__(self) -> str:
        return f"MessageSelector({self.expression!r})"
