"""The CORBA Notification Service filter language.

The CORBA Notification Service (Table 3, second column) filters structured
events with constraint expressions "whose syntax follows the extended Trader
Constraint Language".  This module implements the subset real notification
filters used:

- boolean connectives ``and`` / ``or`` / ``not``;
- comparisons ``==`` ``!=`` ``<`` ``<=`` ``>`` ``>=``;
- arithmetic ``+ - * /``;
- ``exist <component>`` (presence test);
- ``<string> in <component>`` (sequence membership);
- ``<component> ~ <string>`` (substring match);
- event components: ``$type_name``/``$event_name``/``$domain_name``
  shorthands, ``$variable`` lookup in filterable data, and dotted paths like
  ``$.header.fixed_header.event_type.type_name``.

Constraints evaluate over the structured-event representation of
:mod:`repro.baselines.corba.events` (plain nested mappings here, so the
language is independently testable).
"""

from __future__ import annotations

import re
from typing import Any, Mapping

from repro.filters.base import FilterError

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
      (?P<number>\d+\.\d*|\.\d+|\d+)
    | (?P<dollar>\$[A-Za-z0-9_.]*)
    | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
    | (?P<string>'(?:[^'\\]|\\.)*')
    | (?P<op>==|!=|<=|>=|[<>+\-*/()~])
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {"and", "or", "not", "exist", "in", "true", "false"}


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            if text[position:].strip() == "":
                break
            raise FilterError(f"bad TCL syntax at {text[position:position+10]!r}")
        position = match.end()
        kind = match.lastgroup
        value = match.group(kind)
        if kind == "name":
            lowered = value.lower()
            if lowered in _KEYWORDS:
                tokens.append(("keyword", lowered))
            else:
                raise FilterError(f"bare identifier {value!r}; TCL components start with '$'")
        elif kind == "string":
            tokens.append(("string", value[1:-1].replace("\\'", "'").replace("\\\\", "\\")))
        else:
            tokens.append((kind, value))
    tokens.append(("end", ""))
    return tokens


class TclConstraint:
    """A compiled extended-TCL constraint."""

    def __init__(self, expression: str) -> None:
        self.expression = expression.strip()
        if not self.expression:
            raise FilterError("empty TCL constraint")
        self._tokens = _tokenize(self.expression)
        self._pos = 0
        self._ast = self._parse_or()
        if self._peek()[0] != "end":
            raise FilterError(f"trailing TCL input: {self._peek()[1]!r}")

    # --- parser ------------------------------------------------------------

    def _peek(self):
        return self._tokens[self._pos]

    def _advance(self):
        token = self._tokens[self._pos]
        if token[0] != "end":
            self._pos += 1
        return token

    def _accept(self, kind, value=None):
        token = self._peek()
        if token[0] == kind and (value is None or token[1] == value):
            return self._advance()
        return None

    def _expect(self, kind, value=None):
        token = self._accept(kind, value)
        if token is None:
            raise FilterError(f"TCL: expected {value or kind}, got {self._peek()[1]!r}")
        return token

    def _parse_or(self):
        left = self._parse_and()
        while self._accept("keyword", "or"):
            left = ("or", left, self._parse_and())
        return left

    def _parse_and(self):
        left = self._parse_not()
        while self._accept("keyword", "and"):
            left = ("and", left, self._parse_not())
        return left

    def _parse_not(self):
        if self._accept("keyword", "not"):
            return ("not", self._parse_not())
        if self._accept("keyword", "exist"):
            token = self._expect("dollar")
            return ("exist", token[1])
        return self._parse_comparison()

    def _parse_comparison(self):
        left = self._parse_arith()
        token = self._peek()
        if token[0] == "op" and token[1] in ("==", "!=", "<", "<=", ">", ">="):
            self._advance()
            return ("cmp", token[1], left, self._parse_arith())
        if token == ("op", "~"):
            self._advance()
            return ("substr", left, self._parse_arith())
        if token == ("keyword", "in"):
            self._advance()
            return ("in", left, self._parse_arith())
        return left

    def _parse_arith(self):
        left = self._parse_term()
        while True:
            token = self._peek()
            if token[0] == "op" and token[1] in ("+", "-"):
                self._advance()
                left = ("arith", token[1], left, self._parse_term())
            else:
                return left

    def _parse_term(self):
        left = self._parse_factor()
        while True:
            token = self._peek()
            if token[0] == "op" and token[1] in ("*", "/"):
                self._advance()
                left = ("arith", token[1], left, self._parse_factor())
            else:
                return left

    def _parse_factor(self):
        if self._accept("op", "-"):
            return ("neg", self._parse_factor())
        token = self._peek()
        if token[0] == "number":
            self._advance()
            return ("lit", float(token[1]) if "." in token[1] else int(token[1]))
        if token[0] == "string":
            self._advance()
            return ("lit", token[1])
        if token[0] == "keyword" and token[1] in ("true", "false"):
            self._advance()
            return ("lit", token[1] == "true")
        if token[0] == "dollar":
            self._advance()
            return ("component", token[1])
        if self._accept("op", "("):
            expr = self._parse_or()
            self._expect("op", ")")
            return expr
        raise FilterError(f"TCL syntax error at {token[1] or 'end'!r}")

    # --- evaluation ------------------------------------------------------------

    def matches(self, event: Mapping[str, Any]) -> bool:
        """Evaluate against a structured event (nested mappings)."""
        try:
            return bool(self._evaluate(self._ast, event))
        except _ComponentMissing:
            # TCL semantics: a constraint referring to absent data is false
            return False

    def _evaluate(self, node, event):
        kind = node[0]
        if kind == "lit":
            return node[1]
        if kind == "component":
            return _resolve(node[1], event)
        if kind == "exist":
            try:
                _resolve(node[1], event)
                return True
            except _ComponentMissing:
                return False
        if kind == "not":
            return not self._evaluate(node[1], event)
        if kind == "and":
            return self._evaluate(node[1], event) and self._evaluate(node[2], event)
        if kind == "or":
            return self._evaluate(node[1], event) or self._evaluate(node[2], event)
        if kind == "neg":
            return -self._as_number(self._evaluate(node[1], event))
        if kind == "arith":
            left = self._as_number(self._evaluate(node[2], event))
            right = self._as_number(self._evaluate(node[3], event))
            op = node[1]
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if right == 0:
                raise _ComponentMissing("division by zero")
            return left / right
        if kind == "cmp":
            left = self._evaluate(node[2], event)
            right = self._evaluate(node[3], event)
            return _compare(node[1], left, right)
        if kind == "substr":
            left = self._evaluate(node[1], event)
            right = self._evaluate(node[2], event)
            if not isinstance(left, str) or not isinstance(right, str):
                return False
            return right in left
        if kind == "in":
            left = self._evaluate(node[1], event)
            right = self._evaluate(node[2], event)
            if isinstance(right, (list, tuple)):
                return left in right
            return False
        raise FilterError(f"unhandled TCL node {kind!r}")

    @staticmethod
    def _as_number(value):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise _ComponentMissing(f"non-numeric operand {value!r}")
        return value

    def __repr__(self) -> str:
        return f"TclConstraint({self.expression!r})"


class _ComponentMissing(Exception):
    pass


_SHORTHANDS = {
    "$type_name": ("header", "fixed_header", "event_type", "type_name"),
    "$domain_name": ("header", "fixed_header", "event_type", "domain_name"),
    "$event_name": ("header", "fixed_header", "event_name"),
}


def _resolve(component: str, event: Mapping[str, Any]) -> Any:
    if component in _SHORTHANDS:
        return _walk(event, _SHORTHANDS[component])
    if component.startswith("$."):
        path = tuple(part for part in component[2:].split(".") if part)
        if not path:
            raise FilterError("empty component path '$.'")
        return _walk(event, path)
    if component == "$":
        return event
    # generic $name: search filterable data, then variable header
    name = component[1:]
    for section in ("filterable_data", "variable_header"):
        mapping = event.get(section)
        if isinstance(mapping, Mapping) and name in mapping:
            return mapping[name]
    raise _ComponentMissing(component)


def _walk(event: Mapping[str, Any], path: tuple[str, ...]) -> Any:
    current: Any = event
    for part in path:
        if not isinstance(current, Mapping) or part not in current:
            raise _ComponentMissing(".".join(path))
        current = current[part]
    return current


def _compare(op: str, left: Any, right: Any) -> bool:
    if isinstance(left, bool) or isinstance(right, bool):
        if op == "==":
            return left is right if isinstance(left, bool) and isinstance(right, bool) else False
        if op == "!=":
            return not _compare("==", left, right)
        raise _ComponentMissing("ordering undefined for booleans")
    numeric = isinstance(left, (int, float)) and isinstance(right, (int, float))
    stringy = isinstance(left, str) and isinstance(right, str)
    if not numeric and not stringy:
        if op == "==":
            return False
        if op == "!=":
            return True
        raise _ComponentMissing("type mismatch in ordering comparison")
    if op == "==":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    return left >= right
