"""WSN ProducerProperties filters.

WS-Notification's third filter type selects on properties of the *producer*
rather than the message: the expression (XPath dialect) is evaluated over the
producer's resource-properties document.  The paper points out WS-Eventing
has no equivalent ("WS-Eventing does not specify a way to filter messages
using the ProducerProperties of publishers").
"""

from __future__ import annotations

from typing import Optional

from repro.filters.base import Filter, FilterContext, FilterError
from repro.filters.compilecache import compiled_xpath
from repro.xmlkit.element import XElem, text_element
from repro.xmlkit.names import Namespaces, QName
from repro.xmlkit.xpath import XPathError

_DOC_ROOT = QName(Namespaces.WSRF_RP, "ProducerProperties")


def properties_document(properties: dict[str, str]) -> XElem:
    """Render a producer's property map as the document filters see.

    Property names become (namespace-less) element names so filter
    expressions can say ``boolean(/*/priority > 3)`` or ``/*/cluster='A'``.
    """
    document = XElem(_DOC_ROOT)
    for name, value in sorted(properties.items()):
        document.append(text_element(QName("", name), value))
    return document


class ProducerPropertiesFilter(Filter):
    """Filter over the producer's properties, XPath 1.0 dialect."""

    dialect = Namespaces.DIALECT_XPATH10

    def __init__(self, expression: str, namespaces: Optional[dict[str, str]] = None) -> None:
        try:
            self._xpath = compiled_xpath(expression, namespaces)
        except XPathError as exc:
            raise FilterError(f"invalid producer-properties filter {expression!r}: {exc}") from exc
        self.expression = expression

    def matches(self, context: FilterContext) -> bool:
        document = properties_document(context.producer_properties)
        try:
            return self._xpath.matches(document)
        except XPathError as exc:
            raise FilterError(f"filter evaluation failed: {exc}") from exc

    def describe(self) -> str:
        return f"producer-properties({self.expression})"
