"""Previous-generation event notification systems (Table 3 comparators).

Working single-process simulations of the four pre-WS specifications the
paper compares against:

- :mod:`repro.baselines.corba` -- CORBA Event Service (3/1995) and
  Notification Service (6/1997) over an ORB with CDR binary marshalling.
- :mod:`repro.baselines.jms` -- the Java Message Service (point-to-point
  queues and pub/sub topics, five message types, SQL92-subset selectors,
  priority/persistence/durability/transactions).
- :mod:`repro.baselines.ogsi` -- OGSI notification (service data elements,
  NotificationSource/Sink, soft-state lifetime) — the intermediary step
  toward WS-based notification.
"""
