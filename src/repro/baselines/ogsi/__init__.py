"""OGSI notification: the intermediary step toward WS-based notification.

Per the paper's section VI.C: a ``NotificationSink`` subscribes to a
``NotificationSource`` naming the *service data element* it cares about (a
plain string — Table 3's simplest filter); the source pushes an XML document
at the sink whenever that service data changes; subscriptions are themselves
Grid services with soft-state lifetimes managed by
``requestTerminationAfter`` / ``requestTerminationBefore`` / ``destroy``.
Payloads are XML over HTTP — already Web-services-shaped, but OGSI's WSDL
extensions made ordinary WS tooling unusable, which is why WSRF +
WS-Notification replaced it.
"""

from repro.baselines.ogsi.grid_service import (
    GridService,
    NotificationSink,
    NotificationSource,
    OgsiError,
    ServiceDataElement,
)

__all__ = [
    "GridService",
    "ServiceDataElement",
    "NotificationSource",
    "NotificationSink",
    "OgsiError",
]
