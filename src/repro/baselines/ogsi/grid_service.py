"""OGSI Grid services, service data, and the notification port types."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.soap.envelope import SoapEnvelope, SoapVersion
from repro.soap.fault import FaultCode, SoapFault
from repro.transport.endpoint import SoapClient, SoapEndpoint
from repro.transport.network import NetworkError, SimulatedNetwork
from repro.wsa.epr import EndpointReference
from repro.wsa.headers import MessageHeaders, apply_headers
from repro.wsa.versions import WsaVersion
from repro.xmlkit.element import XElem, text_element
from repro.xmlkit.names import QName

OGSI_NS = "http://www.gridforum.org/namespaces/2003/03/OGSI"


def _q(local: str) -> QName:
    return QName(OGSI_NS, local)


def _action(local: str) -> str:
    return f"{OGSI_NS}/{local}"


class OgsiError(SoapFault):
    def __init__(self, reason: str) -> None:
        super().__init__(FaultCode.SENDER, reason, subcode=_q("Fault"))


@dataclass
class ServiceDataElement:
    """One named, typed piece of a Grid service's state."""

    name: str
    value: XElem
    mutability: str = "mutable"  # static | constant | mutable


@dataclass
class _OgsiSubscription:
    key: str
    service_data_name: str
    sink: EndpointReference
    termination_time: Optional[float]  # absolute; OGSI has no durations

    def alive(self, now: float) -> bool:
        return self.termination_time is None or now < self.termination_time


class GridService:
    """Base Grid service: service data + explicit lifetime."""

    def __init__(
        self,
        network: SimulatedNetwork,
        address: str,
    ) -> None:
        self.network = network
        self.clock = network.clock
        self.endpoint = SoapEndpoint(network, address)
        self.service_data: dict[str, ServiceDataElement] = {}
        self.termination_time: Optional[float] = None
        self.destroyed = False
        self.endpoint.on_action(_action("findServiceData"), self._handle_find)
        self.endpoint.on_action(_action("requestTerminationAfter"), self._handle_term_after)
        self.endpoint.on_action(_action("requestTerminationBefore"), self._handle_term_before)
        self.endpoint.on_action(_action("destroy"), self._handle_destroy)

    @property
    def address(self) -> str:
        return self.endpoint.address

    def epr(self) -> EndpointReference:
        return EndpointReference(self.address)

    # --- service data ------------------------------------------------------------

    def declare_service_data(self, name: str, value: XElem, mutability: str = "mutable") -> None:
        self.service_data[name] = ServiceDataElement(name, value, mutability)

    def set_service_data(self, name: str, value: XElem) -> None:
        sde = self.service_data.get(name)
        if sde is None:
            raise OgsiError(f"no service data element {name!r}")
        if sde.mutability != "mutable":
            raise OgsiError(f"service data {name!r} is {sde.mutability}")
        sde.value = value

    def _handle_find(self, envelope: SoapEnvelope, headers: MessageHeaders):
        name = envelope.body_element().full_text().strip()
        sde = self.service_data.get(name)
        if sde is None:
            raise OgsiError(f"no service data element {name!r}")
        body = XElem(_q("findServiceDataResponse"))
        body.append(sde.value.copy())
        return self._reply(headers, _action("findServiceDataResponse"), body)

    # --- lifetime ----------------------------------------------------------------------

    def _handle_term_after(self, envelope: SoapEnvelope, headers: MessageHeaders):
        from repro.util.xstime import parse_datetime

        requested = parse_datetime(envelope.body_element().full_text().strip())
        if self.termination_time is None or requested > self.termination_time:
            self.termination_time = requested
        return self._ack(headers, "requestTerminationAfterResponse")

    def _handle_term_before(self, envelope: SoapEnvelope, headers: MessageHeaders):
        from repro.util.xstime import parse_datetime

        requested = parse_datetime(envelope.body_element().full_text().strip())
        if self.termination_time is None or requested < self.termination_time:
            self.termination_time = requested
        return self._ack(headers, "requestTerminationBeforeResponse")

    def _handle_destroy(self, envelope: SoapEnvelope, headers: MessageHeaders):
        self.destroyed = True
        self.endpoint.close()
        return None

    def _ack(self, headers: MessageHeaders, local: str) -> SoapEnvelope:
        return self._reply(headers, _action(local), XElem(_q(local)))

    def _reply(self, request_headers: MessageHeaders, action: str, body: XElem) -> SoapEnvelope:
        reply = SoapEnvelope(SoapVersion.V11)
        wsa = WsaVersion.V2003_03  # OGSI is WSA 2003/03 era
        apply_headers(reply, MessageHeaders.reply(request_headers, action, wsa), wsa)
        reply.add_body(body)
        return reply


class NotificationSource(GridService):
    """A Grid service whose service-data changes notify subscribed sinks."""

    def __init__(self, network: SimulatedNetwork, address: str) -> None:
        super().__init__(network, address)
        self._counter = itertools.count(1)
        self._subscriptions: dict[str, _OgsiSubscription] = {}
        self._client = SoapClient(network, wsa_version=WsaVersion.V2003_03)
        self.endpoint.on_action(_action("subscribe"), self._handle_subscribe)

    # --- subscribe (by serviceDataName only — the OGSI 'filter') ----------------------

    def _handle_subscribe(self, envelope: SoapEnvelope, headers: MessageHeaders):
        body = envelope.body_element()
        name_elem = body.find(_q("serviceDataName"))
        sink_elem = body.find(_q("sink"))
        if name_elem is None or sink_elem is None:
            raise OgsiError("subscribe needs serviceDataName and sink")
        name = name_elem.full_text().strip()
        if name not in self.service_data:
            raise OgsiError(f"no service data element {name!r}")
        sink = EndpointReference.from_element(sink_elem, WsaVersion.V2003_03)
        term_elem = body.find(_q("expirationTime"))
        termination: Optional[float] = None
        if term_elem is not None and term_elem.full_text().strip():
            from repro.util.xstime import parse_datetime

            termination = parse_datetime(term_elem.full_text().strip())
        subscription = self.subscribe(name, sink, termination)
        response = XElem(_q("subscribeResponse"))
        response.append(text_element(_q("subscriptionHandle"), subscription.key))
        return self._reply(headers, _action("subscribeResponse"), response)

    def subscribe(
        self,
        service_data_name: str,
        sink: EndpointReference,
        termination_time: Optional[float] = None,
    ) -> _OgsiSubscription:
        key = f"ogsi-sub-{next(self._counter)}"
        subscription = _OgsiSubscription(key, service_data_name, sink, termination_time)
        self._subscriptions[key] = subscription
        return subscription

    def unsubscribe(self, key: str) -> None:
        if self._subscriptions.pop(key, None) is None:
            raise OgsiError(f"unknown subscription {key!r}")

    def live_subscriptions(self) -> list[_OgsiSubscription]:
        now = self.clock.now()
        return [s for s in self._subscriptions.values() if s.alive(now)]

    # --- change notification --------------------------------------------------------------

    def set_service_data(self, name: str, value: XElem) -> int:
        """Update an SDE and push the new value to matching sinks."""
        super().set_service_data(name, value)
        now = self.clock.now()
        # soft state: expired subscriptions are swept on publication
        self._subscriptions = {
            k: s for k, s in self._subscriptions.items() if s.alive(now)
        }
        delivered = 0
        for subscription in list(self._subscriptions.values()):
            if subscription.service_data_name != name:
                continue
            message = XElem(_q("deliverNotification"))
            message.append(text_element(_q("serviceDataName"), name))
            message.append(value.copy())
            try:
                self._client.call(
                    subscription.sink,
                    _action("deliverNotification"),
                    [message],
                    expect_reply=False,
                )
                delivered += 1
            except (NetworkError, SoapFault):
                del self._subscriptions[subscription.key]
        return delivered


class NotificationSink:
    """Receives deliverNotification pushes."""

    def __init__(self, network: SimulatedNetwork, address: str) -> None:
        self.endpoint = SoapEndpoint(network, address)
        self.received: list[tuple[str, XElem]] = []
        self.endpoint.on_action(_action("deliverNotification"), self._handle)

    @property
    def address(self) -> str:
        return self.endpoint.address

    def epr(self) -> EndpointReference:
        return EndpointReference(self.address)

    def close(self) -> None:
        self.endpoint.close()

    def _handle(self, envelope: SoapEnvelope, headers: MessageHeaders):
        body = envelope.body_element()
        name_elem = body.find(_q("serviceDataName"))
        name = name_elem.full_text().strip() if name_elem is not None else ""
        payload = next(
            (e for e in body.elements() if e.name != _q("serviceDataName")), None
        )
        if payload is not None:
            self.received.append((name, payload.copy()))
        return None
