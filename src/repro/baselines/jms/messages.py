"""JMS message types and headers."""

from __future__ import annotations

import itertools
import pickle
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional


class JmsError(Exception):
    """JMSException equivalent."""


class DeliveryMode(Enum):
    NON_PERSISTENT = 1
    PERSISTENT = 2


_id_counter = itertools.count(1)


@dataclass
class JmsMessage:
    """Base message: the JMS-defined header fields plus user properties.

    "JMS messages have well defined structure in the header field for
    efficient filtering" — selectors evaluate over :meth:`selector_fields`.
    """

    message_id: str = field(default_factory=lambda: f"ID:msg-{next(_id_counter)}")
    destination: Optional[str] = None
    delivery_mode: DeliveryMode = DeliveryMode.PERSISTENT
    priority: int = 4  # JMS default
    timestamp: float = 0.0
    expiration: float = 0.0  # 0 = never
    correlation_id: Optional[str] = None
    jms_type: Optional[str] = None
    redelivered: bool = False
    properties: dict[str, Any] = field(default_factory=dict)

    def set_property(self, name: str, value: Any) -> None:
        if not isinstance(value, (bool, int, float, str)):
            raise JmsError(f"property {name!r} has unsupported type {type(value).__name__}")
        self.properties[name] = value

    def get_property(self, name: str) -> Any:
        return self.properties.get(name)

    def selector_fields(self) -> dict[str, Any]:
        """Headers + properties, named as selectors reference them."""
        fields: dict[str, Any] = dict(self.properties)
        fields.update(
            JMSMessageID=self.message_id,
            JMSPriority=self.priority,
            JMSTimestamp=self.timestamp,
            JMSCorrelationID=self.correlation_id,
            JMSType=self.jms_type,
            JMSDeliveryMode=(
                "PERSISTENT" if self.delivery_mode is DeliveryMode.PERSISTENT else "NON_PERSISTENT"
            ),
            JMSRedelivered=self.redelivered,
        )
        return fields

    def is_expired(self, now: float) -> bool:
        return self.expiration > 0 and now >= self.expiration

    def body_copy(self) -> "JmsMessage":
        """A shallow header copy (bodies are immutable once sent here)."""
        import copy

        return copy.deepcopy(self)


@dataclass
class TextMessage(JmsMessage):
    text: str = ""


@dataclass
class BytesMessage(JmsMessage):
    data: bytes = b""

    def __post_init__(self) -> None:
        if not isinstance(self.data, (bytes, bytearray)):
            raise JmsError("BytesMessage body must be bytes")
        self.data = bytes(self.data)


@dataclass
class MapMessage(JmsMessage):
    body: dict[str, Any] = field(default_factory=dict)

    def set_value(self, name: str, value: Any) -> None:
        if not isinstance(value, (bool, int, float, str, bytes)):
            raise JmsError(f"MapMessage value for {name!r} has unsupported type")
        self.body[name] = value

    def get_value(self, name: str) -> Any:
        return self.body.get(name)


@dataclass
class StreamMessage(JmsMessage):
    items: list[Any] = field(default_factory=list)

    def write(self, value: Any) -> None:
        if not isinstance(value, (bool, int, float, str, bytes)):
            raise JmsError("StreamMessage items must be primitives")
        self.items.append(value)

    def read(self) -> Any:
        if not self.items:
            raise JmsError("MessageEOFException: stream exhausted")
        return self.items.pop(0)


@dataclass
class ObjectMessage(JmsMessage):
    """Carries a serializable object (pickled, standing in for Java
    serialization — the platform coupling Table 3 notes)."""

    _payload: bytes = b""

    def set_object(self, value: Any) -> None:
        try:
            self._payload = pickle.dumps(value)
        except Exception as exc:  # unpicklable
            raise JmsError(f"object not serializable: {exc}") from exc

    def get_object(self) -> Any:
        if not self._payload:
            return None
        return pickle.loads(self._payload)
