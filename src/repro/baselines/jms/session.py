"""JMS connections, sessions, producers and consumers."""

from __future__ import annotations

from typing import Optional, Union

from repro.baselines.jms.messages import DeliveryMode, JmsError, JmsMessage
from repro.baselines.jms.provider import JmsProvider, Queue, Topic, _DurableSubscription
from repro.filters.selector import MessageSelector

Destination = Union[Queue, Topic]


class Connection:
    """A client connection; ``client_id`` scopes durable subscriptions."""

    def __init__(self, provider: JmsProvider, client_id: str, *, platform: str = "java") -> None:
        provider.check_platform(platform)
        self.provider = provider
        self.client_id = client_id
        self.started = False
        self.closed = False
        self._sessions: list[Session] = []

    def create_session(self, *, transacted: bool = False) -> "Session":
        if self.closed:
            raise JmsError("connection closed")
        session = Session(self, transacted=transacted)
        self._sessions.append(session)
        return session

    def start(self) -> None:
        self.started = True

    def stop(self) -> None:
        self.started = False

    def close(self) -> None:
        self.closed = True
        for session in self._sessions:
            session.close()


class MessageProducer:
    def __init__(self, session: "Session", destination: Destination) -> None:
        self.session = session
        self.destination = destination

    def send(
        self,
        message: JmsMessage,
        *,
        priority: Optional[int] = None,
        delivery_mode: Optional[DeliveryMode] = None,
        time_to_live: float = 0.0,
    ) -> None:
        if self.session.closed:
            raise JmsError("session closed")
        clock = self.session.connection.provider.clock
        if priority is not None:
            if not 0 <= priority <= 9:
                raise JmsError("JMS priority must be 0..9")
            message.priority = priority
        if delivery_mode is not None:
            message.delivery_mode = delivery_mode
        message.timestamp = clock.now()
        message.expiration = clock.now() + time_to_live if time_to_live > 0 else 0.0
        message.destination = self.destination.name
        if self.session.transacted:
            self.session._pending_sends.append((self.destination, message))
        else:
            self.session._dispatch(self.destination, message)


class MessageConsumer:
    def __init__(
        self,
        session: "Session",
        destination: Destination,
        selector: Optional[str] = None,
        *,
        durable: Optional[_DurableSubscription] = None,
    ) -> None:
        self.session = session
        self.destination = destination
        self.selector = MessageSelector(selector) if selector else None
        self._durable = durable
        self._buffer: list[JmsMessage] = []
        self.closed = False
        if isinstance(destination, Topic):
            if durable is not None:
                durable.active_listener = self._buffer.append
                # deliver any backlog accumulated while inactive
                backlog, durable.backlog = durable.backlog, []
                self._buffer.extend(backlog)
            else:
                from repro.baselines.jms.provider import _ActiveSubscriber

                self._subscription = _ActiveSubscriber(self._buffer.append, self.selector)
                destination._subscribers.append(self._subscription)

    def receive(self) -> Optional[JmsMessage]:
        """Non-blocking receive (receiveNoWait in JMS terms)."""
        if self.closed:
            raise JmsError("consumer closed")
        if not self.session.connection.started:
            return None  # deliveries only flow on started connections
        clock = self.session.connection.provider.clock
        if isinstance(self.destination, Queue):
            message = self.destination.take(self.selector, clock.now())
        else:
            message = None
            while self._buffer:
                candidate = self._buffer.pop(0)
                if not candidate.is_expired(clock.now()):
                    message = candidate
                    break
        if message is not None and self.session.transacted:
            self.session._pending_receives.append((self.destination, message))
        return message

    def close(self) -> None:
        self.closed = True
        if isinstance(self.destination, Topic):
            if self._durable is not None:
                self._durable.active_listener = None  # goes dormant, keeps backlog
                self._durable.backlog.extend(self._buffer)
                self._buffer.clear()
            elif hasattr(self, "_subscription"):
                try:
                    self.destination._subscribers.remove(self._subscription)
                except ValueError as exc:
                    # double-close: the subscriber is already detached; the
                    # skip is recorded, never silently dropped
                    self.session.connection.provider.instrumentation.count(
                        "obs.swallowed_errors_total",
                        site="jms.consumer.close",
                        kind=type(exc).__name__,
                    )


class Session:
    """A unit of work; when transacted, sends/receives commit atomically."""

    def __init__(self, connection: Connection, *, transacted: bool = False) -> None:
        self.connection = connection
        self.transacted = transacted
        self.closed = False
        self._pending_sends: list[tuple[Destination, JmsMessage]] = []
        self._pending_receives: list[tuple[Destination, JmsMessage]] = []

    # --- factories ---------------------------------------------------------------

    def create_producer(self, destination: Destination) -> MessageProducer:
        self._check_open()
        return MessageProducer(self, destination)

    def create_consumer(
        self, destination: Destination, selector: Optional[str] = None
    ) -> MessageConsumer:
        self._check_open()
        return MessageConsumer(self, destination, selector)

    def create_durable_subscriber(
        self, topic: Topic, name: str, selector: Optional[str] = None
    ) -> MessageConsumer:
        self._check_open()
        durable = self.connection.provider.durable_subscription(
            topic,
            self.connection.client_id,
            name,
            MessageSelector(selector) if selector else None,
        )
        return MessageConsumer(self, topic, selector, durable=durable)

    def unsubscribe(self, topic: Topic, name: str) -> None:
        self.connection.provider.unsubscribe_durable(
            topic, self.connection.client_id, name
        )

    # --- transactions -----------------------------------------------------------------

    def commit(self) -> None:
        self._check_transacted()
        for destination, message in self._pending_sends:
            self._dispatch(destination, message)
        self._pending_sends.clear()
        self._pending_receives.clear()  # consumed messages are now final

    def rollback(self) -> None:
        self._check_transacted()
        self._pending_sends.clear()
        # received messages go back, marked redelivered
        for destination, message in self._pending_receives:
            message.redelivered = True
            if isinstance(destination, Queue):
                destination.put(message)
        self._pending_receives.clear()

    def _check_transacted(self) -> None:
        self._check_open()
        if not self.transacted:
            raise JmsError("session is not transacted")

    def _check_open(self) -> None:
        if self.closed:
            raise JmsError("session closed")

    def _dispatch(self, destination: Destination, message: JmsMessage) -> None:
        clock = self.connection.provider.clock
        if isinstance(destination, Queue):
            destination.put(message)
        else:
            destination.publish(message, clock.now())

    def close(self) -> None:
        self.closed = True
