"""A Java Message Service (JMS 1.1) provider simulation.

Table 3's JMS column, implemented: both messaging styles (point-to-point
queues, publish/subscribe topics), the five message types (Text/Bytes/Map/
Stream/Object), selectors over header fields using the SQL92 subset
(:mod:`repro.filters.selector`), and the QoS criteria — priority,
persistence, durable subscriptions, transactions, message order.

The paper's noted limitation — "it only works on Java platforms" — is
modelled by the provider's ``platform`` tag: connections declare a platform
and the provider only accepts ``"java"``.
"""

from repro.baselines.jms.messages import (
    BytesMessage,
    DeliveryMode,
    JmsError,
    JmsMessage,
    MapMessage,
    ObjectMessage,
    StreamMessage,
    TextMessage,
)
from repro.baselines.jms.provider import JmsProvider, Queue, Topic
from repro.baselines.jms.session import Connection, MessageConsumer, MessageProducer, Session

__all__ = [
    "JmsProvider",
    "Queue",
    "Topic",
    "Connection",
    "Session",
    "MessageProducer",
    "MessageConsumer",
    "JmsMessage",
    "TextMessage",
    "BytesMessage",
    "MapMessage",
    "StreamMessage",
    "ObjectMessage",
    "DeliveryMode",
    "JmsError",
]
