"""The JMS provider: destinations, queues, topics, durable state."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.baselines.jms.messages import DeliveryMode, JmsError, JmsMessage
from repro.filters.selector import MessageSelector
from repro.transport.clock import VirtualClock


def _insert_by_priority(queue: list[JmsMessage], message: JmsMessage) -> None:
    """Priority order, FIFO within a priority (JMS 'message order' QoS)."""
    index = len(queue)
    while index > 0 and queue[index - 1].priority < message.priority:
        index -= 1
    queue.insert(index, message)


@dataclass
class Queue:
    """Point-to-point destination: each message goes to exactly one consumer."""

    name: str
    _messages: list[JmsMessage] = field(default_factory=list)

    def put(self, message: JmsMessage) -> None:
        _insert_by_priority(self._messages, message)

    def take(self, selector: Optional[MessageSelector], now: float) -> Optional[JmsMessage]:
        for index, message in enumerate(self._messages):
            if message.is_expired(now):
                continue
            if selector is None or selector.matches(message.selector_fields()):
                return self._messages.pop(index)
        return None

    def purge_expired(self, now: float) -> int:
        before = len(self._messages)
        self._messages = [m for m in self._messages if not m.is_expired(now)]
        return before - len(self._messages)

    def depth(self) -> int:
        return len(self._messages)


@dataclass
class _DurableSubscription:
    client_id: str
    name: str
    selector: Optional[MessageSelector]
    backlog: list[JmsMessage] = field(default_factory=list)
    active_listener: Optional[Callable[[JmsMessage], None]] = None


@dataclass
class _ActiveSubscriber:
    listener: Callable[[JmsMessage], None]
    selector: Optional[MessageSelector]


@dataclass
class Topic:
    """Publish/subscribe destination."""

    name: str
    _subscribers: list[_ActiveSubscriber] = field(default_factory=list)
    _durables: dict[tuple[str, str], _DurableSubscription] = field(default_factory=dict)

    def publish(self, message: JmsMessage, now: float) -> int:
        delivered = 0
        if message.is_expired(now):
            return 0
        for subscriber in list(self._subscribers):
            if subscriber.selector is None or subscriber.selector.matches(
                message.selector_fields()
            ):
                subscriber.listener(message.body_copy())
                delivered += 1
        for durable in self._durables.values():
            if durable.selector is not None and not durable.selector.matches(
                message.selector_fields()
            ):
                continue
            if durable.active_listener is not None:
                durable.active_listener(message.body_copy())
                delivered += 1
            else:
                _insert_by_priority(durable.backlog, message.body_copy())
        return delivered


class JmsProvider:
    """The message broker all connections attach to."""

    def __init__(self, clock: Optional[VirtualClock] = None) -> None:
        from repro.obs.instrument import NULL_INSTRUMENTATION

        self.clock = clock if clock is not None else VirtualClock()
        #: swappable observability hook (the JMS baseline has no
        #: SimulatedNetwork to carry one); Instrumentation-compatible
        self.instrumentation = NULL_INSTRUMENTATION
        self._queues: dict[str, Queue] = {}
        self._topics: dict[str, Topic] = {}

    # --- platform gate (Table 3: "only works on Java platforms") ----------------

    SUPPORTED_PLATFORM = "java"

    def check_platform(self, platform: str) -> None:
        if platform != self.SUPPORTED_PLATFORM:
            raise JmsError(
                f"platform {platform!r} unsupported: JMS is a Java-platform API"
            )

    # --- destinations --------------------------------------------------------------

    def queue(self, name: str) -> Queue:
        return self._queues.setdefault(name, Queue(name))

    def topic(self, name: str) -> Topic:
        return self._topics.setdefault(name, Topic(name))

    # --- durable subscription registry ------------------------------------------------

    def durable_subscription(
        self,
        topic: Topic,
        client_id: str,
        name: str,
        selector: Optional[MessageSelector],
    ) -> _DurableSubscription:
        key = (client_id, name)
        existing = topic._durables.get(key)
        if existing is None:
            existing = _DurableSubscription(client_id, name, selector)
            topic._durables[key] = existing
        return existing

    def unsubscribe_durable(self, topic: Topic, client_id: str, name: str) -> None:
        if topic._durables.pop((client_id, name), None) is None:
            raise JmsError(f"no durable subscription {name!r} for client {client_id!r}")

    # --- failure injection ------------------------------------------------------------

    def crash_and_recover(self) -> None:
        """Simulated broker crash: non-persistent messages are lost,
        persistent ones survive (the Persistence QoS criterion)."""
        for queue in self._queues.values():
            queue._messages = [
                m for m in queue._messages if m.delivery_mode is DeliveryMode.PERSISTENT
            ]
        for topic in self._topics.values():
            topic._subscribers.clear()  # active (non-durable) subscribers drop
            for durable in topic._durables.values():
                durable.active_listener = None
                durable.backlog = [
                    m for m in durable.backlog if m.delivery_mode is DeliveryMode.PERSISTENT
                ]
