"""Common Data Representation (CDR) marshalling.

Table 3's CORBA columns note "the message payload is in a binary format
known as Common Data Representation (CDR)".  This module implements the CDR
core: big-endian primitives with natural alignment, length-prefixed strings,
sequences, and a tagged ``any``-style encoding for dynamically typed values
(the generic events of the Event Service and the fields of structured
events).
"""

from __future__ import annotations

import struct
from typing import Any


class CdrError(ValueError):
    """Malformed CDR data or an unmarshallable value."""


# type tags for the dynamic (any) encoding
_TAG_NULL = 0
_TAG_BOOLEAN = 1
_TAG_LONG = 2
_TAG_DOUBLE = 3
_TAG_STRING = 4
_TAG_SEQUENCE = 5
_TAG_STRUCT = 6


class CdrEncoder:
    """Marshals values into a big-endian, naturally aligned CDR buffer."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    def data(self) -> bytes:
        return bytes(self._buffer)

    def _align(self, boundary: int) -> None:
        remainder = len(self._buffer) % boundary
        if remainder:
            self._buffer.extend(b"\x00" * (boundary - remainder))

    # --- primitives -----------------------------------------------------------

    def put_octet(self, value: int) -> "CdrEncoder":
        self._buffer.append(value & 0xFF)
        return self

    def put_boolean(self, value: bool) -> "CdrEncoder":
        return self.put_octet(1 if value else 0)

    def put_short(self, value: int) -> "CdrEncoder":
        self._align(2)
        self._buffer.extend(struct.pack(">h", value))
        return self

    def put_ushort(self, value: int) -> "CdrEncoder":
        self._align(2)
        self._buffer.extend(struct.pack(">H", value))
        return self

    def put_long(self, value: int) -> "CdrEncoder":
        self._align(4)
        try:
            self._buffer.extend(struct.pack(">i", value))
        except struct.error as exc:
            raise CdrError(f"long out of range: {value}") from exc
        return self

    def put_ulong(self, value: int) -> "CdrEncoder":
        self._align(4)
        try:
            self._buffer.extend(struct.pack(">I", value))
        except struct.error as exc:
            raise CdrError(f"ulong out of range: {value}") from exc
        return self

    def put_double(self, value: float) -> "CdrEncoder":
        self._align(8)
        self._buffer.extend(struct.pack(">d", value))
        return self

    def put_string(self, value: str) -> "CdrEncoder":
        encoded = value.encode("utf-8") + b"\x00"
        self.put_ulong(len(encoded))
        self._buffer.extend(encoded)
        return self

    # --- dynamic values ------------------------------------------------------------

    def put_any(self, value: Any) -> "CdrEncoder":
        if value is None:
            self.put_octet(_TAG_NULL)
        elif isinstance(value, bool):
            self.put_octet(_TAG_BOOLEAN)
            self.put_boolean(value)
        elif isinstance(value, int):
            self.put_octet(_TAG_LONG)
            self.put_long(value)
        elif isinstance(value, float):
            self.put_octet(_TAG_DOUBLE)
            self.put_double(value)
        elif isinstance(value, str):
            self.put_octet(_TAG_STRING)
            self.put_string(value)
        elif isinstance(value, (list, tuple)):
            self.put_octet(_TAG_SEQUENCE)
            self.put_ulong(len(value))
            for item in value:
                self.put_any(item)
        elif isinstance(value, dict):
            self.put_octet(_TAG_STRUCT)
            self.put_ulong(len(value))
            for key, item in value.items():
                if not isinstance(key, str):
                    raise CdrError(f"struct keys must be strings, got {type(key).__name__}")
                self.put_string(key)
                self.put_any(item)
        else:
            raise CdrError(f"cannot marshal {type(value).__name__}")
        return self


class CdrDecoder:
    """Unmarshals a CDR buffer produced by :class:`CdrEncoder`."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._offset = 0

    def _align(self, boundary: int) -> None:
        remainder = self._offset % boundary
        if remainder:
            self._offset += boundary - remainder

    def _take(self, count: int) -> bytes:
        if self._offset + count > len(self._data):
            raise CdrError("truncated CDR buffer")
        chunk = self._data[self._offset : self._offset + count]
        self._offset += count
        return chunk

    def at_end(self) -> bool:
        return self._offset >= len(self._data)

    # --- primitives -----------------------------------------------------------

    def get_octet(self) -> int:
        return self._take(1)[0]

    def get_boolean(self) -> bool:
        return self.get_octet() != 0

    def get_short(self) -> int:
        self._align(2)
        return struct.unpack(">h", self._take(2))[0]

    def get_ushort(self) -> int:
        self._align(2)
        return struct.unpack(">H", self._take(2))[0]

    def get_long(self) -> int:
        self._align(4)
        return struct.unpack(">i", self._take(4))[0]

    def get_ulong(self) -> int:
        self._align(4)
        return struct.unpack(">I", self._take(4))[0]

    def get_double(self) -> float:
        self._align(8)
        return struct.unpack(">d", self._take(8))[0]

    def get_string(self) -> str:
        length = self.get_ulong()
        raw = self._take(length)
        if not raw.endswith(b"\x00"):
            raise CdrError("string not NUL-terminated")
        return raw[:-1].decode("utf-8")

    # --- dynamic values ------------------------------------------------------------

    def get_any(self) -> Any:
        tag = self.get_octet()
        if tag == _TAG_NULL:
            return None
        if tag == _TAG_BOOLEAN:
            return self.get_boolean()
        if tag == _TAG_LONG:
            return self.get_long()
        if tag == _TAG_DOUBLE:
            return self.get_double()
        if tag == _TAG_STRING:
            return self.get_string()
        if tag == _TAG_SEQUENCE:
            return [self.get_any() for _ in range(self.get_ulong())]
        if tag == _TAG_STRUCT:
            count = self.get_ulong()
            return {self.get_string(): self.get_any() for _ in range(count)}
        raise CdrError(f"unknown CDR any tag {tag}")


def encode_value(value: Any) -> bytes:
    return CdrEncoder().put_any(value).data()


def decode_value(data: bytes) -> Any:
    return CdrDecoder(data).get_any()
