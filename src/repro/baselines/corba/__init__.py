"""CORBA Event Service and Notification Service simulations.

The stack mirrors the layering Table 3 describes: requests and events are
marshalled to **CDR** binary (:mod:`repro.baselines.corba.cdr`), framed with
a GIOP-style header and routed by an **ORB** (:mod:`repro.baselines.corba.orb`)
— RPC transport, intranet scale.  On top sit:

- the **Event Service** (:mod:`repro.baselines.corba.event_service`):
  event channels with push/pull proxies, *no filtering, no QoS* — every
  consumer receives every event on the channel;
- the **Notification Service**
  (:mod:`repro.baselines.corba.notification_service`): structured events,
  filter objects evaluating extended-TCL constraints, and the 13 QoS
  properties.
"""

from repro.baselines.corba.cdr import CdrDecoder, CdrEncoder, CdrError
from repro.baselines.corba.orb import CorbaError, ObjectReference, Orb
from repro.baselines.corba.events import StructuredEvent
from repro.baselines.corba.event_service import EventChannel
from repro.baselines.corba.notification_service import NotificationChannel

__all__ = [
    "CdrEncoder",
    "CdrDecoder",
    "CdrError",
    "Orb",
    "ObjectReference",
    "CorbaError",
    "StructuredEvent",
    "EventChannel",
    "NotificationChannel",
]
