"""The CORBA Notification Service (6/1997): filtering + QoS over channels.

"The CORBA Notification service specification is an enhancement to the CORBA
event service specification.  It adds supports for event filtering and
Quality of Service (QoS)." (paper section VI.A).  This module adds, over the
Event Service:

- **structured events** as the routed unit;
- **filter objects** holding extended-TCL constraints, attachable to admins
  (OR across an admin's filters) and proxies;
- the **13 QoS properties**, with Priority/FIFO ordering, bounded
  per-consumer queues with discard policies, and batched (sequence) push
  delivery driven by MaximumBatchSize.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from repro.baselines.corba.events import StructuredEvent
from repro.baselines.corba.orb import CorbaError, ObjectReference, Orb
from repro.filters.base import FilterError
from repro.filters.tcl import TclConstraint
from repro.qos.properties import DiscardPolicy, OrderPolicy, QosProfile


class FilterObject:
    """A Notification Service filter: a disjunction of TCL constraints."""

    def __init__(self) -> None:
        self._counter = itertools.count(1)
        self._constraints: dict[int, TclConstraint] = {}

    def add_constraint(self, expression: str) -> int:
        try:
            constraint = TclConstraint(expression)
        except FilterError as exc:
            raise CorbaError(f"InvalidConstraint: {exc}") from exc
        constraint_id = next(self._counter)
        self._constraints[constraint_id] = constraint
        return constraint_id

    def remove_constraint(self, constraint_id: int) -> None:
        if constraint_id not in self._constraints:
            raise CorbaError(f"ConstraintNotFound: {constraint_id}")
        del self._constraints[constraint_id]

    def get_constraints(self) -> dict[int, str]:
        return {cid: c.expression for cid, c in self._constraints.items()}

    def match_structured(self, event: StructuredEvent) -> bool:
        if not self._constraints:
            return True  # an empty filter matches everything
        mapping = event.to_mapping()
        return any(c.matches(mapping) for c in self._constraints.values())


class _FilterableMixin:
    def __init__(self) -> None:
        self._filters: dict[int, FilterObject] = {}
        self._filter_counter = itertools.count(1)

    def add_filter(self, filter_object: FilterObject) -> int:
        filter_id = next(self._filter_counter)
        self._filters[filter_id] = filter_object
        return filter_id

    def remove_filter(self, filter_id: int) -> None:
        if filter_id not in self._filters:
            raise CorbaError(f"FilterNotFound: {filter_id}")
        del self._filters[filter_id]

    def remove_all_filters(self) -> None:
        self._filters.clear()

    def get_all_filters(self) -> list[int]:
        return list(self._filters)

    def _passes(self, event: StructuredEvent) -> bool:
        if not self._filters:
            return True
        return any(f.match_structured(event) for f in self._filters.values())


class StructuredProxyPushSupplier(_FilterableMixin):
    """Delivers matching structured events to a connected push consumer,
    honouring the consumer's QoS (priority ordering, batching, bounds)."""

    def __init__(self, channel: "NotificationChannel", qos: QosProfile) -> None:
        super().__init__()
        self._channel = channel
        self.qos = qos
        self._consumer: Optional[ObjectReference] = None
        self._batch: list[StructuredEvent] = []
        self._suspended_buffer: list[StructuredEvent] = []
        self.connected = False
        self.suspended = False

    def connect_structured_push_consumer(self, consumer: ObjectReference) -> None:
        if self.connected:
            raise CorbaError("AlreadyConnected")
        self._consumer = consumer
        self.connected = True

    def disconnect_structured_push_supplier(self) -> None:
        self.connected = False
        self._consumer = None
        self._batch.clear()
        self._suspended_buffer.clear()

    def suspend_connection(self) -> None:
        """Buffer deliveries until resumed (the demand-control hook the
        paper's Table 3 credits the Notification Service with)."""
        if not self.connected:
            raise CorbaError("NotConnected")
        if self.suspended:
            raise CorbaError("ConnectionAlreadyInactive")
        self.suspended = True

    def resume_connection(self) -> None:
        if not self.suspended:
            raise CorbaError("ConnectionAlreadyActive")
        self.suspended = False
        buffered, self._suspended_buffer = self._suspended_buffer, []
        for event in buffered:
            self._deliver(event)

    def set_qos(self, values: dict[str, Any]) -> None:
        self.qos = self.qos.merged_with(values)

    def _deliver(self, event: StructuredEvent) -> None:
        if not self.connected or not self._passes(event):
            return
        if self.suspended:
            self._suspended_buffer.append(event)
            return
        batch_size = self.qos.get("MaximumBatchSize")
        if batch_size <= 1:
            self._send([event])
            return
        self._batch.append(event)
        if len(self._batch) >= batch_size:
            self.flush()

    def flush(self) -> None:
        if self._batch:
            batch, self._batch = self._batch, []
            self._send(batch)

    def _send(self, events: list[StructuredEvent]) -> None:
        if self._consumer is None:
            return
        wire = [event.to_wire() for event in events]
        if len(events) == 1:
            operation, argument = "push_structured_event", wire[0]
        else:
            operation, argument = "push_structured_events", wire
        try:
            self._channel.orb.invoke(self._consumer, operation, [argument])
        except CorbaError:
            self.disconnect_structured_push_supplier()


class StructuredProxyPullSupplier(_FilterableMixin):
    """A bounded, policy-ordered queue the consumer pulls from."""

    def __init__(self, channel: "NotificationChannel", qos: QosProfile) -> None:
        super().__init__()
        self._channel = channel
        self.qos = qos
        self._queue: list[StructuredEvent] = []
        self.connected = True
        self.discarded = 0

    def disconnect_structured_pull_supplier(self) -> None:
        self.connected = False
        self._queue.clear()

    def set_qos(self, values: dict[str, Any]) -> None:
        self.qos = self.qos.merged_with(values)

    def _deliver(self, event: StructuredEvent) -> None:
        if not self.connected or not self._passes(event):
            return
        self._queue.append(event)
        self._enforce_bounds()

    def _enforce_bounds(self) -> None:
        bound = self.qos.get("MaxEventsPerConsumer")
        if not bound:
            return
        policy = self.qos.get("DiscardPolicy")
        while len(self._queue) > bound:
            self.discarded += 1
            if policy is DiscardPolicy.LIFO_ORDER:
                self._queue.pop()  # newest discarded
            elif policy is DiscardPolicy.PRIORITY_ORDER:
                lowest = min(range(len(self._queue)), key=lambda i: self._queue[i].priority)
                self._queue.pop(lowest)
            else:  # FIFO / Any: oldest discarded
                self._queue.pop(0)

    def try_pull_structured_event(self) -> tuple[Optional[StructuredEvent], bool]:
        if not self.connected:
            raise CorbaError("pull supplier disconnected")
        if not self._queue:
            return None, False
        policy = self.qos.get("OrderPolicy")
        if policy is OrderPolicy.PRIORITY_ORDER:
            index = max(range(len(self._queue)), key=lambda i: self._queue[i].priority)
        else:  # FIFO / Any
            index = 0
        return self._queue.pop(index), True

    def pending(self) -> int:
        return len(self._queue)


class StructuredProxyPushConsumer(_FilterableMixin):
    """Suppliers push structured events into the channel through this proxy."""

    def __init__(self, channel: "NotificationChannel") -> None:
        super().__init__()
        self._channel = channel
        self.connected = True

    def push_structured_event(self, event: StructuredEvent) -> None:
        if not self.connected:
            raise CorbaError("disconnected")
        if self._passes(event):
            self._channel._fan_out(event)

    def disconnect_structured_push_consumer(self) -> None:
        self.connected = False


class NotificationConsumerAdmin(_FilterableMixin):
    """Admin grouping consumer-side proxies; admin filters apply to all."""

    def __init__(self, channel: "NotificationChannel") -> None:
        super().__init__()
        self._channel = channel
        self.proxies: list[_FilterableMixin] = []

    def obtain_structured_push_supplier(
        self, qos: Optional[QosProfile] = None
    ) -> StructuredProxyPushSupplier:
        proxy = StructuredProxyPushSupplier(self._channel, qos or QosProfile(dict(self._channel.default_qos.values)))
        self.proxies.append(proxy)
        self._channel._consumer_proxies.append((self, proxy))
        return proxy

    def obtain_structured_pull_supplier(
        self, qos: Optional[QosProfile] = None
    ) -> StructuredProxyPullSupplier:
        proxy = StructuredProxyPullSupplier(self._channel, qos or QosProfile(dict(self._channel.default_qos.values)))
        self.proxies.append(proxy)
        self._channel._consumer_proxies.append((self, proxy))
        return proxy


class NotificationSupplierAdmin(_FilterableMixin):
    def __init__(self, channel: "NotificationChannel") -> None:
        super().__init__()
        self._channel = channel

    def obtain_structured_push_consumer(self) -> StructuredProxyPushConsumer:
        proxy = StructuredProxyPushConsumer(self._channel)
        return proxy


class NotificationChannel:
    """An event channel with filtering and QoS."""

    def __init__(self, orb: Orb, default_qos: Optional[QosProfile] = None) -> None:
        self.orb = orb
        self.default_qos = default_qos or QosProfile()
        self._consumer_proxies: list[tuple[NotificationConsumerAdmin, Any]] = []
        self.events_routed = 0

    def new_for_consumers(self) -> NotificationConsumerAdmin:
        return NotificationConsumerAdmin(self)

    def new_for_suppliers(self) -> NotificationSupplierAdmin:
        return NotificationSupplierAdmin(self)

    def set_qos(self, values: dict[str, Any]) -> None:
        self.default_qos = self.default_qos.merged_with(values)

    def validate_qos(self, values: dict[str, Any]) -> None:
        self.default_qos.merged_with(values)  # raises QosError if invalid

    def _fan_out(self, event: StructuredEvent) -> None:
        self.events_routed += 1
        for admin, proxy in list(self._consumer_proxies):
            if not admin._passes(event):
                continue
            proxy._deliver(event)
