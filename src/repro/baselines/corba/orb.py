"""A miniature Object Request Broker with GIOP-style framing.

Every operation invocation between CORBA objects marshals its arguments to
CDR, wraps them in a GIOP-like request frame, routes through the ORB, and
unmarshals on the far side — so the baseline pays the real serialization
costs Table 3's "RPC / binary CDR" row implies, and the benchmarks can
account wire bytes for CORBA just as they do for SOAP.

The interoperability limitation the paper dwells on (section VI.A: CORBA
solutions "depend on a single vendor's implementation... can only achieve
interoperability on the intranet scale") is modelled by the ORB's
``vendor`` tag: ORBs refuse frames from a different vendor unless both ends
opt in, and object references do not resolve across ORB instances.
"""

from __future__ import annotations

import itertools
import struct
from dataclasses import dataclass
from typing import Any, Callable

from repro.baselines.corba.cdr import CdrDecoder, CdrEncoder, CdrError

_GIOP_MAGIC = b"GIOP"
_REQUEST = 0
_REPLY = 1
_REPLY_OK = 0
_REPLY_EXCEPTION = 1


class CorbaError(Exception):
    """A CORBA system or user exception surfaced to the caller."""


@dataclass(frozen=True)
class ObjectReference:
    """An IOR-like reference: resolvable only within its home ORB."""

    orb_id: str
    object_key: str

    def __str__(self) -> str:
        return f"IOR:{self.orb_id}/{self.object_key}"


Servant = Callable[[str, list[Any]], Any]  # (operation, args) -> result


class Orb:
    """Routes marshalled invocations to registered servants."""

    def __init__(self, vendor: str = "acme-orb", *, interop: bool = False) -> None:
        self.vendor = vendor
        self.interop = interop
        self.orb_id = f"{vendor}-{id(self) & 0xFFFF:04x}"
        self._counter = itertools.count(1)
        self._servants: dict[str, Servant] = {}
        self.frames_routed = 0
        self.bytes_routed = 0

    # --- registration ------------------------------------------------------------

    def register(self, servant: Servant, *, key: str | None = None) -> ObjectReference:
        object_key = key or f"obj-{next(self._counter)}"
        self._servants[object_key] = servant
        return ObjectReference(self.orb_id, object_key)

    def unregister(self, reference: ObjectReference) -> None:
        self._servants.pop(reference.object_key, None)

    # --- invocation ----------------------------------------------------------------

    def invoke(self, reference: ObjectReference, operation: str, args: list[Any]) -> Any:
        """Marshal, frame, route, unframe, unmarshal — a full GIOP round trip."""
        request = self._frame_request(reference, operation, args)
        reply = self._route(reference, request)
        return self._parse_reply(reply)

    def _frame_request(
        self, reference: ObjectReference, operation: str, args: list[Any]
    ) -> bytes:
        body = CdrEncoder()
        body.put_string(self.orb_id)  # requesting ORB (vendor check)
        body.put_string(reference.object_key)
        body.put_string(operation)
        body.put_ulong(len(args))
        for arg in args:
            body.put_any(arg)
        payload = body.data()
        header = _GIOP_MAGIC + struct.pack(">BBBBI", 1, 2, 0, _REQUEST, len(payload))
        return header + payload

    def _route(self, reference: ObjectReference, frame: bytes) -> bytes:
        self.frames_routed += 1
        self.bytes_routed += len(frame)
        if reference.orb_id != self.orb_id:
            raise CorbaError(
                f"object reference {reference} is foreign to ORB {self.orb_id}; "
                "CORBA interoperates at intranet scale only"
            )
        if len(frame) < 12 or frame[:4] != _GIOP_MAGIC:
            raise CorbaError("bad GIOP magic")
        _major, _minor, _flags, msg_type, size = struct.unpack(">BBBBI", frame[4:12])
        if msg_type != _REQUEST or len(frame) - 12 != size:
            raise CorbaError("malformed GIOP request frame")
        decoder = CdrDecoder(frame[12:])
        try:
            requester = decoder.get_string()
            object_key = decoder.get_string()
            operation = decoder.get_string()
            args = [decoder.get_any() for _ in range(decoder.get_ulong())]
        except CdrError as exc:
            raise CorbaError(f"unmarshalling failed: {exc}") from exc
        requester_vendor = requester.rsplit("-", 1)[0]
        if requester_vendor != self.vendor and not self.interop:
            return self._frame_reply(
                _REPLY_EXCEPTION,
                f"ORB vendor mismatch: {requester_vendor!r} cannot talk to {self.vendor!r}",
            )
        servant = self._servants.get(object_key)
        if servant is None:
            return self._frame_reply(_REPLY_EXCEPTION, f"OBJECT_NOT_EXIST: {object_key}")
        try:
            result = servant(operation, args)
        except CorbaError as exc:
            return self._frame_reply(_REPLY_EXCEPTION, str(exc))
        try:
            return self._frame_reply(_REPLY_OK, result)
        except CdrError as exc:
            return self._frame_reply(_REPLY_EXCEPTION, f"reply marshalling failed: {exc}")

    def _frame_reply(self, status: int, value: Any) -> bytes:
        body = CdrEncoder()
        body.put_octet(status)
        body.put_any(value)
        payload = body.data()
        header = _GIOP_MAGIC + struct.pack(">BBBBI", 1, 2, 0, _REPLY, len(payload))
        return header + payload

    def _parse_reply(self, frame: bytes) -> Any:
        self.bytes_routed += len(frame)
        decoder = CdrDecoder(frame[12:])
        status = decoder.get_octet()
        value = decoder.get_any()
        if status == _REPLY_EXCEPTION:
            raise CorbaError(str(value))
        return value
