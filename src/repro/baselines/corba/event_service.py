"""The CORBA Event Service (3/1995): channels, push/pull proxies, no filters.

Every event a supplier pushes into a channel reaches **every** connected
consumer — "It does not address event filtering and Quality of Service
(QoS).  A consumer receives all events on a channel." (paper section VI.A).
Both push and pull models are supported, as Table 3 records.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.baselines.corba.orb import CorbaError, ObjectReference, Orb


class Disconnected(CorbaError):
    """Operation on a disconnected proxy."""


class ProxyPushSupplier:
    """Channel-side supplier proxy: pushes events at a connected consumer."""

    def __init__(self, channel: "EventChannel") -> None:
        self._channel = channel
        self._consumer: Optional[ObjectReference] = None
        self.connected = False

    def connect_push_consumer(self, consumer: ObjectReference) -> None:
        if self.connected:
            raise CorbaError("AlreadyConnected")
        self._consumer = consumer
        self.connected = True

    def disconnect_push_supplier(self) -> None:
        self.connected = False
        self._consumer = None

    def _deliver(self, event: Any) -> None:
        if not self.connected or self._consumer is None:
            return
        try:
            self._channel.orb.invoke(self._consumer, "push", [event])
        except CorbaError:
            self.disconnect_push_supplier()  # dead consumer drops off


class ProxyPullSupplier:
    """Channel-side supplier proxy a consumer pulls events from."""

    def __init__(self, channel: "EventChannel") -> None:
        self._channel = channel
        self._queue: list[Any] = []
        self.connected = True

    def disconnect_pull_supplier(self) -> None:
        self.connected = False
        self._queue.clear()

    def _deliver(self, event: Any) -> None:
        if self.connected:
            self._queue.append(event)

    def try_pull(self) -> tuple[Any, bool]:
        """Non-blocking pull: (event, has_event)."""
        if not self.connected:
            raise Disconnected("pull supplier disconnected")
        if self._queue:
            return self._queue.pop(0), True
        return None, False

    def pull(self) -> Any:
        event, ok = self.try_pull()
        if not ok:
            raise CorbaError("no event available (would block)")
        return event


class ProxyPushConsumer:
    """Channel-side consumer proxy a supplier pushes events into."""

    def __init__(self, channel: "EventChannel") -> None:
        self._channel = channel
        self.connected = True

    def push(self, event: Any) -> None:
        if not self.connected:
            raise Disconnected("push consumer disconnected")
        self._channel._fan_out(event)

    def disconnect_push_consumer(self) -> None:
        self.connected = False


class ProxyPullConsumer:
    """Channel-side consumer proxy that pulls events *from* a supplier."""

    def __init__(self, channel: "EventChannel") -> None:
        self._channel = channel
        self._supplier: Optional[ObjectReference] = None
        self.connected = False

    def connect_pull_supplier(self, supplier: ObjectReference) -> None:
        if self.connected:
            raise CorbaError("AlreadyConnected")
        self._supplier = supplier
        self.connected = True

    def poll(self) -> int:
        """Drain the connected supplier into the channel; returns count."""
        if not self.connected or self._supplier is None:
            raise Disconnected("pull consumer not connected")
        drained = 0
        while True:
            result = self._channel.orb.invoke(self._supplier, "try_pull", [])
            event, has_event = result[0], result[1]
            if not has_event:
                return drained
            self._channel._fan_out(event)
            drained += 1

    def disconnect_pull_consumer(self) -> None:
        self.connected = False
        self._supplier = None


class ConsumerAdmin:
    def __init__(self, channel: "EventChannel") -> None:
        self._channel = channel

    def obtain_push_supplier(self) -> ProxyPushSupplier:
        proxy = ProxyPushSupplier(self._channel)
        self._channel._push_suppliers.append(proxy)
        return proxy

    def obtain_pull_supplier(self) -> ProxyPullSupplier:
        proxy = ProxyPullSupplier(self._channel)
        self._channel._pull_suppliers.append(proxy)
        return proxy


class SupplierAdmin:
    def __init__(self, channel: "EventChannel") -> None:
        self._channel = channel

    def obtain_push_consumer(self) -> ProxyPushConsumer:
        proxy = ProxyPushConsumer(self._channel)
        self._channel._push_consumers.append(proxy)
        return proxy

    def obtain_pull_consumer(self) -> ProxyPullConsumer:
        proxy = ProxyPullConsumer(self._channel)
        self._channel._pull_consumers.append(proxy)
        return proxy


class EventChannel:
    """An event channel: decouples suppliers from consumers, fans out all."""

    def __init__(self, orb: Orb) -> None:
        self.orb = orb
        self._push_suppliers: list[ProxyPushSupplier] = []
        self._pull_suppliers: list[ProxyPullSupplier] = []
        self._push_consumers: list[ProxyPushConsumer] = []
        self._pull_consumers: list[ProxyPullConsumer] = []
        self.events_routed = 0

    def for_consumers(self) -> ConsumerAdmin:
        return ConsumerAdmin(self)

    def for_suppliers(self) -> SupplierAdmin:
        return SupplierAdmin(self)

    def _fan_out(self, event: Any) -> None:
        self.events_routed += 1
        for proxy in list(self._push_suppliers):
            proxy._deliver(event)
        for proxy in list(self._pull_suppliers):
            proxy._deliver(event)

    def destroy(self) -> None:
        for proxy in self._push_suppliers:
            proxy.disconnect_push_supplier()
        for proxy in self._pull_suppliers:
            proxy.disconnect_pull_supplier()
        for proxy in self._push_consumers:
            proxy.disconnect_push_consumer()
        for proxy in self._pull_consumers:
            proxy.disconnect_pull_consumer()
