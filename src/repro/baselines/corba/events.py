"""CORBA event representations: generic (any) and structured.

The Notification Service "introduced 'Structured Events' which provides a
well-defined data structure to map a generic event to a well structured
event.  The structured event is useful for efficient filtering." (paper
section VI.A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping


@dataclass
class StructuredEvent:
    """A CORBA structured event.

    - fixed header: domain name / type name / event name;
    - variable header: QoS-ish per-event properties (e.g. Priority);
    - filterable body: name/value pairs that filter constraints inspect;
    - remainder of body: the opaque payload.
    """

    domain_name: str = ""
    type_name: str = ""
    event_name: str = ""
    variable_header: dict[str, Any] = field(default_factory=dict)
    filterable_data: dict[str, Any] = field(default_factory=dict)
    payload: Any = None

    def to_mapping(self) -> dict[str, Any]:
        """The nested-mapping shape the TCL evaluator consumes."""
        return {
            "header": {
                "fixed_header": {
                    "event_type": {
                        "domain_name": self.domain_name,
                        "type_name": self.type_name,
                    },
                    "event_name": self.event_name,
                },
                "variable_header": dict(self.variable_header),
            },
            "filterable_data": dict(self.filterable_data),
            "variable_header": dict(self.variable_header),
            "remainder_of_body": self.payload,
        }

    def to_wire(self) -> dict[str, Any]:
        """CDR-marshallable form (struct of structs)."""
        return {
            "domain_name": self.domain_name,
            "type_name": self.type_name,
            "event_name": self.event_name,
            "variable_header": dict(self.variable_header),
            "filterable_data": dict(self.filterable_data),
            "payload": self.payload,
        }

    @classmethod
    def from_wire(cls, wire: Mapping[str, Any]) -> "StructuredEvent":
        return cls(
            domain_name=wire.get("domain_name", ""),
            type_name=wire.get("type_name", ""),
            event_name=wire.get("event_name", ""),
            variable_header=dict(wire.get("variable_header", {})),
            filterable_data=dict(wire.get("filterable_data", {})),
            payload=wire.get("payload"),
        )

    @classmethod
    def from_generic(cls, value: Any) -> "StructuredEvent":
        """Map a generic (any) event into a structured event."""
        return cls(type_name="%ANY", payload=value)

    @property
    def priority(self) -> int:
        value = self.variable_header.get("Priority", 0)
        return value if isinstance(value, int) else 0
