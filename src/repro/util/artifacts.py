"""Benchmark artifact writing: one shared schema version, one format.

Every ``BENCH_*.json`` artifact carries the same top-level
``schema_version`` field, so the CI smoke steps and any perf-trajectory
tooling can reject an artifact produced by an older layout instead of
silently mis-parsing it.  Bump :data:`SCHEMA_VERSION` whenever any
artifact's shape changes incompatibly.
"""

from __future__ import annotations

import json
from pathlib import Path

#: shared across every ``BENCH_*.json`` — bump on incompatible layout changes
SCHEMA_VERSION = 2


def stamp(document: dict) -> dict:
    """A copy of ``document`` carrying the shared schema version."""
    stamped = dict(document)
    stamped["schema_version"] = SCHEMA_VERSION
    return stamped


def render_artifact(document: dict) -> str:
    """The canonical artifact rendering: stamped, sorted, newline-terminated."""
    return json.dumps(stamp(document), indent=2, sort_keys=True) + "\n"


def write_artifact(path: Path, document: dict) -> str:
    """Stamp ``document`` and write it to ``path``; returns the rendered text."""
    text = render_artifact(document)
    path.write_text(text)
    return text
