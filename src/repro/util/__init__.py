"""Shared utilities (XML Schema time lexical forms over the virtual clock,
seeded deterministic RNG streams)."""

from repro.util.rng import SeededRng
from repro.util.xstime import (
    EPOCH_ISO,
    format_datetime,
    format_duration,
    parse_datetime,
    parse_duration,
    parse_expires,
)

__all__ = [
    "EPOCH_ISO",
    "SeededRng",
    "parse_duration",
    "format_duration",
    "parse_datetime",
    "format_datetime",
    "parse_expires",
]
