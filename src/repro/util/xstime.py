"""XML Schema ``xs:duration`` and ``xs:dateTime`` over the virtual clock.

Table 1 has a row for exactly this: "Specify subscription expiration using
duration" — WS-Eventing always allowed ``xs:duration`` expirations, WSN 1.0
required absolute ``xs:dateTime`` termination times, and WSN 1.3 adopted
durations.  Both lexical forms are implemented here.  Absolute times map
onto the virtual clock with second 0 = 2006-01-01T00:00:00Z (the paper's
era), so every wire message carries real, schema-valid timestamps while the
simulation stays deterministic.
"""

from __future__ import annotations

import datetime as _dt
import re
from typing import Optional

#: virtual-clock second 0 in real-calendar terms
_EPOCH = _dt.datetime(2006, 1, 1, tzinfo=_dt.timezone.utc)
EPOCH_ISO = "2006-01-01T00:00:00Z"

_DURATION_RE = re.compile(
    r"^(?P<sign>-)?P"
    r"(?:(?P<years>\d+)Y)?"
    r"(?:(?P<months>\d+)M)?"
    r"(?:(?P<days>\d+)D)?"
    r"(?:T"
    r"(?:(?P<hours>\d+)H)?"
    r"(?:(?P<minutes>\d+)M)?"
    r"(?:(?P<seconds>\d+(?:\.\d+)?)S)?"
    r")?$"
)

# fixed-size approximations, consistent in both directions
_SECONDS_PER = {
    "years": 365 * 86400.0,
    "months": 30 * 86400.0,
    "days": 86400.0,
    "hours": 3600.0,
    "minutes": 60.0,
    "seconds": 1.0,
}


def parse_duration(text: str) -> float:
    """Parse an ``xs:duration`` lexical form to seconds."""
    text = text.strip()
    match = _DURATION_RE.match(text)
    if match is None or text in ("P", "-P", "PT", "-PT"):
        raise ValueError(f"invalid xs:duration: {text!r}")
    total = 0.0
    for name, scale in _SECONDS_PER.items():
        value = match.group(name)
        if value is not None:
            total += float(value) * scale
    if match.group("sign"):
        total = -total
    return total


def format_duration(seconds: float) -> str:
    """Render seconds as a canonical-ish ``xs:duration``.

    The output uses only day/time components, so a parse/format round trip
    canonicalizes the year/month approximations: ``P1Y2M3DT4H5M6S`` parses
    to 36,993,906 seconds and re-renders as ``P428DT4H5M6S``.  Formatting is
    a retraction of parsing — ``format_duration(parse_duration(s))`` is a
    fixpoint after one pass.
    """
    if seconds < 0:
        return "-" + format_duration(-seconds)
    whole = int(seconds)
    fraction = seconds - whole
    days, rest = divmod(whole, 86400)
    hours, rest = divmod(rest, 3600)
    minutes, secs = divmod(rest, 60)
    date_part = f"{days}D" if days else ""
    time_parts = []
    if hours:
        time_parts.append(f"{hours}H")
    if minutes:
        time_parts.append(f"{minutes}M")
    if secs or fraction or not (days or hours or minutes):
        if fraction:
            time_parts.append(f"{secs + fraction:.3f}".rstrip("0").rstrip(".") + "S")
        else:
            time_parts.append(f"{secs}S")
    time_part = "T" + "".join(time_parts) if time_parts else ""
    return f"P{date_part}{time_part}"


def parse_datetime(text: str) -> float:
    """Parse an ``xs:dateTime`` to virtual-clock seconds."""
    text = text.strip()
    normalized = text[:-1] + "+00:00" if text.endswith("Z") else text
    try:
        moment = _dt.datetime.fromisoformat(normalized)
    except ValueError as exc:
        raise ValueError(f"invalid xs:dateTime: {text!r}") from exc
    if moment.tzinfo is None:
        moment = moment.replace(tzinfo=_dt.timezone.utc)
    return (moment - _EPOCH).total_seconds()


def format_datetime(virtual_seconds: float) -> str:
    """Render virtual-clock seconds as an ``xs:dateTime`` (UTC)."""
    moment = _EPOCH + _dt.timedelta(seconds=virtual_seconds)
    rendered = moment.strftime("%Y-%m-%dT%H:%M:%S")
    micro = moment.microsecond
    if micro:
        rendered += f".{micro:06d}".rstrip("0")
    return rendered + "Z"


def parse_expires(text: str, now: float) -> Optional[float]:
    """Parse an Expires element value: duration *or* absolute dateTime.

    Returns an absolute virtual-clock expiry, or ``None`` for a non-expiring
    request (empty text, by local convention).  Durations are relative to
    ``now``.  This dual acceptance is exactly what WSE (both versions) and
    WSN 1.3 allow; WSN <= 1.2 callers pass only dateTimes.

    Non-positive durations (``-PT5S``, ``PT0S``) are rejected here rather
    than being silently converted into an already-expired lease: both spec
    families require an *InvalidExpirationTime*-style fault for them, and
    the endpoint handlers map this ``ValueError`` onto their per-family
    SOAP fault subcode (WSE ``InvalidExpirationTime``, WSN
    ``UnacceptableInitialTerminationTimeFault``).
    """
    text = text.strip()
    if not text:
        return None
    if text.startswith("P") or text.startswith("-P"):
        duration = parse_duration(text)
        if duration <= 0:
            raise ValueError(
                f"non-positive expiration duration: {text!r} "
                "(the subscription would be expired on arrival)"
            )
        return now + duration
    return parse_datetime(text)
