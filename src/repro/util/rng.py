"""A seeded, self-contained deterministic RNG (splitmix64).

The delivery layer needs jitter on retry backoff, but everything in this
repository must be a pure function of (scenario, seed): benchmarks assert
byte-identical artifacts across runs.  The stdlib's module-level ``random``
functions are global state any import can perturb, and wall-clock seeding is
banned outright.  :class:`SeededRng` is neither: each instance owns one
64-bit splitmix64 state, derives child streams by name (so two subsystems
sharing a seed cannot entangle their draw sequences), and never touches the
clock — virtual or otherwise.
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def _fnv1a64(data: bytes) -> int:
    """FNV-1a over ``data`` — a stable label hash (``hash()`` is salted)."""
    acc = _FNV_OFFSET
    for byte in data:
        acc = ((acc ^ byte) * _FNV_PRIME) & _MASK64
    return acc


class SeededRng:
    """A splitmix64 pseudo-random stream with named sub-streams."""

    __slots__ = ("_seed", "_state")

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed & _MASK64
        self._state = seed & _MASK64

    def next_u64(self) -> int:
        """The raw 64-bit splitmix64 output step."""
        self._state = (self._state + _GOLDEN) & _MASK64
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
        return z ^ (z >> 31)

    def random(self) -> float:
        """A float in ``[0, 1)`` with 53 bits of precision."""
        return (self.next_u64() >> 11) * 2.0**-53

    def uniform(self, low: float, high: float) -> float:
        """A float in ``[low, high)``."""
        return low + (high - low) * self.random()

    def randrange(self, bound: int) -> int:
        """An int in ``[0, bound)``; rejection-free (modulo bias is fine for
        jitter-class uses, and determinism matters more than uniformity tails)."""
        if bound <= 0:
            raise ValueError("bound must be positive")
        return self.next_u64() % bound

    def fork(self, label: str) -> "SeededRng":
        """An independent child stream derived from this stream's *seed
        lineage* and ``label`` — not from the current position, so forking is
        insensitive to how many draws the parent has made."""
        return SeededRng(self._seed ^ _fnv1a64(label.encode("utf-8")))

    def __repr__(self) -> str:
        return f"SeededRng(seed=0x{self._seed:016x}, state=0x{self._state:016x})"
