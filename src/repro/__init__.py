"""Reproduction of "A Comparative Study of Web Services-based Event
Notification Specifications" (Huang & Gannon, ICPP 2006).

Top-level layout (bottom-up):

- substrates: :mod:`repro.xmlkit`, :mod:`repro.soap`, :mod:`repro.wsa`,
  :mod:`repro.transport`, :mod:`repro.wsrf`, :mod:`repro.filters`,
  :mod:`repro.qos`, :mod:`repro.util`;
- the two specification families: :mod:`repro.wse` (WS-Eventing 01/2004 and
  08/2004) and :mod:`repro.wsn` (WS-BaseNotification 1.0/1.2/1.3, WS-Topics,
  WS-BrokeredNotification, pull points);
- the previous generation: :mod:`repro.baselines` (CORBA Event/Notification
  Services over CDR+ORB, JMS, OGSI notification);
- the paper's system: :mod:`repro.messenger` (WS-Messenger — spec detection,
  mediation, pluggable messaging backbones);
- the paper's evaluation, executable: :mod:`repro.comparison` (Tables 1-3
  regenerated from live probes, Figures 1-2 traced from real lifecycles);
- beyond the paper: :mod:`repro.convergence` (the WS-EventNotification
  prototype its conclusion anticipates).

See DESIGN.md for the full inventory and EXPERIMENTS.md for
paper-vs-measured results.  ``python -m repro`` prints the regenerated
comparative study.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
