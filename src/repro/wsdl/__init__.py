"""WSDL 1.1 document generation for the implemented port types.

"Web Service Description Language (WSDL) defines valid XML document
structures for message exchanges to enable the interoperability feature of
Web services" (paper section III).  This package renders real WSDL 1.1
documents for every service this reproduction implements — the WS-Eventing
event source / subscription manager, the WS-Notification producer /
subscription manager / broker / pull point, and the converged prototype —
so each endpoint can *describe itself* the way its specification intends.

The generator is introspective: the operations come from the same
per-version profiles that drive the implementations, so a WSE 01/2004 WSDL
has no GetStatus and a WSN 1.0 subscription manager describes the WSRF
lifetime operations instead of Renew/Unsubscribe.
"""

from repro.wsdl.generator import (
    WsdlDefinition,
    WsdlOperation,
    WsdlPortType,
    wsdl_for_converged_source,
    wsdl_for_wse_source,
    wsdl_for_wsn_producer,
)

__all__ = [
    "WsdlDefinition",
    "WsdlPortType",
    "WsdlOperation",
    "wsdl_for_wse_source",
    "wsdl_for_wsn_producer",
    "wsdl_for_converged_source",
]
