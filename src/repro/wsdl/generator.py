"""The WSDL 1.1 model and the per-specification document builders."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.wse.versions import WseVersion
from repro.wsn.versions import WsnVersion
from repro.xmlkit.element import XElem
from repro.xmlkit.names import Namespaces, QName
from repro.xmlkit.writer import serialize_xml

WSDL_NS = "http://schemas.xmlsoap.org/wsdl/"
WSDL_SOAP_NS = "http://schemas.xmlsoap.org/wsdl/soap/"


def _w(local: str) -> QName:
    return QName(WSDL_NS, local)


@dataclass
class WsdlOperation:
    """One operation: request message, optional reply, action URIs."""

    name: str
    input_element: str  # QName-ish label of the body element, e.g. "wse:Subscribe"
    input_action: str
    output_element: Optional[str] = None
    output_action: Optional[str] = None

    @property
    def one_way(self) -> bool:
        return self.output_element is None


@dataclass
class WsdlPortType:
    name: str
    operations: list[WsdlOperation] = field(default_factory=list)

    def operation_names(self) -> list[str]:
        return [operation.name for operation in self.operations]


@dataclass
class WsdlDefinition:
    """A WSDL 1.1 definitions document."""

    name: str
    target_namespace: str
    port_types: list[WsdlPortType] = field(default_factory=list)
    service_address: Optional[str] = None

    def port_type(self, name: str) -> WsdlPortType:
        for port_type in self.port_types:
            if port_type.name == name:
                return port_type
        raise KeyError(name)

    def all_operations(self) -> list[WsdlOperation]:
        return [op for pt in self.port_types for op in pt.operations]

    # --- rendering -----------------------------------------------------------

    def to_element(self) -> XElem:
        definitions = XElem(_w("definitions"))
        definitions.attrs[QName("", "name")] = self.name
        definitions.attrs[QName("", "targetNamespace")] = self.target_namespace
        # messages: one per distinct in/out element
        seen_messages: set[str] = set()
        for operation in self.all_operations():
            for element, suffix in (
                (operation.input_element, "In"),
                (operation.output_element, "Out"),
            ):
                if element is None:
                    continue
                message_name = f"{operation.name}{suffix}"
                if message_name in seen_messages:
                    continue
                seen_messages.add(message_name)
                message = XElem(_w("message"))
                message.attrs[QName("", "name")] = message_name
                part = XElem(_w("part"))
                part.attrs[QName("", "name")] = "body"
                part.attrs[QName("", "element")] = element
                message.append(part)
                definitions.append(message)
        # portTypes
        for port_type in self.port_types:
            pt_elem = XElem(_w("portType"))
            pt_elem.attrs[QName("", "name")] = port_type.name
            for operation in port_type.operations:
                op_elem = XElem(_w("operation"))
                op_elem.attrs[QName("", "name")] = operation.name
                input_elem = XElem(_w("input"))
                input_elem.attrs[QName("", "message")] = f"tns:{operation.name}In"
                input_elem.attrs[
                    QName(Namespaces.WSA_2005_08, "Action")
                ] = operation.input_action
                op_elem.append(input_elem)
                if operation.output_element is not None:
                    output_elem = XElem(_w("output"))
                    output_elem.attrs[QName("", "message")] = f"tns:{operation.name}Out"
                    if operation.output_action:
                        output_elem.attrs[
                            QName(Namespaces.WSA_2005_08, "Action")
                        ] = operation.output_action
                    op_elem.append(output_elem)
                pt_elem.append(op_elem)
            definitions.append(pt_elem)
        # binding + service (document/literal SOAP-over-HTTP)
        if self.service_address is not None:
            for port_type in self.port_types:
                binding = XElem(_w("binding"))
                binding.attrs[QName("", "name")] = f"{port_type.name}SoapBinding"
                binding.attrs[QName("", "type")] = f"tns:{port_type.name}"
                soap_binding = XElem(QName(WSDL_SOAP_NS, "binding"))
                soap_binding.attrs[QName("", "style")] = "document"
                soap_binding.attrs[
                    QName("", "transport")
                ] = "http://schemas.xmlsoap.org/soap/http"
                binding.append(soap_binding)
                definitions.append(binding)
            service = XElem(_w("service"))
            service.attrs[QName("", "name")] = f"{self.name}Service"
            for port_type in self.port_types:
                port = XElem(_w("port"))
                port.attrs[QName("", "name")] = f"{port_type.name}Port"
                port.attrs[QName("", "binding")] = f"tns:{port_type.name}SoapBinding"
                address = XElem(QName(WSDL_SOAP_NS, "address"))
                address.attrs[QName("", "location")] = self.service_address
                port.append(address)
                service.append(port)
            definitions.append(service)
        return definitions

    def to_xml(self) -> str:
        return serialize_xml(self.to_element(), xml_declaration=True, indent=True)


# --- per-specification builders -----------------------------------------------------


def wsdl_for_wse_source(
    version: WseVersion = WseVersion.V2004_08, *, address: Optional[str] = None
) -> WsdlDefinition:
    """The WS-Eventing event source (+ subscription manager) WSDL."""
    prefix = "wse"
    source = WsdlPortType("EventSource")
    source.operations.append(
        WsdlOperation(
            "Subscribe",
            f"{prefix}:Subscribe",
            version.action("Subscribe"),
            f"{prefix}:SubscribeResponse",
            version.action("SubscribeResponse"),
        )
    )
    manager = WsdlPortType("SubscriptionManager")
    manager.operations.append(
        WsdlOperation(
            "Renew",
            f"{prefix}:Renew",
            version.action("Renew"),
            f"{prefix}:RenewResponse",
            version.action("RenewResponse"),
        )
    )
    if version.has_get_status:
        manager.operations.append(
            WsdlOperation(
                "GetStatus",
                f"{prefix}:GetStatus",
                version.action("GetStatus"),
                f"{prefix}:GetStatusResponse",
                version.action("GetStatusResponse"),
            )
        )
    manager.operations.append(
        WsdlOperation(
            "Unsubscribe",
            f"{prefix}:Unsubscribe",
            version.action("Unsubscribe"),
            f"{prefix}:UnsubscribeResponse",
            version.action("UnsubscribeResponse"),
        )
    )
    if version.supports_pull_delivery:
        manager.operations.append(
            WsdlOperation(
                "Pull",
                f"{prefix}:Pull",
                version.action("Pull"),
                f"{prefix}:PullResponse",
                version.action("PullResponse"),
            )
        )
    sink = WsdlPortType("EventSink")
    sink.operations.append(
        WsdlOperation(
            "SubscriptionEnd",
            f"{prefix}:SubscriptionEnd",
            version.action("SubscriptionEnd"),
        )
    )
    port_types = (
        [source, manager, sink]
        if version.separate_subscription_manager
        else [_merged(source, manager), sink]
    )
    return WsdlDefinition(
        f"WsEventing{version.name}",
        version.namespace,
        port_types,
        service_address=address,
    )


def _merged(first: WsdlPortType, second: WsdlPortType) -> WsdlPortType:
    """01/2004: the event source carries the manager operations itself."""
    merged = WsdlPortType(first.name)
    merged.operations = [*first.operations, *second.operations]
    return merged


def wsdl_for_wsn_producer(
    version: WsnVersion = WsnVersion.V1_3,
    *,
    address: Optional[str] = None,
    include_wsrf: bool = True,
) -> WsdlDefinition:
    """The WS-BaseNotification producer (+ manager + consumer) WSDL."""
    prefix = "wsnt"
    producer = WsdlPortType("NotificationProducer")
    producer.operations.append(
        WsdlOperation(
            "Subscribe",
            f"{prefix}:Subscribe",
            version.action("Subscribe"),
            f"{prefix}:SubscribeResponse",
            version.action("SubscribeResponse"),
        )
    )
    producer.operations.append(
        WsdlOperation(
            "GetCurrentMessage",
            f"{prefix}:GetCurrentMessage",
            version.action("GetCurrentMessage"),
            f"{prefix}:GetCurrentMessageResponse",
            version.action("GetCurrentMessageResponse"),
        )
    )
    manager = WsdlPortType("SubscriptionManager")
    if version.has_native_unsubscribe:
        manager.operations.append(
            WsdlOperation(
                "Renew",
                f"{prefix}:Renew",
                version.action("Renew"),
                f"{prefix}:RenewResponse",
                version.action("RenewResponse"),
            )
        )
        manager.operations.append(
            WsdlOperation(
                "Unsubscribe",
                f"{prefix}:Unsubscribe",
                version.action("Unsubscribe"),
                f"{prefix}:UnsubscribeResponse",
                version.action("UnsubscribeResponse"),
            )
        )
    for local in ("PauseSubscription", "ResumeSubscription"):
        manager.operations.append(
            WsdlOperation(
                local,
                f"{prefix}:{local}",
                version.action(local),
                f"{prefix}:{local}Response",
                version.action(f"{local}Response"),
            )
        )
    if include_wsrf or version.requires_wsrf:
        manager.operations.append(
            WsdlOperation(
                "GetResourceProperty",
                "wsrf-rp:GetResourceProperty",
                f"{Namespaces.WSRF_RP}/GetResourceProperty",
                "wsrf-rp:GetResourcePropertyResponse",
                f"{Namespaces.WSRF_RP}/GetResourcePropertyResponse",
            )
        )
        manager.operations.append(
            WsdlOperation(
                "SetTerminationTime",
                "wsrf-rl:SetTerminationTime",
                f"{Namespaces.WSRF_RL}/SetTerminationTime",
                "wsrf-rl:SetTerminationTimeResponse",
                f"{Namespaces.WSRF_RL}/SetTerminationTimeResponse",
            )
        )
        manager.operations.append(
            WsdlOperation(
                "Destroy",
                "wsrf-rl:Destroy",
                f"{Namespaces.WSRF_RL}/Destroy",
                "wsrf-rl:DestroyResponse",
                f"{Namespaces.WSRF_RL}/DestroyResponse",
            )
        )
    consumer = WsdlPortType("NotificationConsumer")
    consumer.operations.append(
        WsdlOperation("Notify", f"{prefix}:Notify", version.action("Notify"))
    )
    return WsdlDefinition(
        f"WsBaseNotification{version.name}",
        version.namespace,
        [producer, manager, consumer],
        service_address=address,
    )


def wsdl_for_converged_source(*, address: Optional[str] = None) -> WsdlDefinition:
    """The WS-EventNotification prototype WSDL (union port type)."""
    from repro.convergence.profile import WSEN_NS

    prefix = "wsen"

    def op(local: str, one_way: bool = False) -> WsdlOperation:
        if one_way:
            return WsdlOperation(local, f"{prefix}:{local}", f"{WSEN_NS}/{local}")
        return WsdlOperation(
            local,
            f"{prefix}:{local}",
            f"{WSEN_NS}/{local}",
            f"{prefix}:{local}Response",
            f"{WSEN_NS}/{local}Response",
        )

    source = WsdlPortType("EventNotificationSource")
    source.operations = [op("Subscribe"), op("GetCurrentMessage")]
    manager = WsdlPortType("SubscriptionManager")
    manager.operations = [
        op("Renew"),
        op("GetStatus"),
        op("Unsubscribe"),
        op("PauseSubscription"),
        op("ResumeSubscription"),
        op("Pull"),
    ]
    consumer = WsdlPortType("EventNotificationConsumer")
    consumer.operations = [op("Notify", one_way=True), op("SubscriptionEnd", one_way=True)]
    return WsdlDefinition(
        "WsEventNotificationDraft", WSEN_NS, [source, manager, consumer], service_address=address
    )
