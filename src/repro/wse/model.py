"""Subscription state shared by the WS-Eventing source and manager."""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Optional

from repro.filters.base import Filter, FilterContext
from repro.qos.properties import QosProfile
from repro.transport.clock import VirtualClock
from repro.wsa.epr import EndpointReference
from repro.wse.versions import WseVersion
from repro.xmlkit.element import XElem


class DeliveryMode(Enum):
    """How notifications reach the sink."""

    PUSH = "Push"
    PULL = "Pull"
    WRAPPED = "Wrap"

    def uri(self, version: WseVersion) -> str:
        return f"{version.namespace}/DeliveryModes/{self.value}"

    @classmethod
    def from_uri(cls, uri: str, version: WseVersion) -> "DeliveryMode":
        for mode in cls:
            if mode.uri(version) == uri:
                return mode
        raise ValueError(f"unknown delivery mode URI: {uri!r}")


class SubscriptionEndCode(Enum):
    """Status codes carried by a SubscriptionEnd message."""

    DELIVERY_FAILURE = "DeliveryFailure"
    SOURCE_SHUTTING_DOWN = "SourceShuttingDown"
    SOURCE_CANCELING = "SourceCanceling"


@dataclass
class WseSubscription:
    """One live subscription at an event source."""

    id: str
    version: WseVersion
    notify_to: Optional[EndpointReference]  # None in pull mode
    mode: DeliveryMode
    filter: Filter
    #: absolute virtual-clock expiry; None = never expires
    expires: Optional[float] = None
    end_to: Optional[EndpointReference] = None
    #: pending messages (pull mode queue / wrapped mode batch)
    queue: list[XElem] = field(default_factory=list)
    ended: bool = False
    #: the QoS profile this consumer requested at Subscribe (accepted by
    #: the adaptive controller); None = broker defaults
    qos: Optional[QosProfile] = None

    def is_expired(self, now: float) -> bool:
        return self.expires is not None and now >= self.expires

    def accepts(self, context: FilterContext) -> bool:
        return self.filter.matches(context)


class SubscriptionStore:
    """Subscriptions held by one event source, with soft-state expiry.

    ``on_end`` callbacks let the source emit SubscriptionEnd messages when a
    subscription dies for a reason other than Unsubscribe (expiry sweep,
    source shutdown, delivery failure) — the paper's Table 2 row
    "SubscriptionEnd".
    """

    def __init__(self, clock: VirtualClock, prefix: str = "wse-sub") -> None:
        self.clock = clock
        self._prefix = prefix
        self._serial = 0
        self._subscriptions: dict[str, WseSubscription] = {}
        # earliest-expiry heap of (expires, id); entries go stale when a
        # subscription is removed or renewed, and sweep_due skips them
        self._expiry_heap: list[tuple[float, str]] = []
        #: index-maintenance hooks fired on every create / removal (sweeps
        #: included), so the event source's topic index never goes stale
        self.on_created: list[Callable[[WseSubscription], None]] = []
        self.on_removed: list[Callable[[WseSubscription], None]] = []

    def create(self, *, sub_id: Optional[str] = None, **kwargs) -> WseSubscription:
        if sub_id is None:
            self._serial += 1
            sub_id = f"{self._prefix}-{self._serial}"
        else:
            # forced id (log replay): never re-mint it for a later create
            if sub_id in self._subscriptions:
                raise ValueError(f"subscription id {sub_id!r} already exists")
            tail = sub_id.rsplit("-", 1)[-1]
            if sub_id.startswith(f"{self._prefix}-") and tail.isdigit():
                self._serial = max(self._serial, int(tail))
        subscription = WseSubscription(id=sub_id, **kwargs)
        self._subscriptions[sub_id] = subscription
        self._note_expiry(subscription)
        for hook in self.on_created:
            hook(subscription)
        return subscription

    def _note_expiry(self, subscription: WseSubscription) -> None:
        if subscription.expires is not None:
            heapq.heappush(self._expiry_heap, (subscription.expires, subscription.id))

    def update_expiry(self, subscription: WseSubscription, expires: Optional[float]) -> None:
        """Renew: change ``expires`` and keep the expiry heap aware of it."""
        subscription.expires = expires
        self._note_expiry(subscription)

    def get(self, sub_id: str) -> Optional[WseSubscription]:
        subscription = self._subscriptions.get(sub_id)
        if subscription is None or subscription.is_expired(self.clock.now()):
            return None
        return subscription

    def remove(self, sub_id: str) -> Optional[WseSubscription]:
        subscription = self._subscriptions.pop(sub_id, None)
        if subscription is not None:
            for hook in self.on_removed:
                hook(subscription)
        return subscription

    def live(self) -> list[WseSubscription]:
        now = self.clock.now()
        return [s for s in self._subscriptions.values() if not s.is_expired(now)]

    def has_subscriptions(self) -> bool:
        """Whether any subscription (live or not-yet-swept) is present —
        the broker's zero-subscription fast-path check, O(1)."""
        return bool(self._subscriptions)

    def sweep_expired(self) -> list[WseSubscription]:
        """Drop (and return) expired subscriptions (full scan)."""
        now = self.clock.now()
        expired = [s for s in self._subscriptions.values() if s.is_expired(now)]
        for subscription in expired:
            del self._subscriptions[subscription.id]
            for hook in self.on_removed:
                hook(subscription)
        return expired

    def sweep_due(self) -> list[WseSubscription]:
        """Drop expired subscriptions by popping the expiry heap — amortized
        O(expired log n) per call; the publication hot path uses this."""
        now = self.clock.now()
        heap = self._expiry_heap
        expired: list[WseSubscription] = []
        while heap and heap[0][0] <= now:
            when, sub_id = heapq.heappop(heap)
            subscription = self._subscriptions.get(sub_id)
            if subscription is None or subscription.expires != when:
                continue  # stale entry (removed / renewed)
            del self._subscriptions[sub_id]
            for hook in self.on_removed:
                hook(subscription)
            expired.append(subscription)
        return expired

    def __len__(self) -> int:
        return len(self.live())
