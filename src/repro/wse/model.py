"""Subscription state shared by the WS-Eventing source and manager."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Optional

from repro.filters.base import Filter, FilterContext
from repro.transport.clock import VirtualClock
from repro.wsa.epr import EndpointReference
from repro.wse.versions import WseVersion
from repro.xmlkit.element import XElem


class DeliveryMode(Enum):
    """How notifications reach the sink."""

    PUSH = "Push"
    PULL = "Pull"
    WRAPPED = "Wrap"

    def uri(self, version: WseVersion) -> str:
        return f"{version.namespace}/DeliveryModes/{self.value}"

    @classmethod
    def from_uri(cls, uri: str, version: WseVersion) -> "DeliveryMode":
        for mode in cls:
            if mode.uri(version) == uri:
                return mode
        raise ValueError(f"unknown delivery mode URI: {uri!r}")


class SubscriptionEndCode(Enum):
    """Status codes carried by a SubscriptionEnd message."""

    DELIVERY_FAILURE = "DeliveryFailure"
    SOURCE_SHUTTING_DOWN = "SourceShuttingDown"
    SOURCE_CANCELING = "SourceCanceling"


@dataclass
class WseSubscription:
    """One live subscription at an event source."""

    id: str
    version: WseVersion
    notify_to: Optional[EndpointReference]  # None in pull mode
    mode: DeliveryMode
    filter: Filter
    #: absolute virtual-clock expiry; None = never expires
    expires: Optional[float] = None
    end_to: Optional[EndpointReference] = None
    #: pending messages (pull mode queue / wrapped mode batch)
    queue: list[XElem] = field(default_factory=list)
    ended: bool = False

    def is_expired(self, now: float) -> bool:
        return self.expires is not None and now >= self.expires

    def accepts(self, context: FilterContext) -> bool:
        return self.filter.matches(context)


class SubscriptionStore:
    """Subscriptions held by one event source, with soft-state expiry.

    ``on_end`` callbacks let the source emit SubscriptionEnd messages when a
    subscription dies for a reason other than Unsubscribe (expiry sweep,
    source shutdown, delivery failure) — the paper's Table 2 row
    "SubscriptionEnd".
    """

    def __init__(self, clock: VirtualClock, prefix: str = "wse-sub") -> None:
        self.clock = clock
        self._prefix = prefix
        self._counter = itertools.count(1)
        self._subscriptions: dict[str, WseSubscription] = {}

    def create(self, **kwargs) -> WseSubscription:
        sub_id = f"{self._prefix}-{next(self._counter)}"
        subscription = WseSubscription(id=sub_id, **kwargs)
        self._subscriptions[sub_id] = subscription
        return subscription

    def get(self, sub_id: str) -> Optional[WseSubscription]:
        subscription = self._subscriptions.get(sub_id)
        if subscription is None or subscription.is_expired(self.clock.now()):
            return None
        return subscription

    def remove(self, sub_id: str) -> Optional[WseSubscription]:
        return self._subscriptions.pop(sub_id, None)

    def live(self) -> list[WseSubscription]:
        now = self.clock.now()
        return [s for s in self._subscriptions.values() if not s.is_expired(now)]

    def sweep_expired(self) -> list[WseSubscription]:
        """Drop (and return) expired subscriptions."""
        now = self.clock.now()
        expired = [s for s in self._subscriptions.values() if s.is_expired(now)]
        for subscription in expired:
            del self._subscriptions[subscription.id]
        return expired

    def __len__(self) -> int:
        return len(self.live())
