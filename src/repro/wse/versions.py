"""WS-Eventing version profiles and feature flags.

The flags mirror the rows of the paper's Table 1; the comparison engine
probes running implementations where possible and reads these flags where a
feature is structural (e.g. which WS-Addressing version the namespace binds
to).
"""

from __future__ import annotations

from enum import Enum

from repro.wsa.versions import WsaVersion
from repro.xmlkit.names import Namespaces, QName


class WseVersion(Enum):
    """The two released WS-Eventing specifications."""

    V2004_01 = Namespaces.WSE_2004_01
    V2004_08 = Namespaces.WSE_2004_08

    @property
    def namespace(self) -> str:
        return self.value

    def qname(self, local: str) -> QName:
        return QName(self.namespace, local)

    def action(self, local: str) -> str:
        return f"{self.namespace}/{local}"

    @property
    def wsa_version(self) -> WsaVersion:
        """Table 1's final row: 01/2004 binds WSA 2003/03, 08/2004 binds 2004/08."""
        if self is WseVersion.V2004_01:
            return WsaVersion.V2003_03
        return WsaVersion.V2004_08

    # --- Table 1 feature flags ------------------------------------------------

    @property
    def separate_subscription_manager(self) -> bool:
        """08/2004 split the subscription manager from the event source."""
        return self is WseVersion.V2004_08

    @property
    def separate_subscriber(self) -> bool:
        """08/2004 also separates the subscriber role from the event sink."""
        return self is WseVersion.V2004_08

    @property
    def has_get_status(self) -> bool:
        """GetStatus was added in 08/2004."""
        return self is WseVersion.V2004_08

    @property
    def subscription_id_in_epr(self) -> bool:
        """08/2004 returns the id as a ReferenceParameter of the manager EPR;
        01/2004 used a bare ``wse:Id`` element."""
        return self is WseVersion.V2004_08

    @property
    def supports_wrapped_delivery(self) -> bool:
        return self is WseVersion.V2004_08

    @property
    def supports_pull_delivery(self) -> bool:
        return self is WseVersion.V2004_08

    @property
    def supports_duration_expiry(self) -> bool:
        return True  # both versions

    @property
    def defines_xpath_dialect(self) -> bool:
        return True  # both versions; XPath is the default dialect

    @property
    def has_filter_element(self) -> bool:
        return True

    @property
    def requires_wsrf(self) -> bool:
        return False

    @property
    def requires_topic(self) -> bool:
        return False

    @property
    def defines_pause_resume(self) -> bool:
        return False

    @property
    def defines_get_current_message(self) -> bool:
        return False

    @property
    def defines_wrapped_format(self) -> bool:
        """WSE 08/2004 allows wrapped mode but leaves the format undefined."""
        return False

    @property
    def separates_producer_and_publisher(self) -> bool:
        return False  # the event source is both, in both versions (Fig. 1)

    @property
    def defines_pull_point_interface(self) -> bool:
        return False

    @property
    def pull_mode_in_subscription(self) -> bool:
        """08/2004 selects pull via the Delivery extension point of Subscribe
        (WSN instead requires a pre-created PullPoint)."""
        return self is WseVersion.V2004_08

    @property
    def requires_status_query(self) -> bool:
        """Table 1 row "Require Getstatus": the paper marks both WSE
        versions Yes (status querying is mandatory for managers where the
        mechanism exists), and only WSN 1.3 No."""
        return True

    @property
    def requires_subscription_end(self) -> bool:
        return True

    @property
    def defines_broker(self) -> bool:
        return False
