"""WS-Eventing message construction and parsing, per version.

Version differences reproduced here (paper section IV):

- 01/2004 identifies subscriptions with a bare ``wse:Id`` element in message
  bodies, and its SubscribeResponse has no SubscriptionManager EPR (the event
  source *is* the manager).
- 08/2004 returns a ``wse:SubscriptionManager`` endpoint reference whose
  ``wse:Identifier`` ReferenceParameter carries the subscription id — the
  "treat subscriptions as resources" style adopted from WS-Notification.
- The Delivery element's ``Mode`` attribute is the extension point through
  which 08/2004 selects pull or wrapped delivery; 01/2004 rejects non-push
  modes.

Filter expressions may use namespace prefixes.  Real messages declare those
prefixes with ``xmlns:`` attributes, which XML parsers consume during name
resolution; to keep prefix bindings intact across our wire round-trip, the
Filter element carries them as attributes in a private namespace
(``ns-<prefix>``).  ``encode_filter``/``decode_filter`` hide this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.qos.properties import QosError, QosProfile
from repro.qos.wire import find_profile, profile_to_element
from repro.soap.fault import FaultCode, SoapFault
from repro.wsa.epr import EndpointReference
from repro.wse.model import DeliveryMode, SubscriptionEndCode
from repro.wse.versions import WseVersion
from repro.xmlkit.element import XElem, text_element
from repro.xmlkit.names import Namespaces, QName

#: private namespace for carrying filter prefix bindings through the wire
FILTER_NS_BINDING = "http://repro.invalid/xmlns-binding"


def encode_filter_namespaces(filter_elem: XElem, namespaces: dict[str, str]) -> None:
    for prefix, uri in namespaces.items():
        filter_elem.attrs[QName(FILTER_NS_BINDING, f"ns-{prefix}")] = uri


def decode_filter_namespaces(filter_elem: XElem) -> dict[str, str]:
    namespaces: dict[str, str] = {}
    for attr, uri in filter_elem.attrs.items():
        if attr.namespace == FILTER_NS_BINDING and attr.local.startswith("ns-"):
            namespaces[attr.local[3:]] = uri
    return namespaces


@dataclass
class SubscribeRequest:
    """Parsed content of a wse:Subscribe body."""

    mode: DeliveryMode
    notify_to: Optional[EndpointReference]
    end_to: Optional[EndpointReference]
    expires_text: Optional[str]
    filter_expression: Optional[str]
    filter_dialect: Optional[str]
    filter_namespaces: dict[str, str] = field(default_factory=dict)
    #: requested QoS profile (the qos:Profile extension element), if any
    qos: Optional[QosProfile] = None


def build_subscribe(
    version: WseVersion,
    *,
    mode: DeliveryMode = DeliveryMode.PUSH,
    notify_to: Optional[EndpointReference] = None,
    end_to: Optional[EndpointReference] = None,
    expires_text: Optional[str] = None,
    filter_expression: Optional[str] = None,
    filter_dialect: Optional[str] = None,
    filter_namespaces: Optional[dict[str, str]] = None,
    qos: Optional[QosProfile] = None,
) -> XElem:
    wsa = version.wsa_version
    subscribe = XElem(version.qname("Subscribe"))
    if end_to is not None:
        subscribe.append(end_to.to_element(wsa, version.qname("EndTo")))
    delivery = XElem(version.qname("Delivery"))
    if mode is not DeliveryMode.PUSH:
        delivery.attrs[QName("", "Mode")] = mode.uri(version)
    if notify_to is not None:
        delivery.append(notify_to.to_element(wsa, version.qname("NotifyTo")))
    subscribe.append(delivery)
    if expires_text is not None:
        subscribe.append(text_element(version.qname("Expires"), expires_text))
    if filter_expression is not None:
        filter_elem = text_element(version.qname("Filter"), filter_expression)
        filter_elem.attrs[QName("", "Dialect")] = (
            filter_dialect or Namespaces.DIALECT_XPATH10
        )
        if filter_namespaces:
            encode_filter_namespaces(filter_elem, filter_namespaces)
        subscribe.append(filter_elem)
    if qos is not None:
        # WS-Eventing's Subscribe is openly extensible; the profile rides
        # as a direct child element in the qos namespace
        subscribe.append(profile_to_element(qos))
    return subscribe


def parse_subscribe(body: XElem, version: WseVersion) -> SubscribeRequest:
    if body.name != version.qname("Subscribe"):
        raise SoapFault(
            FaultCode.SENDER,
            f"expected {version.qname('Subscribe')}, got {body.name}",
        )
    wsa = version.wsa_version
    delivery = body.find(version.qname("Delivery"))
    if delivery is None:
        raise SoapFault(FaultCode.SENDER, "Subscribe has no Delivery element")
    mode_uri = delivery.attrs.get(QName("", "Mode"))
    if mode_uri is None:
        mode = DeliveryMode.PUSH
    else:
        try:
            mode = DeliveryMode.from_uri(mode_uri, version)
        except ValueError as exc:
            raise SoapFault(
                FaultCode.SENDER,
                str(exc),
                subcode=version.qname("DeliveryModeRequestedUnavailable"),
            ) from exc
    notify_elem = delivery.find(version.qname("NotifyTo"))
    notify_to = (
        EndpointReference.from_element(notify_elem, wsa) if notify_elem is not None else None
    )
    end_elem = body.find(version.qname("EndTo"))
    end_to = EndpointReference.from_element(end_elem, wsa) if end_elem is not None else None
    expires_elem = body.find(version.qname("Expires"))
    expires_text = expires_elem.full_text().strip() if expires_elem is not None else None
    filter_elem = body.find(version.qname("Filter"))
    if filter_elem is not None:
        expression = filter_elem.full_text().strip()
        dialect = filter_elem.attrs.get(QName("", "Dialect"), Namespaces.DIALECT_XPATH10)
        namespaces = decode_filter_namespaces(filter_elem)
    else:
        expression = dialect = None
        namespaces = {}
    try:
        qos = find_profile(body)
    except QosError as exc:
        raise SoapFault(
            FaultCode.SENDER,
            f"unsupported QoS: {exc}",
            subcode=version.qname("UnsupportedQoS"),
        ) from exc
    return SubscribeRequest(
        mode, notify_to, end_to, expires_text, expression, dialect, namespaces,
        qos=qos,
    )


# --- subscription identity ---------------------------------------------------


def identifier_param(version: WseVersion, sub_id: str) -> XElem:
    return text_element(version.qname("Identifier"), sub_id)


def build_subscribe_response(
    version: WseVersion,
    *,
    sub_id: str,
    manager_address: str,
    expires_text: str,
) -> XElem:
    response = XElem(version.qname("SubscribeResponse"))
    if version.subscription_id_in_epr:
        manager = EndpointReference(manager_address)
        manager.with_parameter(identifier_param(version, sub_id))
        response.append(
            manager.to_element(version.wsa_version, version.qname("SubscriptionManager"))
        )
    else:
        # 01/2004: a bare Id element; the source itself is the manager
        response.append(text_element(version.qname("Id"), sub_id))
    response.append(text_element(version.qname("Expires"), expires_text))
    return response


@dataclass
class SubscribeResult:
    manager: EndpointReference
    sub_id: str
    expires_text: str


def parse_subscribe_response(
    body: XElem, version: WseVersion, source_address: str
) -> SubscribeResult:
    if body.name != version.qname("SubscribeResponse"):
        raise SoapFault(FaultCode.SENDER, f"unexpected response {body.name}")
    expires_elem = body.find(version.qname("Expires"))
    expires_text = expires_elem.full_text().strip() if expires_elem is not None else ""
    if version.subscription_id_in_epr:
        manager_elem = body.require(version.qname("SubscriptionManager"))
        manager = EndpointReference.from_element(manager_elem, version.wsa_version)
        sub_id = manager.parameter_text(version.qname("Identifier")) or ""
    else:
        sub_id = body.require(version.qname("Id")).full_text().strip()
        manager = EndpointReference(source_address)
    return SubscribeResult(manager, sub_id, expires_text)


def subscription_id_from_request(
    version: WseVersion, body: XElem, echoed_headers: list[XElem]
) -> str:
    """Recover the subscription id from a manager-bound request.

    08/2004: the ``wse:Identifier`` reference parameter echoed as a header.
    01/2004: a ``wse:Id`` element inside the request body.
    """
    if version.subscription_id_in_epr:
        for header in echoed_headers:
            if header.name == version.qname("Identifier"):
                return header.full_text().strip()
        raise SoapFault(FaultCode.SENDER, "missing wse:Identifier reference parameter")
    id_elem = body.find(version.qname("Id"))
    if id_elem is None:
        raise SoapFault(FaultCode.SENDER, "missing wse:Id element")
    return id_elem.full_text().strip()


def attach_subscription_id(version: WseVersion, body: XElem, sub_id: str) -> None:
    """01/2004 style: place the id inside the request body."""
    if not version.subscription_id_in_epr:
        body.append(text_element(version.qname("Id"), sub_id))


# --- Renew / GetStatus / Unsubscribe ---------------------------------------------


def build_renew(version: WseVersion, expires_text: Optional[str]) -> XElem:
    renew = XElem(version.qname("Renew"))
    if expires_text is not None:
        renew.append(text_element(version.qname("Expires"), expires_text))
    return renew


def build_renew_response(version: WseVersion, expires_text: str) -> XElem:
    response = XElem(version.qname("RenewResponse"))
    response.append(text_element(version.qname("Expires"), expires_text))
    return response


def build_get_status(version: WseVersion) -> XElem:
    if not version.has_get_status:
        raise SoapFault(
            FaultCode.SENDER,
            "GetStatus is not defined in WS-Eventing 01/2004",
            subcode=version.qname("ActionNotSupported"),
        )
    return XElem(version.qname("GetStatus"))


def build_get_status_response(version: WseVersion, expires_text: str) -> XElem:
    response = XElem(version.qname("GetStatusResponse"))
    response.append(text_element(version.qname("Expires"), expires_text))
    return response


def build_unsubscribe(version: WseVersion) -> XElem:
    return XElem(version.qname("Unsubscribe"))


def build_unsubscribe_response(version: WseVersion) -> XElem:
    return XElem(version.qname("UnsubscribeResponse"))


def expires_from_body(body: XElem, version: WseVersion) -> Optional[str]:
    expires = body.find(version.qname("Expires"))
    return expires.full_text().strip() if expires is not None else None


# --- SubscriptionEnd ----------------------------------------------------------


def build_subscription_end(
    version: WseVersion,
    *,
    manager_address: str,
    sub_id: str,
    code: SubscriptionEndCode,
    reason: str = "",
) -> XElem:
    end = XElem(version.qname("SubscriptionEnd"))
    manager = EndpointReference(manager_address)
    manager.with_parameter(identifier_param(version, sub_id))
    end.append(manager.to_element(version.wsa_version, version.qname("SubscriptionManager")))
    end.append(text_element(version.qname("Status"), f"{version.namespace}/{code.value}"))
    if reason:
        end.append(text_element(version.qname("Reason"), reason))
    return end


@dataclass
class SubscriptionEnd:
    sub_id: str
    code: SubscriptionEndCode
    reason: str


def parse_subscription_end(body: XElem, version: WseVersion) -> SubscriptionEnd:
    manager_elem = body.require(version.qname("SubscriptionManager"))
    manager = EndpointReference.from_element(manager_elem, version.wsa_version)
    sub_id = manager.parameter_text(version.qname("Identifier")) or ""
    status_text = body.require(version.qname("Status")).full_text().strip()
    code = SubscriptionEndCode.SOURCE_CANCELING
    for candidate in SubscriptionEndCode:
        if status_text.endswith(candidate.value):
            code = candidate
            break
    reason_elem = body.find(version.qname("Reason"))
    reason = reason_elem.full_text().strip() if reason_elem is not None else ""
    return SubscriptionEnd(sub_id, code, reason)


# --- pull delivery (08/2004 extension; format is our concretization) ---------------


def build_pull(version: WseVersion, max_messages: int = 0) -> XElem:
    pull = XElem(version.qname("Pull"))
    if max_messages:
        pull.append(text_element(version.qname("MaxMessages"), str(max_messages)))
    return pull


def build_pull_response(version: WseVersion, messages: list[XElem]) -> XElem:
    response = XElem(version.qname("PullResponse"))
    for message in messages:
        # frozen messages are fan-out-shared and safe to alias
        response.append(message if message.frozen else message.copy())
    return response


def parse_pull_response(body: XElem, version: WseVersion) -> list[XElem]:
    if body.name != version.qname("PullResponse"):
        raise SoapFault(FaultCode.SENDER, f"unexpected response {body.name}")
    return [child.copy() for child in body.elements()]


# --- wrapped delivery (format undefined by the spec; ours documented) ----------------


def build_wrapped_notification(version: WseVersion, messages: list[XElem]) -> XElem:
    """WSE 08/2004 permits wrapped mode but 'does not specify message formats
    of the wrapped notification messages' (paper section IV) — this local
    wrapper element is our documented concretization."""
    wrapper = XElem(version.qname("Notifications"))
    for message in messages:
        wrapper.append(message if message.frozen else message.copy())
    return wrapper


def parse_wrapped_notification(body: XElem, version: WseVersion) -> list[XElem]:
    return [child.copy() for child in body.elements()]
