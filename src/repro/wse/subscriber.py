"""The WS-Eventing subscriber: the client role that manages subscriptions.

08/2004 separates this role from the event sink (Table 1 row 2); the sink
only receives, while the subscriber knows source/manager locations and sends
Subscribe/Renew/GetStatus/Unsubscribe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.soap.envelope import SoapVersion
from repro.soap.fault import FaultCode, SoapFault
from repro.transport.endpoint import SoapClient
from repro.transport.network import PUBLIC_ZONE, SimulatedNetwork
from repro.wsa.epr import EndpointReference
from repro.wse import messages
from repro.wse.model import DeliveryMode
from repro.wse.versions import WseVersion
from repro.xmlkit.element import XElem


@dataclass
class SubscriptionHandle:
    """Everything a client needs to manage one subscription."""

    version: WseVersion
    manager: EndpointReference
    sub_id: str
    expires_text: str


class WseSubscriber:
    """Client-side API over the WS-Eventing message exchanges."""

    def __init__(
        self,
        network: SimulatedNetwork,
        *,
        version: WseVersion = WseVersion.V2004_08,
        zone: str = PUBLIC_ZONE,
    ) -> None:
        self.version = version
        self._client = SoapClient(
            network, zone=zone, wsa_version=version.wsa_version, soap_version=SoapVersion.V11
        )

    # --- subscribe --------------------------------------------------------------

    def subscribe(
        self,
        source: EndpointReference,
        *,
        notify_to: Optional[EndpointReference] = None,
        mode: DeliveryMode = DeliveryMode.PUSH,
        end_to: Optional[EndpointReference] = None,
        expires: Optional[str] = None,
        filter: Optional[str] = None,
        filter_dialect: Optional[str] = None,
        filter_namespaces: Optional[dict[str, str]] = None,
        qos=None,
    ) -> SubscriptionHandle:
        body = messages.build_subscribe(
            self.version,
            mode=mode,
            notify_to=notify_to,
            end_to=end_to,
            expires_text=expires,
            filter_expression=filter,
            filter_dialect=filter_dialect,
            filter_namespaces=filter_namespaces,
            qos=qos,
        )
        reply = self._client.call(source, self.version.action("Subscribe"), [body])
        if reply is None:
            raise SoapFault(FaultCode.RECEIVER, "no response to Subscribe")
        result = messages.parse_subscribe_response(
            reply.body_element(), self.version, source.address
        )
        return SubscriptionHandle(self.version, result.manager, result.sub_id, result.expires_text)

    # --- management -------------------------------------------------------------

    def _manager_call(self, handle: SubscriptionHandle, action_local: str, body: XElem):
        target = self._manager_target(handle)
        messages.attach_subscription_id(self.version, body, handle.sub_id)
        reply = self._client.call(target, self.version.action(action_local), [body])
        if reply is None:
            raise SoapFault(FaultCode.RECEIVER, f"no response to {action_local}")
        return reply.body_element()

    def _manager_target(self, handle: SubscriptionHandle) -> EndpointReference:
        if self.version.subscription_id_in_epr:
            return handle.manager  # identifier travels as a reference parameter
        return EndpointReference(handle.manager.address)  # id travels in the body

    def renew(self, handle: SubscriptionHandle, expires: Optional[str] = None) -> str:
        body = self._manager_call(handle, "Renew", messages.build_renew(self.version, expires))
        new_expires = messages.expires_from_body(body, self.version) or ""
        handle.expires_text = new_expires
        return new_expires

    def get_status(self, handle: SubscriptionHandle) -> str:
        request = messages.build_get_status(self.version)  # faults on 01/2004
        body = self._manager_call(handle, "GetStatus", request)
        return messages.expires_from_body(body, self.version) or ""

    def unsubscribe(self, handle: SubscriptionHandle) -> None:
        self._manager_call(handle, "Unsubscribe", messages.build_unsubscribe(self.version))

    def pull(self, handle: SubscriptionHandle, max_messages: int = 0) -> list[XElem]:
        """Retrieve queued messages for a pull-mode subscription."""
        if not self.version.supports_pull_delivery:
            raise SoapFault(
                FaultCode.SENDER,
                "pull delivery is not defined in WS-Eventing 01/2004",
                subcode=self.version.qname("DeliveryModeRequestedUnavailable"),
            )
        body = self._manager_call(
            handle, "Pull", messages.build_pull(self.version, max_messages)
        )
        return [child.copy() for child in body.elements()]
