"""The WS-Eventing event sink: the endpoint notifications are pushed to.

Per the paper's architecture comparison, the sink is deliberately dumb: it
"only needs to handle received messages" — subscription creation lives in the
separate subscriber role (:mod:`repro.wse.subscriber`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.soap.envelope import SoapEnvelope
from repro.transport.endpoint import SoapEndpoint
from repro.transport.network import PUBLIC_ZONE, SimulatedNetwork
from repro.wsa.epr import EndpointReference
from repro.wsa.headers import MessageHeaders
from repro.wse import messages
from repro.wse.messages import SubscriptionEnd
from repro.wse.versions import WseVersion
from repro.xmlkit.element import XElem


@dataclass
class ReceivedNotification:
    action: str
    payload: XElem
    wrapped: bool = False


class EventSink:
    """Receives raw and wrapped notifications plus SubscriptionEnd notices."""

    def __init__(
        self,
        network: SimulatedNetwork,
        address: str,
        *,
        version: WseVersion = WseVersion.V2004_08,
        zone: str = PUBLIC_ZONE,
    ) -> None:
        self.version = version
        self.endpoint = SoapEndpoint(network, address, zone=zone)
        self.received: list[ReceivedNotification] = []
        self.subscription_ends: list[SubscriptionEnd] = []
        self.endpoint.on_action(
            version.action("SubscriptionEnd"), self._handle_subscription_end
        )
        self.endpoint.on_action(version.action("Notifications"), self._handle_wrapped)
        self.endpoint.on_any(self._handle_notification)

    @property
    def address(self) -> str:
        return self.endpoint.address

    def epr(self) -> EndpointReference:
        return EndpointReference(self.address)

    def close(self) -> None:
        self.endpoint.close()

    def payloads(self) -> list[XElem]:
        return [item.payload for item in self.received]

    # --- handlers ------------------------------------------------------------

    def _handle_notification(
        self, envelope: SoapEnvelope, headers: MessageHeaders
    ) -> Optional[SoapEnvelope]:
        self.received.append(ReceivedNotification(headers.action, envelope.body_element()))
        return None

    def _handle_wrapped(
        self, envelope: SoapEnvelope, headers: MessageHeaders
    ) -> Optional[SoapEnvelope]:
        for payload in messages.parse_wrapped_notification(envelope.body_element(), self.version):
            self.received.append(ReceivedNotification(headers.action, payload, wrapped=True))
        return None

    def _handle_subscription_end(
        self, envelope: SoapEnvelope, headers: MessageHeaders
    ) -> Optional[SoapEnvelope]:
        self.subscription_ends.append(
            messages.parse_subscription_end(envelope.body_element(), self.version)
        )
        return None
