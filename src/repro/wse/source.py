"""The WS-Eventing event source (and its subscription manager).

In WS-Eventing the event source is both the notification producer and the
publisher (the paper's Fig. 1: Subscribe arrives at the source, notifications
leave from it).  In 08/2004 the *subscription manager* — the endpoint that
handles Renew/GetStatus/Unsubscribe — is a separate entity; in 01/2004 those
operations land on the event source itself.  Both layouts are implemented
here, switched by the version profile.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.delivery.limits import parse_drain_limit
from repro.delivery.outcome import DeliveryFailure, record_failure
from repro.delivery.policy import BatchingPolicy
from repro.delivery.task import DeliveryItem
from repro.qos.adaptive import validate_supported
from repro.qos.properties import DiscardPolicy, QosError, QosProfile
from repro.transport.clock import ClockScheduler
from repro.filters.base import AcceptAllFilter, Filter, FilterContext, FilterError
from repro.obs.instrument import BoundCounters
from repro.filters.content import MessageContentFilter
from repro.filters.topics import TopicSubscriptionIndex, topic_expression_of
from repro.soap.envelope import SoapEnvelope, SoapVersion
from repro.soap.fault import FaultCode, SoapFault
from repro.transport.endpoint import SoapClient, SoapEndpoint
from repro.transport.network import NetworkError, SimulatedNetwork
from repro.wsa.epr import EndpointReference
from repro.wsa.headers import MessageHeaders, apply_headers
from repro.wse import messages
from repro.wse.model import (
    DeliveryMode,
    SubscriptionEndCode,
    SubscriptionStore,
    WseSubscription,
)
from repro.wse.versions import WseVersion
from repro.xmlkit.element import XElem
from repro.xmlkit.names import Namespaces, QName
from repro.util.xstime import format_datetime, parse_expires

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.delivery.manager import DeliveryManager

#: default action URI stamped on raw (unwrapped) notification messages
DEFAULT_NOTIFY_ACTION = "http://repro.invalid/wse/Notify"


class EventSource:
    """A WS-Eventing event source bound to the simulated network."""

    def __init__(
        self,
        network: SimulatedNetwork,
        address: str,
        *,
        version: WseVersion = WseVersion.V2004_08,
        manager_address: Optional[str] = None,
        default_lifetime: Optional[float] = 3600.0,
        max_lifetime: Optional[float] = None,
        wrapped_batch_size: int = 10,
        producer_properties: Optional[dict[str, str]] = None,
        topic_header: Optional["QName"] = None,
        delivery_retries: int = 0,
        delivery_manager: Optional["DeliveryManager"] = None,
        debug_linear_match: bool = False,
        batching: Optional[BatchingPolicy] = None,
    ) -> None:
        self.network = network
        self.version = version
        self._version_tag = version.name.lower()  # metric/span label form
        #: pre-bound fan-out counters (see repro.obs.instrument.BoundCounters)
        self._bound_counters = BoundCounters()
        self.clock = network.clock
        self.default_lifetime = default_lifetime
        self.max_lifetime = max_lifetime
        self.wrapped_batch_size = wrapped_batch_size
        self.producer_properties = dict(producer_properties or {})
        # mediation hook (section V.4 category 6): WSE has no body slot for a
        # topic, so when set, published topics ride as this SOAP header
        self.topic_header = topic_header
        #: transient failures (lost messages) are retried this many times
        #: before the subscription is ended with DeliveryFailure
        self.delivery_retries = delivery_retries
        #: when set, push delivery routes through the reliable store-and-
        #: forward pipeline instead of the immediate best-effort attempt
        self.delivery_manager = delivery_manager
        #: wrapped-mode batching policy: ``max_batch`` replaces the size
        #: trigger, a positive ``window`` flushes partial batches on the
        #: virtual clock instead of waiting for explicit ``flush()``
        self.batching = batching
        self._wrapped_deadlines: dict[str, float] = {}
        self._batch_scheduler: Optional[ClockScheduler] = None
        if batching is not None and batching.window > 0:
            self._batch_scheduler = (
                delivery_manager.scheduler
                if delivery_manager is not None
                else ClockScheduler(network.clock)
            )
        #: every failed outbound send, recorded (see repro.delivery.outcome)
        self.delivery_failures: list[DeliveryFailure] = []
        #: escape hatch: bypass the topic index / frozen-payload fast path and
        #: match with the original linear scan (differential tests diff the two)
        self.debug_linear_match = debug_linear_match
        self.store = SubscriptionStore(self.clock)
        #: lifecycle listeners (event, subscription, detail): "renewed" and
        #: "pulled" — creations/removals already flow via the store's hooks
        self.lifecycle_listeners: list[
            Callable[[str, WseSubscription, dict], None]
        ] = []
        #: consumed by the next _handle_subscribe (log replay pins the id)
        self._forced_sub_id: Optional[str] = None
        # topic index over the store, kept fresh via the store's own hooks so
        # direct store manipulation (tests, sweeps) can never leave it stale
        self._topic_index = TopicSubscriptionIndex()
        self.store.on_created.append(
            lambda s: self._topic_index.add(s.id, topic_expression_of(s.filter))
        )
        self.store.on_removed.append(lambda s: self._topic_index.discard(s.id))
        self._client = SoapClient(
            network, wsa_version=version.wsa_version, soap_version=SoapVersion.V11
        )
        self.endpoint = SoapEndpoint(network, address)
        self.endpoint.on_action(version.action("Subscribe"), self._handle_subscribe)
        if version.separate_subscription_manager:
            self.manager_address = manager_address or f"{address}/subscriptions"
            self.manager_endpoint = SoapEndpoint(network, self.manager_address)
        else:
            # 01/2004: the source *is* the manager
            self.manager_address = address
            self.manager_endpoint = self.endpoint
        self._register_manager_handlers(self.manager_endpoint)
        #: SubscriptionEnd messages we emitted (observability for tests/benches)
        self.ended_subscriptions: list[tuple[str, SubscriptionEndCode]] = []

    @property
    def address(self) -> str:
        return self.endpoint.address

    def epr(self) -> EndpointReference:
        return EndpointReference(self.address)

    def wsdl(self) -> str:
        """This source's self-description as a WSDL 1.1 document."""
        from repro.wsdl.generator import wsdl_for_wse_source

        return wsdl_for_wse_source(self.version, address=self.address).to_xml()

    def close(self) -> None:
        self.endpoint.close()
        if self.manager_endpoint is not self.endpoint:
            self.manager_endpoint.close()

    # --- subscribe --------------------------------------------------------------

    def force_next_subscription_id(self, sub_id: str) -> None:
        """Pin the id the next Subscribe mints (log/journal replay)."""
        self._forced_sub_id = sub_id

    def _fire_lifecycle(self, event: str, subscription: WseSubscription, **detail) -> None:
        for listener in self.lifecycle_listeners:
            listener(event, subscription, detail)

    def _handle_subscribe(self, envelope: SoapEnvelope, headers: MessageHeaders):
        # consume the forced id up front so a faulting request cannot leak
        # it into an unrelated later subscription
        forced_sub_id, self._forced_sub_id = self._forced_sub_id, None
        request = messages.parse_subscribe(envelope.body_element(), self.version)
        if request.mode is not DeliveryMode.PUSH and not (
            self.version.supports_pull_delivery or request.mode is DeliveryMode.WRAPPED
        ):
            raise SoapFault(
                FaultCode.SENDER,
                f"delivery mode {request.mode.value} unavailable in {self.version.name}",
                subcode=self.version.qname("DeliveryModeRequestedUnavailable"),
            )
        if request.mode is DeliveryMode.WRAPPED and not self.version.supports_wrapped_delivery:
            raise SoapFault(
                FaultCode.SENDER,
                "wrapped delivery unavailable in WS-Eventing 01/2004",
                subcode=self.version.qname("DeliveryModeRequestedUnavailable"),
            )
        if request.mode is not DeliveryMode.PULL and request.notify_to is None:
            raise SoapFault(FaultCode.SENDER, "push/wrapped delivery requires NotifyTo")
        subscription_filter = self._build_filter(request)
        expires = self._grant_expiry(request.expires_text)
        qos_profile = self._accept_qos(request)
        subscription = self.store.create(
            sub_id=forced_sub_id,
            version=self.version,
            notify_to=request.notify_to,
            mode=request.mode,
            filter=subscription_filter,
            expires=expires,
            end_to=request.end_to,
            qos=qos_profile,
        )
        response_body = messages.build_subscribe_response(
            self.version,
            sub_id=subscription.id,
            manager_address=self.manager_address,
            expires_text=self._expires_text(expires),
        )
        return self._reply(headers, self.version.action("SubscribeResponse"), response_body)

    def _accept_qos(
        self, request: messages.SubscribeRequest
    ) -> Optional[QosProfile]:
        """Accept (or fault) the profile a Subscribe requested.

        CORBA's UnsupportedQoS becomes a sender fault here; an accepted
        profile is registered with the adaptive controller (when the
        delivery pipeline carries one) so the consumer's bounds and
        priority drive real delivery decisions.
        """
        if request.qos is None:
            return None
        try:
            controller = (
                self.delivery_manager.qos
                if self.delivery_manager is not None
                else None
            )
            if controller is not None and request.notify_to is not None:
                return controller.register_consumer(
                    request.notify_to.address, request.qos
                )
            return validate_supported(request.qos)
        except QosError as exc:
            raise SoapFault(
                FaultCode.SENDER,
                f"unsupported QoS: {exc}",
                subcode=self.version.qname("UnsupportedQoS"),
            ) from exc

    def _build_filter(self, request: messages.SubscribeRequest) -> Filter:
        if request.filter_expression is None:
            return AcceptAllFilter()
        dialect = request.filter_dialect or Namespaces.DIALECT_XPATH10
        if dialect != Namespaces.DIALECT_XPATH10:
            raise SoapFault(
                FaultCode.SENDER,
                f"filter dialect {dialect!r} unavailable",
                subcode=self.version.qname("FilteringRequestedUnavailable"),
            )
        try:
            return MessageContentFilter(request.filter_expression, request.filter_namespaces)
        except FilterError as exc:
            raise SoapFault(
                FaultCode.SENDER,
                str(exc),
                subcode=self.version.qname("FilteringRequestedUnavailable"),
            ) from exc

    def _grant_expiry(self, expires_text: Optional[str]) -> Optional[float]:
        now = self.clock.now()
        if expires_text is None:
            return None if self.default_lifetime is None else now + self.default_lifetime
        try:
            requested = parse_expires(expires_text, now)
        except ValueError as exc:
            raise SoapFault(
                FaultCode.SENDER,
                f"invalid expiration: {exc}",
                subcode=self.version.qname("InvalidExpirationTime"),
            ) from exc
        if requested is not None and requested <= now:
            raise SoapFault(
                FaultCode.SENDER,
                "expiration is in the past",
                subcode=self.version.qname("InvalidExpirationTime"),
            )
        if self.max_lifetime is not None:
            ceiling = now + self.max_lifetime
            if requested is None or requested > ceiling:
                return ceiling
        return requested

    def _expires_text(self, expires: Optional[float]) -> str:
        # granted expiry is reported as an absolute dateTime; "never" is
        # reported as the largest representable lease in this implementation
        if expires is None:
            return format_datetime(self.clock.now() + 10 * 365 * 86400)
        return format_datetime(expires)

    # --- manager operations ---------------------------------------------------------

    def _register_manager_handlers(self, endpoint: SoapEndpoint) -> None:
        version = self.version
        endpoint.on_action(version.action("Renew"), self._handle_renew)
        endpoint.on_action(version.action("Unsubscribe"), self._handle_unsubscribe)
        if version.has_get_status:
            endpoint.on_action(version.action("GetStatus"), self._handle_get_status)
        if version.supports_pull_delivery:
            endpoint.on_action(version.action("Pull"), self._handle_pull)

    def _subscription_for(self, envelope: SoapEnvelope, headers: MessageHeaders) -> WseSubscription:
        body = envelope.body_element()
        sub_id = messages.subscription_id_from_request(self.version, body, headers.echoed)
        subscription = self.store.get(sub_id)
        if subscription is None:
            raise SoapFault(
                FaultCode.SENDER,
                f"unknown subscription {sub_id!r}",
                subcode=self.version.qname("InvalidMessage"),
            )
        return subscription

    def _handle_renew(self, envelope: SoapEnvelope, headers: MessageHeaders):
        subscription = self._subscription_for(envelope, headers)
        expires_text = messages.expires_from_body(envelope.body_element(), self.version)
        self.store.update_expiry(subscription, self._grant_expiry(expires_text))
        self._fire_lifecycle("renewed", subscription, expires=subscription.expires)
        body = messages.build_renew_response(
            self.version, self._expires_text(subscription.expires)
        )
        return self._reply(headers, self.version.action("RenewResponse"), body)

    def _handle_get_status(self, envelope: SoapEnvelope, headers: MessageHeaders):
        subscription = self._subscription_for(envelope, headers)
        body = messages.build_get_status_response(
            self.version, self._expires_text(subscription.expires)
        )
        return self._reply(headers, self.version.action("GetStatusResponse"), body)

    def _handle_unsubscribe(self, envelope: SoapEnvelope, headers: MessageHeaders):
        subscription = self._subscription_for(envelope, headers)
        self.store.remove(subscription.id)
        body = messages.build_unsubscribe_response(self.version)
        return self._reply(headers, self.version.action("UnsubscribeResponse"), body)

    def _handle_pull(self, envelope: SoapEnvelope, headers: MessageHeaders):
        subscription = self._subscription_for(envelope, headers)
        if subscription.mode is not DeliveryMode.PULL:
            raise SoapFault(FaultCode.SENDER, "subscription is not in pull mode")
        body_elem = envelope.body_element()
        count = parse_drain_limit(
            body_elem,
            self.version.qname("MaxMessages"),
            backlog=len(subscription.queue),
            subcode=self.version.qname("InvalidMessage"),
        )
        batch = subscription.queue[:count]
        del subscription.queue[:count]
        if batch:
            self._fire_lifecycle("pulled", subscription, count=len(batch))
        body = messages.build_pull_response(self.version, batch)
        return self._reply(headers, self.version.action("PullResponse"), body)

    def _reply(self, request_headers: MessageHeaders, action: str, body: XElem) -> SoapEnvelope:
        reply = SoapEnvelope(SoapVersion.V11)
        headers = MessageHeaders.reply(request_headers, action, self.version.wsa_version)
        apply_headers(reply, headers, self.version.wsa_version)
        reply.add_body(body)
        return reply

    # --- publication ------------------------------------------------------------------

    def publish(
        self,
        payload: XElem,
        *,
        action: str = DEFAULT_NOTIFY_ACTION,
        topic: Optional[str] = None,
    ) -> int:
        """Publish one event; returns the number of subscriptions it reached.

        WS-Eventing has no topic model — ``topic`` only feeds filters that
        look at it (the mediation layer maps WSN topics through here).
        """
        instr = self.network.instrumentation
        if not instr.enabled:
            return self._fan_out_event(payload, action, topic)
        # a publish arriving with no live lineage is a true origin (mint a
        # fresh one); with one — e.g. the broker backbone re-publishing a
        # mediated message — it stays inside the existing trace
        originating = instr.trace_context() is None
        with instr.span(
            "wse.publish", mint=True, source=self.address, version=self._version_tag
        ) as span:
            if originating:
                # direct ledger write: mint=True guarantees span.lineage
                instr._ledger_record(
                    span.lineage, "published", source=self.address, family="wse"
                )
            delivered = self._fan_out_event(payload, action, topic)
        matched_counter = self._bound_counters.probe(instr, "matched")
        if matched_counter is None:
            matched_counter = self._bound_counters.get(
                instr, "matched", "notifications.matched",
                family="wse", version=self._version_tag,
            )
        matched_counter.inc(delivered)
        return delivered

    def _fan_out_event(
        self, payload: XElem, action: str, topic: Optional[str]
    ) -> int:
        if self.debug_linear_match:
            return self._fan_out_linear(payload, action, topic)
        instr = self.network.instrumentation
        self.store.sweep_due()
        # one frozen payload instance is shared by every match this publish
        if payload.frozen:
            frozen = payload
        else:
            frozen = payload.copy().freeze()
            if instr.enabled:
                self._bound_counters.get(
                    instr, "payload_copies", "fanout.payload_copies", family="wse"
                ).inc()
        context = FilterContext(
            frozen, topic=topic, producer_properties=self.producer_properties
        )
        candidates = self._topic_index.candidates(topic)
        lineage = instr.trace_context() if instr.enabled else None
        if instr.enabled:
            bound = self._bound_counters
            hits_counter = bound.probe(instr, "index_hits")
            if hits_counter is None:
                hits_counter = bound.get(
                    instr, "index_hits", "fanout.index_hits", family="wse"
                )
            hits_counter.inc(len(candidates))
            skipped = len(self.store._subscriptions) - len(candidates)
            if skipped > 0:
                bound.get(
                    instr, "index_skips", "fanout.index_skips", family="wse"
                ).inc(skipped)
            # hottest site: one increment per candidate, via one handle
            evals_counter = bound.probe(instr, "filter_evals")
            if evals_counter is None:
                evals_counter = bound.get(
                    instr, "filter_evals", "fanout.filter_evals", family="wse"
                )
        else:
            evals_counter = None
        delivered = 0
        for key in candidates:
            subscription = self.store.get(key)
            if subscription is None:
                continue
            if evals_counter is not None:
                evals_counter.inc()
            if not subscription.accepts(context):
                continue
            delivered += 1
            if subscription.mode is DeliveryMode.PULL:
                if not self._enqueue_bounded(subscription, frozen):
                    continue
                if lineage is not None:
                    # informational: subscription queues hold bare payloads,
                    # so per-item lineage ends here (no delivery obligation)
                    instr.lineage_event(
                        lineage.lineage_id, "queued",
                        subscription=subscription.id, mode="pull",
                    )
            elif subscription.mode is DeliveryMode.WRAPPED:
                if not self._enqueue_bounded(subscription, frozen):
                    continue
                if lineage is not None:
                    instr.lineage_event(
                        lineage.lineage_id, "queued",
                        subscription=subscription.id, mode="wrapped",
                    )
                self._note_wrapped_queued(subscription)
                if len(subscription.queue) >= self._wrapped_trigger():
                    self._flush_wrapped(subscription)
            else:
                self._push(subscription, frozen, action, topic)
        return delivered

    def _enqueue_bounded(self, subscription: WseSubscription, frozen: XElem) -> bool:
        """Append to a pull/wrapped queue, honouring the subscription's
        ``MaxEventsPerConsumer`` bound.  Returns False when the *incoming*
        message was the one discarded (LifoOrder); otherwise the oldest
        queued payload makes room.  These queues carry no per-item
        obligations (their lineage is the informational ``queued``), so the
        drop is surfaced as a counter, not a ledger event."""
        profile = subscription.qos
        if profile is not None:
            limit = profile.get("MaxEventsPerConsumer")
            if limit and len(subscription.queue) >= limit:
                self.network.instrumentation.count(
                    "qos.shed_total", family="wse", reason="sub_queue_full"
                )
                if profile.get("DiscardPolicy") is DiscardPolicy.LIFO_ORDER:
                    return False
                del subscription.queue[0]
        subscription.queue.append(frozen)
        return True

    def _priority_of(self, subscription: WseSubscription) -> int:
        return (
            int(subscription.qos.get("Priority"))
            if subscription.qos is not None
            else 0
        )

    def _wrapped_trigger(self) -> int:
        """Queue length that forces a wrapped flush (batching policy wins)."""
        return self.batching.max_batch if self.batching is not None else self.wrapped_batch_size

    def _note_wrapped_queued(self, subscription: WseSubscription) -> None:
        """First message into an empty wrapped queue starts its window."""
        if self._batch_scheduler is None or len(subscription.queue) != 1:
            return
        assert self.batching is not None
        when = self.clock.now() + self.batching.window
        self._wrapped_deadlines[subscription.id] = when
        self._batch_scheduler.call_at(
            when, lambda: self._on_wrapped_deadline(subscription.id, when)
        )

    def stale_wrapped_deadlines(self) -> int:
        """Wrapped queues whose window deadline passed without a flush.

        Non-zero after the scheduler has drained everything due means a
        window timer was lost or never pumped — the ``obs-health``
        stale-batch-timer anomaly (the WSE analog of
        :meth:`repro.delivery.batcher.DeliveryBatcher.stale_deadlines`)."""
        now = self.clock.now()
        stale = 0
        for sub_id, when in self._wrapped_deadlines.items():
            subscription = self.store.get(sub_id)
            if when < now and subscription is not None and subscription.queue:
                stale += 1
        return stale

    def _on_wrapped_deadline(self, sub_id: str, when: float) -> None:
        if self._wrapped_deadlines.get(sub_id) != when:
            return  # flushed by size or explicit flush(); stale timer
        subscription = self.store.get(sub_id)
        if subscription is not None and subscription.queue:
            self._flush_wrapped(subscription)
        else:
            self._wrapped_deadlines.pop(sub_id, None)

    def _fan_out_linear(
        self, payload: XElem, action: str, topic: Optional[str]
    ) -> int:
        """The pre-index matcher, kept verbatim as the differential baseline
        (``debug_linear_match=True``): full sweep, linear scan, one filter
        evaluation per subscriber and per-subscriber payload copies."""
        instr = self.network.instrumentation
        self.store.sweep_expired()
        context = FilterContext(
            payload, topic=topic, producer_properties=self.producer_properties
        )
        delivered = 0
        for subscription in list(self.store.live()):
            if instr.enabled:
                instr.count("fanout.filter_evals", family="wse")
            if not subscription.accepts(context):
                continue
            delivered += 1
            if subscription.mode is DeliveryMode.PULL:
                subscription.queue.append(payload.copy())
                if instr.enabled:
                    instr.count("fanout.payload_copies", family="wse")
            elif subscription.mode is DeliveryMode.WRAPPED:
                subscription.queue.append(payload.copy())
                if instr.enabled:
                    instr.count("fanout.payload_copies", family="wse")
                if len(subscription.queue) >= self.wrapped_batch_size:
                    self._flush_wrapped(subscription)
            else:
                self._push(subscription, payload, action, topic)
        return delivered

    def flush(self) -> None:
        """Deliver any batched wrapped-mode notifications immediately."""
        for subscription in self.store.live():
            if subscription.mode is DeliveryMode.WRAPPED and subscription.queue:
                self._flush_wrapped(subscription)

    def _push(
        self,
        subscription: WseSubscription,
        payload: XElem,
        action: str,
        topic: Optional[str] = None,
    ) -> None:
        extra = []
        if topic is not None and self.topic_header is not None:
            from repro.xmlkit.element import text_element

            extra.append(text_element(self.topic_header, topic))

        def outbound() -> XElem:
            # frozen payloads are fan-out-shared; mutable ones are copied per
            # attempt exactly as before the fast path existed
            if payload.frozen:
                return payload
            instr = self.network.instrumentation
            if instr.enabled:
                instr.count("fanout.payload_copies", family="wse")
            return payload.copy()

        def attempt() -> None:
            instr = self.network.instrumentation
            if not instr.enabled:
                self._client.call(
                    subscription.notify_to,
                    action,
                    [outbound()],
                    expect_reply=False,
                    extra_headers=extra,
                )
                return
            with instr.span("notify", family="wse", to=subscription.notify_to.address):
                self._client.call(
                    subscription.notify_to,
                    action,
                    [outbound()],
                    expect_reply=False,
                    extra_headers=extra,
                )

        if self.delivery_manager is not None:
            self.delivery_manager.submit(
                subscription.notify_to.address,
                attempt,
                items=[
                    DeliveryItem(
                        payload if payload.frozen else payload.copy(),
                        topic,
                        lineage=self.network.instrumentation.trace_context(),
                    )
                ],
                family="wse",
                describe=f"notify {subscription.id}",
                priority=self._priority_of(subscription),
            )
            return
        self._deliver_with_retries(subscription, "notify", attempt)

    def _deliver_with_retries(
        self, subscription: WseSubscription, stage: str, attempt
    ) -> None:
        from repro.transport.network import MessageLost

        instr = self.network.instrumentation
        sink = subscription.notify_to.address if subscription.notify_to else ""
        lineage = instr.trace_context() if instr.enabled else None
        if lineage is not None:
            # direct path: the obligation opens and closes synchronously
            # (ledger written directly — the lineage id is known non-None)
            instr._ledger_record(
                lineage.lineage_id, "enqueued", sink=sink, family="wse"
            )
        for remaining in range(self.delivery_retries, -1, -1):
            if lineage is not None:
                instr._ledger_record(
                    lineage.lineage_id, "attempted",
                    n=self.delivery_retries - remaining + 1, sink=sink,
                )
            try:
                attempt()
                if instr.enabled:
                    delivered_counter = self._bound_counters.probe(
                        instr, "delivered"
                    )
                    if delivered_counter is None:
                        delivered_counter = self._bound_counters.get(
                            instr, "delivered", "notifications.delivered",
                            family="wse", version=self._version_tag,
                        )
                    delivered_counter.inc()
                if lineage is not None:
                    instr.lineage_delivered(
                        lineage.lineage_id,
                        family="wse",
                        hops=lineage.hop + 1,
                        sink=sink,
                    )
                return
            except MessageLost as exc:
                if remaining == 0:  # transient, but retries exhausted
                    self._record_push_failure(subscription, stage, exc)
                    if lineage is not None:
                        instr.lineage_event(
                            lineage.lineage_id, "failed",
                            sink=sink, reason=type(exc).__name__,
                        )
                    self._end_subscription(
                        subscription, SubscriptionEndCode.DELIVERY_FAILURE, str(exc)
                    )
            except (NetworkError, SoapFault) as exc:
                # hard failure (unreachable/refused/fault): no point retrying
                self._record_push_failure(subscription, stage, exc)
                if lineage is not None:
                    instr.lineage_event(
                        lineage.lineage_id, "failed",
                        sink=sink, reason=type(exc).__name__,
                    )
                self._end_subscription(
                    subscription, SubscriptionEndCode.DELIVERY_FAILURE, str(exc)
                )
                return

    def _record_push_failure(
        self, subscription: WseSubscription, stage: str, error: Exception
    ) -> None:
        instr = self.network.instrumentation
        if instr.enabled:
            self._bound_counters.get(
                instr, "failed", "notifications.failed",
                family="wse", version=self._version_tag,
            ).inc()
        sink = subscription.notify_to.address if subscription.notify_to else ""
        record_failure(
            self.delivery_failures,
            instr,
            at=self.clock.now(),
            family="wse",
            stage=stage,
            sink=sink,
            error=error,
        )

    def _flush_wrapped(self, subscription: WseSubscription) -> None:
        self._wrapped_deadlines.pop(subscription.id, None)
        batch, subscription.queue = subscription.queue, []
        wrapper = messages.build_wrapped_notification(self.version, batch)
        items = [
            DeliveryItem(message if message.frozen else message.copy())
            for message in batch
        ]

        def attempt() -> None:
            instr = self.network.instrumentation
            if not instr.enabled:
                self._client.call(
                    subscription.notify_to,
                    self.version.action("Notifications"),
                    [wrapper],
                    expect_reply=False,
                )
                return
            with instr.span(
                "notify", family="wse", mode="wrapped",
                to=subscription.notify_to.address,
            ):
                self._client.call(
                    subscription.notify_to,
                    self.version.action("Notifications"),
                    [wrapper],
                    expect_reply=False,
                )

        if self.delivery_manager is not None:
            self.delivery_manager.submit(
                subscription.notify_to.address,
                attempt,
                items=items,
                family="wse",
                describe=f"wrapped notify {subscription.id}",
                priority=self._priority_of(subscription),
            )
            return
        self._deliver_with_retries(subscription, "wrapped_notify", attempt)

    # --- termination -----------------------------------------------------------------

    def shutdown(self) -> None:
        """Terminate every subscription with SourceShuttingDown, then close."""
        for subscription in list(self.store.live()):
            self._end_subscription(
                subscription, SubscriptionEndCode.SOURCE_SHUTTING_DOWN, "source shutting down"
            )
        self.close()

    def _end_subscription(
        self, subscription: WseSubscription, code: SubscriptionEndCode, reason: str
    ) -> None:
        self.store.remove(subscription.id)
        subscription.ended = True
        self.ended_subscriptions.append((subscription.id, code))
        if subscription.end_to is None:
            # per the paper: no EndTo in the request => no SubscriptionEnd message
            return
        body = messages.build_subscription_end(
            self.version,
            manager_address=self.manager_address,
            sub_id=subscription.id,
            code=code,
            reason=reason,
        )

        def send_end() -> None:
            self._client.call(
                subscription.end_to,
                self.version.action("SubscriptionEnd"),
                [body],
                expect_reply=False,
            )

        if self.delivery_manager is not None:
            # control messages ride the reliable pipeline too (no parkable
            # payload: an end notice is meaningless once the sink is gone)
            self.delivery_manager.submit(
                subscription.end_to.address,
                send_end,
                family="wse",
                describe=f"subscription_end {subscription.id}",
            )
            return
        try:
            send_end()
        except (NetworkError, SoapFault) as exc:
            # the sink may be the thing that died — but the failure is
            # recorded, never swallowed (delivery.failed_total)
            record_failure(
                self.delivery_failures,
                self.network.instrumentation,
                at=self.clock.now(),
                family="wse",
                stage="subscription_end",
                sink=subscription.end_to.address,
                error=exc,
            )
