"""WS-Eventing, both released versions (01/2004 and 08/2004).

The 01/2004 release (Microsoft-led) is the minimal design: one *event
source* endpoint handles Subscribe/Renew/Unsubscribe, subscriptions are
identified by a bare ``wse:Id`` element, delivery is push-only, and expiry
may be given as a duration.

The 08/2004 release (joined by IBM, Sun, CA) is the convergence release the
paper analyses: it separates the *subscription manager* from the event
source, returns the subscription identifier inside the manager EPR's
``ReferenceParameters`` (WS-Notification's resource style), adds
``GetStatus``, allows wrapped delivery, and adds a pull delivery mode.

Public API:

- :class:`~repro.wse.source.EventSource` -- producer + publisher in one
  entity (WSE does not separate them; Fig. 1).
- :class:`~repro.wse.sink.EventSink` -- notification receiver.
- :class:`~repro.wse.subscriber.WseSubscriber` -- the client role that
  creates and manages subscriptions on behalf of sinks.
- :class:`~repro.wse.versions.WseVersion` -- version profile and feature
  flags (drives the Table 1 probes).
"""

from repro.wse.versions import WseVersion
from repro.wse.model import DeliveryMode, SubscriptionEndCode, WseSubscription
from repro.wse.source import EventSource
from repro.wse.sink import EventSink
from repro.wse.subscriber import SubscriptionHandle, WseSubscriber

__all__ = [
    "WseVersion",
    "DeliveryMode",
    "SubscriptionEndCode",
    "WseSubscription",
    "EventSource",
    "EventSink",
    "WseSubscriber",
    "SubscriptionHandle",
]
